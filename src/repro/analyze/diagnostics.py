"""The diagnostics core of the static-analysis engine.

Every problem a static analysis finds is a :class:`Diagnostic`: a stable
code (``ISDL101``), a :class:`Severity`, a human message, an optional
structural context (``where`` — the ``FIELD.operation`` path), and an
optional :class:`~repro.errors.SourceLocation` carried over from the
lexer.  A set of diagnostics for one description is an
:class:`AnalysisResult`, which knows how to render itself as fixed-width
text, structured JSON, or SARIF 2.1.0 (the interchange format CI code
scanners consume).

This module is a *leaf*: it imports nothing but :mod:`repro.errors`, so
:mod:`repro.isdl.semantics` (which every other layer imports) can build
diagnostics without an import cycle.

Diagnostic code ranges (the full table lives in the README):

======== ==================================================================
``ISDL0xx`` well-formedness (parser / semantic checker)
``ISDL1xx`` decode ambiguity (the static dual of the Fig. 4 disassembler)
``ISDL2xx`` constraint analysis (unknown refs, unsatisfiable, vacuous)
``ISDL3xx`` RTL dataflow (never-written reads, dead writes, write races)
``ISDL4xx`` unused definitions (tokens, non-terminals, storages, aliases)
``ISDL5xx`` encoding-space coverage (opcode holes, wasted bits)
``ISDL6xx`` whole-program dataflow (unreachable blocks, never-halting,
            always-false guards, dead conditional / program-dead writes)
``ISDL9xx`` analysis-internal failures
======== ==================================================================
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SourceLocation

__all__ = [
    "Severity",
    "Diagnostic",
    "AnalysisResult",
    "render_text",
    "to_json_payload",
    "to_sarif",
]


class Severity(enum.IntEnum):
    """Diagnostic severity; ordering supports ``max()`` and thresholds."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()

    #: SARIF ``level`` values (SARIF calls INFO "note")
    @property
    def sarif_level(self) -> str:
        return {"info": "note", "warning": "warning", "error": "error"}[
            self.label
        ]

    @classmethod
    def parse(cls, text: str) -> "Severity":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown severity {text!r}") from None


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static analysis over an ISDL description."""

    code: str  # stable, e.g. "ISDL101"
    severity: Severity
    message: str
    where: str = ""  # structural context, e.g. "EX.addi"
    location: Optional[SourceLocation] = None

    def __str__(self) -> str:
        prefix = f"{self.location}: " if self.location is not None else ""
        context = f" [{self.where}]" if self.where else ""
        return (
            f"{prefix}{self.severity.label} {self.code}{context}:"
            f" {self.message}"
        )

    def legacy_text(self) -> str:
        """The pre-diagnostic string shape (``location: message``) that
        :func:`repro.isdl.semantics.check` returned before this core
        existed; kept for the ``collect=True`` back-compat shim."""
        if self.location is not None:
            return f"{self.location}: {self.message}"
        return self.message

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.where:
            payload["where"] = self.where
        if self.location is not None:
            payload["file"] = self.location.filename
            payload["line"] = self.location.line
            payload["column"] = self.location.column
        return payload


@dataclass(frozen=True)
class AnalysisResult:
    """All diagnostics one analysis run produced for one description."""

    name: str  # the analyzed description (or file) name
    diagnostics: Tuple[Diagnostic, ...] = ()
    passes: Tuple[str, ...] = ()  # pass names that actually ran

    # -- severity views ----------------------------------------------------

    @property
    def max_severity(self) -> Optional[Severity]:
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def ok(self, fail_on: Severity = Severity.ERROR) -> bool:
        """True when no diagnostic reaches *fail_on*."""
        worst = self.max_severity
        return worst is None or worst < fail_on

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]

    def counts(self) -> Dict[str, int]:
        out = {"error": 0, "warning": 0, "info": 0}
        for diagnostic in self.diagnostics:
            out[diagnostic.severity.label] += 1
        return out

    def summary(self) -> str:
        counts = self.counts()
        return (
            f"{self.name}: {counts['error']} error(s),"
            f" {counts['warning']} warning(s), {counts['info']} info"
        )


# ---------------------------------------------------------------------------
# Emitters
# ---------------------------------------------------------------------------


def render_text(results: Sequence[AnalysisResult]) -> str:
    """The human report: one line per diagnostic plus a summary block."""
    lines: List[str] = []
    for result in results:
        for diagnostic in result.diagnostics:
            lines.append(str(diagnostic))
        lines.append(result.summary())
    return "\n".join(lines)


def to_json_payload(results: Sequence[AnalysisResult]) -> Dict[str, object]:
    """Structured JSON: stable field names, one entry per description."""
    worst = [r.max_severity for r in results if r.max_severity is not None]
    return {
        "version": 1,
        "tool": "repro-lint",
        "targets": [
            {
                "name": result.name,
                "passes": list(result.passes),
                "counts": result.counts(),
                "diagnostics": [d.to_dict() for d in result.diagnostics],
            }
            for result in results
        ],
        "max_severity": max(worst).label if worst else None,
    }


def to_sarif(results: Sequence[AnalysisResult],
             tool_version: str = "1.0.0") -> Dict[str, object]:
    """SARIF 2.1.0: one run, one result per diagnostic, rules deduped."""
    rules: Dict[str, Dict[str, object]] = {}
    sarif_results: List[Dict[str, object]] = []
    for result in results:
        for diagnostic in result.diagnostics:
            rules.setdefault(
                diagnostic.code,
                {
                    "id": diagnostic.code,
                    "defaultConfiguration": {
                        "level": diagnostic.severity.sarif_level
                    },
                },
            )
            entry: Dict[str, object] = {
                "ruleId": diagnostic.code,
                "level": diagnostic.severity.sarif_level,
                "message": {"text": diagnostic.message},
            }
            location = diagnostic.location
            uri = location.filename if location is not None else result.name
            region = (
                {"startLine": location.line,
                 "startColumn": location.column}
                if location is not None
                else {"startLine": 1}
            )
            entry["locations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": uri},
                        "region": region,
                    }
                }
            ]
            sarif_results.append(entry)
    return {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": tool_version,
                        "informationUri": (
                            "https://github.com/repro/repro"
                        ),
                        "rules": [
                            rules[code] for code in sorted(rules)
                        ],
                    }
                },
                "results": sarif_results,
            }
        ],
    }


def dump_json(payload: Dict[str, object]) -> str:
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


# Convenience alias for the pass functions' return type.
DiagnosticList = List[Diagnostic]
