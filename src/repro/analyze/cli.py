"""``repro-lint`` — the static-analysis front end.

Lint ISDL description files (or the built-in example architectures) and
report diagnostics as text, structured JSON, or SARIF 2.1.0::

    repro-lint path/to/desc.isdl
    repro-lint --all-arch --format=sarif --out=lint.sarif
    repro-lint --arch spam2 --fail-on=warning

The exit code reflects the worst finding against ``--fail-on`` (default
``error``): 0 when every target is below the threshold, 2 when any
error-severity diagnostic was reported, 1 when only warnings/infos
reached the threshold.  A file that does not parse is itself a
diagnostic (``ISDL001``), not a crash.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..errors import IsdlSyntaxError, LocatedError
from .diagnostics import (
    AnalysisResult,
    Diagnostic,
    Severity,
    dump_json,
    render_text,
    to_json_payload,
    to_sarif,
)

#: a file the parser rejects — lint reports it instead of crashing
CODE_PARSE_ERROR = "ISDL001"
#: a --program / --workloads source that does not assemble
CODE_ASM_ERROR = "ISDL002"


def _assemble_programs(desc, program_paths, workload_names=None):
    """``(programs, diagnostics)``: assembled ``(name, words, origin)``
    images for the whole-program lints, plus a diagnostic per source
    that fails to assemble under *desc*."""
    programs = []
    diagnostics = []
    from ..asm import Assembler

    assembler = Assembler(desc)
    if workload_names is not None:
        from ..arch.workloads import all_workloads

        for workload in all_workloads():
            if workload.name not in workload_names:
                continue
            program = assembler.assemble(
                workload.source, filename=f"{workload.name}.s"
            )
            programs.append(
                (workload.name, tuple(program.words), program.origin)
            )
    for path in program_paths:
        try:
            program = assembler.assemble_file(path)
        except (LocatedError, OSError) as exc:
            diagnostics.append(Diagnostic(
                CODE_ASM_ERROR, Severity.ERROR,
                f"cannot assemble {path} for {desc.name}: {exc}",
                where=path,
            ))
            continue
        programs.append((path, tuple(program.words), program.origin))
    return programs, diagnostics


def _lint_file(path: str, program_paths=()) -> AnalysisResult:
    from ..isdl import load_file
    from .passes import analyze

    try:
        desc = load_file(path, validate=False)
    except IsdlSyntaxError as exc:
        return AnalysisResult(path, (Diagnostic(
            CODE_PARSE_ERROR, Severity.ERROR, exc.message,
            location=exc.location,
        ),), ("parse",))
    except OSError as exc:
        return AnalysisResult(path, (Diagnostic(
            CODE_PARSE_ERROR, Severity.ERROR,
            f"cannot read {path}: {exc.strerror or exc}",
        ),), ("parse",))
    programs, extra = _assemble_programs(desc, program_paths)
    result = analyze(desc, programs=programs or None)
    if extra:
        result = AnalysisResult(
            result.name, result.diagnostics + tuple(extra), result.passes
        )
    return result


def _lint_arch(name: str, program_paths=(),
               workloads: bool = False) -> AnalysisResult:
    from ..arch import description_for
    from .passes import analyze

    desc = description_for(name)
    workload_names = None
    if workloads:
        from ..arch.workloads import workloads_for

        workload_names = {w.name for w in workloads_for(name)}
    programs, extra = _assemble_programs(
        desc, program_paths, workload_names
    )
    result = analyze(desc, programs=programs or None)
    if extra:
        result = AnalysisResult(
            result.name, result.diagnostics + tuple(extra), result.passes
        )
    return result


def _list_codes() -> str:
    from .passes import ALL_PASSES

    lines = ["semantic             ISDL010-ISDL013, ISDL201"
             "  well-formedness (repro.isdl.semantics)"]
    for analysis in ALL_PASSES:
        lines.append(
            f"{analysis.name:<20} {analysis.codes:<22} {analysis.description}"
        )
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Static analysis for ISDL machine descriptions.",
    )
    parser.add_argument("files", nargs="*", metavar="FILE",
                        help="ISDL description files to lint")
    parser.add_argument("--arch", action="append", default=[],
                        metavar="NAME",
                        help="lint a built-in architecture (repeatable)")
    parser.add_argument("--all-arch", action="store_true",
                        help="lint every built-in architecture")
    parser.add_argument("--program", action="append", default=[],
                        metavar="ASM",
                        help="assemble ASM against each linted description"
                             " and run the whole-program lints (repeatable)")
    parser.add_argument("--workloads", action="store_true",
                        help="with --arch/--all-arch: run the whole-program"
                             " lints over each registered workload")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="output format")
    parser.add_argument("--out", metavar="PATH",
                        help="write the report to PATH instead of stdout")
    parser.add_argument("--fail-on", default="error", metavar="SEVERITY",
                        choices=("info", "warning", "error"),
                        help="lowest severity that fails the run"
                             " (default: error)")
    parser.add_argument("--list-codes", action="store_true",
                        help="print the pass / diagnostic-code table")
    args = parser.parse_args(argv)

    if args.list_codes:
        print(_list_codes())
        return 0

    arch_names = list(args.arch)
    if args.all_arch:
        from ..arch import ARCHITECTURES

        arch_names = sorted(set(arch_names) | set(ARCHITECTURES))
    if not args.files and not arch_names:
        parser.error("nothing to lint: give FILEs, --arch, or --all-arch")

    results: List[AnalysisResult] = []
    for path in args.files:
        results.append(_lint_file(path, args.program))
    for name in sorted(arch_names):
        try:
            results.append(_lint_arch(name, args.program,
                                      workloads=args.workloads))
        except (KeyError, LocatedError) as exc:
            results.append(AnalysisResult(name, (Diagnostic(
                CODE_PARSE_ERROR, Severity.ERROR,
                f"unknown architecture {name!r}"
                if isinstance(exc, KeyError) else str(exc),
            ),), ("parse",)))

    if args.format == "text":
        report = render_text(results) + "\n"
    elif args.format == "json":
        report = dump_json(to_json_payload(results))
    else:
        report = dump_json(to_sarif(results))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(report)
    else:
        sys.stdout.write(report)

    threshold = Severity.parse(args.fail_on)
    if all(result.ok(threshold) for result in results):
        return 0
    if any(not result.ok(Severity.ERROR) for result in results):
        return 2
    return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
