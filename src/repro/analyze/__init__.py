"""repro.analyze — static analysis over parsed ISDL descriptions.

The diagnostics core (:class:`Diagnostic`, :class:`AnalysisResult`, the
text/JSON/SARIF emitters) is imported eagerly — it is a leaf and is what
:mod:`repro.isdl.semantics` builds on.  The pass manager, the passes and
the CLI import the rest of the tool chain, so they load lazily: this
package's ``__init__`` runs *while* ``repro.isdl`` is still initializing
(semantics imports the diagnostics core), and an eager import of the
passes would cycle back into the half-built package.

Three entry points:

* ``repro-lint`` (:mod:`repro.analyze.cli`) — lint description files or
  the built-in architectures, emit text/JSON/SARIF, exit by severity.
* :func:`check_static` — the exploration-loop validity gate, memoized in
  an :class:`~repro.cache.ArtifactCache` by ISDL fingerprint.
* :func:`analyze` — run the pass pipeline directly.
"""

from .diagnostics import (
    AnalysisResult,
    Diagnostic,
    Severity,
    dump_json,
    render_text,
    to_json_payload,
    to_sarif,
)

__all__ = [
    "AnalysisResult",
    "Diagnostic",
    "Severity",
    "dump_json",
    "render_text",
    "to_json_payload",
    "to_sarif",
    # lazily resolved:
    "analyze",
    "check_static",
    "ALL_PASSES",
    "AnalysisPass",
    "PassContext",
    "pass_named",
    "main",
    "fixpoint",
    "InstrFacts",
    "BlockFacts",
    "ProgramFacts",
    "ArchFacts",
    "program_facts",
    "arch_facts",
    "words_digest",
    "DeoptFreedom",
    "SuperblockChain",
    "derive_deopt_freedom",
    "derive_superblock_chains",
    "check_deopt_freedom",
    "check_superblock_chains",
]

_LAZY = {
    "analyze": "passes",
    "check_static": "passes",
    "ALL_PASSES": "passes",
    "AnalysisPass": "passes",
    "PassContext": "passes",
    "pass_named": "passes",
    "main": "cli",
    "fixpoint": "dataflow",
    "InstrFacts": "dataflow",
    "BlockFacts": "dataflow",
    "ProgramFacts": "dataflow",
    "ArchFacts": "dataflow",
    "program_facts": "dataflow",
    "arch_facts": "dataflow",
    "words_digest": "dataflow",
    "DeoptFreedom": "dataflow",
    "SuperblockChain": "dataflow",
    "derive_deopt_freedom": "dataflow",
    "derive_superblock_chains": "dataflow",
    "check_deopt_freedom": "dataflow",
    "check_superblock_chains": "dataflow",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value
    return value
