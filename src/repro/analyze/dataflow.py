"""Worklist dataflow over decoded programs: facts, lints and proofs.

The per-construct passes in :mod:`repro.analyze.passes` look at one
operation (or one pair) at a time.  This module adds whole-program
reasoning over the basic-block CFG that :mod:`repro.gensim.cfg`
discovers: a generic worklist fixpoint engine (:func:`fixpoint`) plus
four concrete lattices —

* **PC-target resolution** — every program-counter write of a decoded
  instruction is constant-folded (operands and the instruction's own
  address are compile-time constants) into an explicit successor set;
* **constant propagation** — scalar storages carrying statically known
  values across block boundaries (join = agree-or-unknown);
* **reaching writes** — which ``(storage, writer offset)`` pairs can
  reach each block entry (join = union, forward);
* **liveness** — which storages a later *execution* may still read
  (join = union, backward; final-state observability is deliberately
  out of scope — the lattice answers "can this value change what the
  program does next", which is the question dead-write elision asks).

The facts land in three consumers:

1. the ``ISDL6xx`` diagnostics of :func:`pass_dataflow` (registered in
   :data:`repro.analyze.passes.ALL_PASSES`) — unreachable blocks,
   provably never-halting programs, always-false guards, dead
   conditional writes, and storages written-but-never-read across every
   supplied workload program;
2. **proof certificates** for :class:`repro.gensim.blocksim.BlockSimulator`
   — :class:`DeoptFreedom` (no self-modifying stores, every PC target
   resolved, no write outlives its block) lets the block JIT drop its
   per-dispatch deopt guards, and :class:`SuperblockChain` (maximal
   single-successor resolved chains) lets it fuse whole chains into one
   compiled unit.  Both are soundness-critical, so both ship with an
   independent checker (:func:`check_deopt_freedom`,
   :func:`check_superblock_chains`) that re-derives every claim from
   the description and program words alone;
3. delta-aware incremental analysis: per-instruction facts are keyed by
   the operations' unit fingerprints plus the decoded operands, so a
   child description re-analyzes only instructions whose definitions a
   mutation touched (``REPRO_INCREMENTAL_CHECK=1`` shadow-builds cold
   and asserts equality, exactly like the artifact builders).
"""

from __future__ import annotations

import hashlib
import os
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .. import obs
from ..encoding.bits import mask
from ..isdl import ast, rtl
from ..isdl.fingerprint import fingerprint, unit_fingerprint

__all__ = [
    "fixpoint",
    "InstrFacts",
    "BlockFacts",
    "ProgramFacts",
    "ArchFacts",
    "program_facts",
    "arch_facts",
    "DeoptFreedom",
    "SuperblockChain",
    "derive_deopt_freedom",
    "derive_superblock_chains",
    "check_deopt_freedom",
    "check_superblock_chains",
    "words_digest",
]

#: Fused superblock chains are capped at this many instructions so one
#: pathological chain cannot dominate compile time.
MAX_CHAIN_LEN = 256


# ---------------------------------------------------------------------------
# The generic worklist engine
# ---------------------------------------------------------------------------


def fixpoint(
    nodes: Sequence,
    edges: Mapping,
    transfer: Callable,
    join: Callable,
    init: Callable,
    *,
    direction: str = "forward",
) -> Dict:
    """Solve a monotone dataflow problem to its least fixpoint.

    *nodes* is the node set, *edges* maps each node to its (forward)
    successors, ``transfer(node, in_fact)`` produces the node's out
    fact, ``join(a, b)`` merges facts along confluent edges, and
    ``init(node)`` seeds the in fact of nodes with no incoming edges
    (every node starts there, so unreachable nodes still get a sound
    fact).  ``direction="backward"`` flips the edges.  Returns
    ``{node: (in_fact, out_fact)}``.

    The worklist is seeded in the given node order and processed FIFO,
    so for a fixed input the iteration order — and therefore the result,
    even for non-distributive frameworks — is deterministic.
    """
    if direction not in ("forward", "backward"):
        raise ValueError(f"unknown direction {direction!r}")
    nodes = list(nodes)
    flow: Dict = {n: [] for n in nodes}
    into: Dict = {n: [] for n in nodes}
    for node in nodes:
        for succ in edges.get(node, ()):
            if succ not in flow:
                continue
            if direction == "forward":
                flow[node].append(succ)
                into[succ].append(node)
            else:
                flow[succ].append(node)
                into[node].append(succ)
    in_facts = {n: init(n) for n in nodes}
    out_facts = {n: transfer(n, in_facts[n]) for n in nodes}
    pending = deque(nodes)
    queued = set(nodes)
    while pending:
        node = pending.popleft()
        queued.discard(node)
        merged = in_facts[node]
        for pred in into[node]:
            merged = join(merged, out_facts[pred])
        in_facts[node] = merged
        out = transfer(node, merged)
        if out == out_facts[node]:
            continue
        out_facts[node] = out
        for succ in flow[node]:
            if succ not in queued:
                queued.add(succ)
                pending.append(succ)
    return {n: (in_facts[n], out_facts[n]) for n in nodes}


# ---------------------------------------------------------------------------
# Per-instruction facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InstrFacts:
    """Static summary of one decoded instruction at one address.

    ``key`` identifies everything the summary is a function of besides
    the address: the unit fingerprints of the decoded operations'
    definitions plus the decoded operand bindings.  Two descriptions
    whose decode of a word agrees on ``key`` provably agree on the
    whole summary, which is what the incremental rebuild relies on.
    """

    offset: int
    size: int
    key: Tuple
    reads: FrozenSet[str]
    writes: FrozenSet[str]
    #: ``(storage, value, definite)`` per scalar write, in RTL order.
    #: ``definite`` means unguarded and whole-storage (a *must* write
    #: that fully redefines the scalar); ``value`` is the statically
    #: known written value for definite writes, else None
    scalar_writes: Tuple[Tuple[str, Optional[int], bool], ...]
    writes_pc: bool
    conditional_pc: bool
    writes_imem: bool
    unresolved: bool
    #: "none" | "maybe" | "always" — does the instruction raise the halt
    #: flag (to a provably non-zero value, unguarded, for "always")
    halts: str
    #: resolved absolute branch-target addresses; None when some PC
    #: write could not be constant-folded
    pc_targets: Optional[Tuple[int, ...]]
    max_latency: int
    #: ``if`` guards that constant-fold to 0 under the decoded operands
    false_guards: Tuple[str, ...]


class _InstrAnalyzer:
    """Folds one decoded instruction's RTL into an :class:`InstrFacts`."""

    def __init__(self, desc: ast.Description):
        from ..gensim.cfg import ControlFlowAnalyzer
        from ..gensim.core import INTRINSIC_IMPLS

        self.desc = desc
        self.cfa = ControlFlowAnalyzer(desc)
        self.pc = self.cfa._pc
        self.pc_mask = mask(desc.storages[self.pc].width)
        self.imem = desc.instruction_memory().name
        self.halt = self.cfa._halt
        self.intrinsics = INTRINSIC_IMPLS

    def _alias_base(self, name: str) -> str:
        alias = self.desc.aliases.get(name)
        return alias.storage if alias is not None else name

    def _read_oracle(self, address: int):
        """Storage-read oracle for const-eval: only the PC is known —
        during execution it holds the current instruction's address."""

        def read(node: rtl.StorageRead) -> Optional[int]:
            alias = self.desc.aliases.get(node.storage)
            if alias is not None:
                if alias.storage != self.pc or alias.index is not None \
                        or alias.hi is not None:
                    return None
                return address
            if node.storage == self.pc and node.index is None:
                return address
            return None

        return read

    def _const(self, expr: rtl.Expr, env, address: int) -> Optional[int]:
        return rtl.try_const_eval(
            expr, env, reads=self._read_oracle(address),
            intrinsics=self.intrinsics,
        )

    def summarize(self, decoded, offset: int, address: int) -> InstrFacts:
        flow = self.cfa.flow(decoded)
        scan = _RtlScan(self, address)

        def scan_unit(unit, operands) -> None:
            env = {
                name: value for name, value in operands.items()
                if isinstance(value, int)
            }
            bindings = self.cfa._nt_bindings(unit.params, operands)
            scan.stmts(list(unit.action) + list(unit.side_effect),
                       env, bindings, ())
            for pname, (option, _sub) in bindings.items():
                _label, sub_operands = operands[pname]
                scan_unit(option, sub_operands)

        key_parts = []
        for dop in decoded.operations:
            op = self.desc.operation(dop.field, dop.op_name)
            key_parts.append((
                dop.field, dop.op_name, unit_fingerprint(op),
                _freeze_operands(dop.operands),
            ))
            scan_unit(op, dop.operands)
        if flow.writes_pc and not scan.pc_unresolved:
            targets: Optional[Tuple[int, ...]] = tuple(
                sorted({t & self.pc_mask for t in scan.pc_targets})
            )
        else:
            targets = None if flow.writes_pc else ()
        return InstrFacts(
            offset=offset,
            size=flow.size,
            key=tuple(key_parts),
            reads=frozenset(scan.reads),
            writes=frozenset(scan.writes),
            scalar_writes=tuple(scan.scalar_writes),
            writes_pc=flow.writes_pc,
            conditional_pc=flow.conditional_pc,
            writes_imem=flow.writes_imem,
            unresolved=flow.unresolved,
            halts=scan.halts,
            pc_targets=targets,
            max_latency=flow.max_latency,
            false_guards=tuple(scan.false_guards),
        )


def _freeze_operands(operands) -> Tuple:
    out = []
    for name in sorted(operands):
        value = operands[name]
        if isinstance(value, tuple):  # NT binding: (label, sub-operands)
            label, sub = value
            out.append((name, label, _freeze_operands(sub)))
        else:
            out.append((name, value))
    return tuple(out)


class _RtlScan:
    """One statement walk collecting reads, writes, PC targets, halt
    behaviour and constant-false guards, guard status threaded through.

    ``guards`` is a tuple of per-``if`` statuses: True (provably taken),
    None (unknown).  Branches whose guard folds to a constant restrict
    the walk to the taken side, which is what makes ``halts="always"``
    and PC-target sets precise on guarded RTL.
    """

    def __init__(self, owner: _InstrAnalyzer, address: int):
        self.owner = owner
        self.address = address
        self.reads: set = set()
        self.writes: set = set()
        self.scalar_writes: List[Tuple[str, Optional[int]]] = []
        self.pc_targets: List[int] = []
        self.pc_unresolved = False
        self.halts = "none"
        self.false_guards: List[str] = []

    def stmts(self, statements, env, bindings, guards) -> None:
        for stmt in statements:
            if isinstance(stmt, rtl.Assign):
                self._assign(stmt, env, bindings, guards)
            elif isinstance(stmt, rtl.If):
                self._reads_in(stmt.cond)
                value = self.owner._const(stmt.cond, env, self.address)
                if value is not None and not value:
                    self.false_guards.append(rtl.format_expr(stmt.cond))
                    self.stmts(stmt.orelse, env, bindings, guards)
                elif value:
                    self.stmts(stmt.then, env, bindings, guards)
                else:
                    self.stmts(stmt.then, env, bindings, guards + (None,))
                    self.stmts(stmt.orelse, env, bindings, guards + (None,))

    def _assign(self, stmt, env, bindings, guards) -> None:
        self._reads_in(stmt.expr)
        dest = stmt.dest
        if isinstance(dest, rtl.NtLV):
            return
        if isinstance(dest, rtl.ParamLV):
            binding = bindings.get(dest.name)
            target = binding[0].storage_target() if binding else None
            if target is None:
                return  # flow.unresolved already covers this
            dest = target
        if dest.index is not None:
            self._reads_in(dest.index)
        alias = self.owner.desc.aliases.get(dest.storage)
        base = self.owner._alias_base(dest.storage)
        self.writes.add(base)
        unguarded = not guards
        #: a slice assignment (directly or through a sliced/indexed
        #: alias) only redefines part of the storage
        partial = (
            dest.hi is not None
            or (alias is not None
                and (alias.hi is not None or alias.index is not None))
        )
        value = self.owner._const(stmt.expr, env, self.address)
        if base == self.owner.pc:
            if value is None or partial:
                self.pc_unresolved = True
            else:
                self.pc_targets.append(value)
            return
        if self.owner.halt is not None and base == self.owner.halt:
            if unguarded and value is not None and value != 0 \
                    and not partial:
                self.halts = "always"
            elif self.halts != "always":
                self.halts = "maybe"
        storage = self.owner.desc.storages.get(base)
        if storage is not None and not storage.addressed:
            definite = unguarded and not partial
            self.scalar_writes.append(
                (base, value if definite else None, definite)
            )

    def _reads_in(self, expr) -> None:
        for node in rtl.walk_exprs(expr):
            if isinstance(node, rtl.StorageRead):
                self.reads.add(self.owner._alias_base(node.storage))


# ---------------------------------------------------------------------------
# Per-block and per-program facts
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlockFacts:
    """One discovered basic block plus its fixpoint facts."""

    start: int
    offsets: Tuple[int, ...]
    #: successor block entry offsets (falling off the program is an
    #: implicit exit edge, not listed here)
    succs: Tuple[int, ...]
    ends_in_branch: bool
    capped: bool
    #: some successor could not be resolved statically
    succs_unknown: bool
    #: control may leave the loaded program (runtime error unless halted)
    may_exit: bool
    reads: FrozenSet[str]
    writes: FrozenSet[str]
    #: scalar -> value known on entry / exit (constant propagation)
    const_in: Tuple[Tuple[str, int], ...]
    const_out: Tuple[Tuple[str, int], ...]
    #: (storage, writer offset) pairs reaching entry / exit
    reach_in: FrozenSet[Tuple[str, int]]
    reach_out: FrozenSet[Tuple[str, int]]
    #: storages a later execution may read, at entry / exit
    live_in: FrozenSet[str]
    live_out: FrozenSet[str]


@dataclass
class ProgramFacts:
    """Whole-program dataflow facts for one loaded word image."""

    name: str
    origin: int
    n_words: int
    #: content digest of ``(origin, words)`` — stamps certificates
    digest: str
    #: entry block offset (PC resets to address 0); None when address 0
    #: is outside the loaded image
    entry: Optional[int]
    instr: Dict[int, InstrFacts]
    blocks: Dict[int, BlockFacts]
    reachable: FrozenSet[int]
    #: every reachable successor was resolved — reachability is exact
    complete: bool
    #: False: provably never halts; None: not provable either way
    halting: Optional[bool]
    reads: FrozenSet[str]
    writes: FrozenSet[str]
    #: per-unit reuse accounting of the (possibly incremental) build
    reuse_counts: Dict[str, int] = field(compare=False, default_factory=dict)

    @property
    def reachable_offsets(self) -> FrozenSet[int]:
        out = set()
        for start in self.reachable:
            out.update(self.blocks[start].offsets)
        return frozenset(out)


@dataclass
class ArchFacts:
    """Facts for one description across a set of workload programs."""

    desc_fp: str
    programs: Dict[str, ProgramFacts]

    @property
    def complete(self) -> bool:
        return all(p.complete for p in self.programs.values())


def words_digest(words: Sequence[int], origin: int) -> str:
    payload = repr((origin, tuple(words))).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _build_blocks(analyzer: _InstrAnalyzer, instr: Dict[int, InstrFacts],
                  flows, origin: int, n_words: int):
    """Discover entry-reachable blocks and their successor edges."""
    from ..gensim.cfg import block_span

    entry = 0 - origin
    if not (0 <= entry < n_words) or flows[entry] is None:
        return None, {}, False
    raw: Dict[int, Dict] = {}
    complete = True
    pending = deque([entry])
    while pending:
        start = pending.popleft()
        if start in raw:
            continue
        span = block_span(flows, start)
        if not span:
            raw[start] = dict(span=(), succs=(), unknown=True, exit=True)
            complete = False
            continue
        last = instr[span[-1]]
        succs: List[int] = []
        unknown = False
        may_exit = False
        fall = span[-1] + last.size
        if last.unresolved or (last.writes_pc and last.pc_targets is None):
            unknown = True
            complete = False
        else:
            if last.writes_pc:
                for target in last.pc_targets:
                    offset = target - origin
                    if 0 <= offset < n_words and flows[offset] is not None:
                        succs.append(offset)
                    else:
                        may_exit = True
            if not last.writes_pc or last.conditional_pc:
                if 0 <= fall < n_words and flows[fall] is not None:
                    succs.append(fall)
                else:
                    may_exit = True
        raw[start] = dict(
            span=span, succs=tuple(dict.fromkeys(succs)),
            unknown=unknown, exit=may_exit,
        )
        for succ in raw[start]["succs"]:
            if succ not in raw:
                pending.append(succ)
    return entry, raw, complete


def _program_fixpoints(instr: Dict[int, InstrFacts], raw: Dict[int, Dict],
                       entry: int, analyzer: _InstrAnalyzer):
    """Run the three block-level lattices over the discovered CFG."""
    starts = sorted(raw)
    edges = {s: raw[s]["succs"] for s in starts}

    def block_summary(start):
        reads: set = set()
        writes: set = set()
        for offset in raw[start]["span"]:
            facts = instr[offset]
            reads |= facts.reads
            writes |= facts.writes
        return reads, writes

    summaries = {s: block_summary(s) for s in starts}

    # Constant propagation: {scalar: value}, absence = unknown, with a
    # None sentinel for "not yet reached" (the identity of the
    # agree-or-unknown join — a plain {} seed would wrongly drop every
    # constant at the first merge).
    def const_transfer(start, env):
        if env is None:
            return None
        env = dict(env)
        for offset in raw[start]["span"]:
            for name, value, definite in instr[offset].scalar_writes:
                if definite and value is not None:
                    env[name] = value & mask(
                        analyzer.desc.storages[name].width
                    )
                else:
                    env.pop(name, None)
            # array writes never touch env; sliced-alias writes appear
            # as non-definite scalar_write entries and invalidate
        return env

    def const_join(a, b):
        if a is None:
            return b
        if b is None:
            return a
        return {k: v for k, v in a.items() if b.get(k) == v}

    const = fixpoint(
        starts, edges, const_transfer, const_join,
        # entry state: nothing known (storage persists across resets)
        lambda s: {} if s == entry else None,
    )

    # Reaching writes: {(storage, offset)}.
    def reach_transfer(start, incoming):
        out = set(incoming)
        for offset in raw[start]["span"]:
            written = instr[offset].writes
            out = {p for p in out if p[0] not in written}
            out |= {(name, offset) for name in written}
        return frozenset(out)

    reach = fixpoint(
        starts, edges, reach_transfer,
        lambda a, b: frozenset(a | b), lambda s: frozenset(),
    )

    # Liveness (backward): storages a later execution may read.  The
    # boundary is empty — observability of the *final* state is not the
    # question this lattice answers (see the module docstring).
    def live_transfer(start, live_out):
        live = set(live_out)
        for offset in reversed(raw[start]["span"]):
            facts = instr[offset]
            # kill only *definite* (unguarded, whole-storage) scalar
            # writes; array, sliced and guarded writes may leave old
            # contents visible and so must not kill
            for name, _value, definite in facts.scalar_writes:
                if definite:
                    live.discard(name)
            live |= facts.reads
        return frozenset(live)

    live = fixpoint(
        starts, edges, live_transfer,
        lambda a, b: frozenset(a | b), lambda s: frozenset(),
        direction="backward",
    )

    blocks: Dict[int, BlockFacts] = {}
    for start in starts:
        info = raw[start]
        reads, writes = summaries[start]
        last = instr[info["span"][-1]] if info["span"] else None
        capped = bool(
            info["span"]
            and not (last.writes_pc or last.unresolved)
            and info["succs"]
        )
        blocks[start] = BlockFacts(
            start=start,
            offsets=tuple(info["span"]),
            succs=info["succs"],
            ends_in_branch=bool(last and last.writes_pc),
            capped=capped,
            succs_unknown=info["unknown"],
            may_exit=info["exit"],
            reads=frozenset(reads),
            writes=frozenset(writes),
            const_in=tuple(sorted((const[start][0] or {}).items())),
            const_out=tuple(sorted((const[start][1] or {}).items())),
            reach_in=reach[start][0],
            reach_out=reach[start][1],
            live_in=live[start][1],  # backward: transfer output is "in"
            live_out=live[start][0],
        )
    return blocks


def _build_program_facts(desc: ast.Description, words: Sequence[int],
                         origin: int, name: str,
                         parent_facts: Optional[ProgramFacts]
                         ) -> ProgramFacts:
    from ..gensim.disassembler import Disassembler

    analyzer = _InstrAnalyzer(desc)
    disasm = Disassembler(desc)
    decoded = [disasm.disassemble(word) for word in words]
    flows = analyzer.cfa.flows_for_program(decoded)
    n_words = len(words)
    reused = 0
    computed = 0
    instr: Dict[int, InstrFacts] = {}
    for offset in range(n_words):
        if flows[offset] is None:
            continue
        address = origin + offset
        parent = (
            parent_facts.instr.get(offset)
            if parent_facts is not None else None
        )
        if parent is not None:
            key = tuple(
                (dop.field, dop.op_name,
                 unit_fingerprint(desc.operation(dop.field, dop.op_name)),
                 _freeze_operands(dop.operands))
                for dop in decoded[offset].operations
            )
            if parent.key == key:
                instr[offset] = parent
                reused += 1
                continue
        instr[offset] = analyzer.summarize(decoded[offset], offset, address)
        computed += 1
    entry, raw, complete = _build_blocks(
        analyzer, instr, flows, origin, n_words
    )
    blocks: Dict[int, BlockFacts] = {}
    halting: Optional[bool] = None
    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    if entry is not None and raw:
        blocks = _program_fixpoints(instr, raw, entry, analyzer)
        all_reads: set = set()
        all_writes: set = set()
        halts = "none"
        may_exit = False
        for facts in blocks.values():
            all_reads |= facts.reads
            all_writes |= facts.writes
            may_exit = may_exit or facts.may_exit
            for offset in facts.offsets:
                if instr[offset].halts == "always":
                    halts = "always"
                elif instr[offset].halts == "maybe" and halts == "none":
                    halts = "maybe"
        reads = frozenset(all_reads)
        writes = frozenset(all_writes)
        # "provably never halts" needs exact reachability, no reachable
        # halt write, and no escape from the loaded image (running off
        # the program ends the run too, just not by halting)
        if complete and halts == "none" and not may_exit:
            halting = False
    else:
        complete = False
    return ProgramFacts(
        name=name,
        origin=origin,
        n_words=n_words,
        digest=words_digest(words, origin),
        entry=entry,
        instr=instr,
        blocks=blocks,
        reachable=frozenset(blocks),
        complete=complete,
        halting=halting,
        reads=reads,
        writes=writes,
        reuse_counts={"instr_reused": reused, "instr_computed": computed},
    )


def program_facts(desc: ast.Description, words: Sequence[int],
                  origin: int = 0, *, name: str = "<program>",
                  cache=None, parent: Optional[ast.Description] = None
                  ) -> ProgramFacts:
    """Dataflow facts for *words* loaded at *origin* under *desc*.

    With a *cache* the result is memoized by (description fingerprint,
    words, origin).  With a *parent* description whose facts for the
    same program are cached, per-instruction summaries are reused for
    every instruction whose decoded operations are byte-identical
    definitions — the fixpoints (cheap) always re-run.  Set
    ``REPRO_INCREMENTAL_CHECK=1`` to shadow-build cold and assert the
    incremental result identical.
    """
    def build() -> ProgramFacts:
        parent_facts = None
        if parent is not None and cache is not None:
            parent_facts = cache.peek_facts(parent, words, origin)
        with obs.span("analyze.dataflow", desc=desc.name, program=name):
            facts = _build_program_facts(
                desc, words, origin, name, parent_facts
            )
        if parent_facts is not None:
            if cache is not None:
                cache.note_incremental("facts", facts.reuse_counts)
            if os.environ.get("REPRO_INCREMENTAL_CHECK") == "1":
                cold = _build_program_facts(desc, words, origin, name, None)
                if facts != cold:
                    raise AssertionError(
                        "incremental dataflow facts diverged from the"
                        f" cold build for {name!r}"
                    )
        return facts

    if cache is None:
        return build()
    return cache.facts(desc, words, origin, build)


def arch_facts(desc: ast.Description,
               programs: Sequence[Tuple[str, Sequence[int], int]], *,
               cache=None, parent: Optional[ast.Description] = None
               ) -> ArchFacts:
    """Facts for every ``(name, words, origin)`` program under *desc*."""
    return ArchFacts(
        desc_fp=fingerprint(desc),
        programs={
            name: program_facts(desc, words, origin, name=name,
                                cache=cache, parent=parent)
            for name, words, origin in programs
        },
    )


# ---------------------------------------------------------------------------
# Proof certificates
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DeoptFreedom:
    """Proof that a program can run without runtime deopt guards.

    Claims, over every entry-reachable instruction: no instruction
    memory write (no self-modifying code), no statically unresolvable
    destination, every PC write constant-folds, and no write latency
    exceeds one cycle (so no write ever outlives its block — the
    latency-residue machinery is never needed).  ``blocks`` is the
    reachable block cover; soundness needs it *closed* under the
    successor relation, which the checker re-derives.
    """

    desc_fp: str
    program_digest: str
    entry: int
    blocks: Tuple[int, ...]


@dataclass(frozen=True)
class SuperblockChain:
    """Certified single-successor block chains for superblock fusion.

    Each chain is a sequence of block entry offsets where every link is
    either an *unconditional, resolved, single-target* PC write landing
    exactly on the next block's entry, or a capped/fall-through block
    whose next word is the next entry.  A fused compile of the chain is
    then execution-equivalent to dispatching the blocks one by one
    (halt exits inside the chain remain side exits).
    """

    desc_fp: str
    program_digest: str
    chains: Tuple[Tuple[int, ...], ...]


def derive_deopt_freedom(desc: ast.Description,
                         facts: ProgramFacts) -> Optional[DeoptFreedom]:
    """A :class:`DeoptFreedom` certificate, or None when not provable."""
    if not facts.complete or facts.entry is None:
        return None
    for start in facts.reachable:
        block = facts.blocks[start]
        if block.succs_unknown:
            return None
        for offset in block.offsets:
            instr = facts.instr[offset]
            if instr.writes_imem or instr.unresolved:
                return None
            if instr.writes_pc and instr.pc_targets is None:
                return None
            if instr.max_latency > 1:
                return None
    return DeoptFreedom(
        desc_fp=fingerprint(desc),
        program_digest=facts.digest,
        entry=facts.entry,
        blocks=tuple(sorted(facts.reachable)),
    )


def _chain_next(facts: ProgramFacts, start: int) -> Optional[int]:
    """The unique certified continuation of block *start*, if any."""
    block = facts.blocks[start]
    if block.succs_unknown or len(block.succs) != 1:
        return None
    if block.may_exit:
        return None
    last = facts.instr[block.offsets[-1]]
    if last.writes_pc:
        if last.conditional_pc or last.pc_targets is None \
                or len(last.pc_targets) != 1:
            return None
        # a branch whose PC write outlives its own boundary executes
        # with delay-slot semantics when dispatched unfused — fusing
        # would change behaviour, so only latency-1 terminators link
        if last.max_latency > 1:
            return None
    succ = block.succs[0]
    return succ if succ in facts.blocks else None


def derive_superblock_chains(desc: ast.Description,
                             facts: ProgramFacts) -> SuperblockChain:
    """Maximal certified chains (length ≥ 2 blocks) in *facts*."""
    chains: List[Tuple[int, ...]] = []
    if facts.complete:
        next_of = {
            start: _chain_next(facts, start)
            for start in sorted(facts.blocks)
        }
        preds: Dict[int, List[int]] = {s: [] for s in facts.blocks}
        for start in facts.blocks:
            for succ in facts.blocks[start].succs:
                if succ in preds:
                    preds[succ].append(start)
        for start in sorted(facts.blocks):
            if next_of.get(start) is None:
                continue
            # a block whose *only* way in is its unique predecessor's
            # chain link is pure interior — it never heads a dispatch.
            # Join points (several predecessors) head their own chain
            # even when another chain runs through them: the overlap is
            # superblock tail duplication, bounded by MAX_CHAIN_LEN.
            sole = preds[start]
            if (start != facts.entry and len(sole) == 1
                    and next_of.get(sole[0]) == start):
                continue
            chain = [start]
            length = len(facts.blocks[start].offsets)
            node = next_of[start]
            while (
                node is not None
                and node not in chain
                and length + len(facts.blocks[node].offsets) <= MAX_CHAIN_LEN
            ):
                chain.append(node)
                length += len(facts.blocks[node].offsets)
                node = next_of.get(node)
            if len(chain) >= 2:
                chains.append(tuple(chain))
    return SuperblockChain(
        desc_fp=fingerprint(desc),
        program_digest=facts.digest,
        chains=tuple(chains),
    )


# ---------------------------------------------------------------------------
# Certificate checkers (independent of the fixpoint engine)
# ---------------------------------------------------------------------------


def _checker_instr(desc: ast.Description, words: Sequence[int],
                   origin: int):
    """(analyzer, flows, summarize-by-offset) re-derived from scratch."""
    from ..gensim.disassembler import Disassembler

    analyzer = _InstrAnalyzer(desc)
    disasm = Disassembler(desc)
    decoded = [disasm.disassemble(word) for word in words]
    flows = analyzer.cfa.flows_for_program(decoded)

    def summarize(offset: int) -> InstrFacts:
        return analyzer.summarize(decoded[offset], offset, origin + offset)

    return analyzer, flows, summarize


def check_deopt_freedom(desc: ast.Description, words: Sequence[int],
                        origin: int, cert: DeoptFreedom) -> bool:
    """Re-validate every :class:`DeoptFreedom` claim from first principles.

    Walks the certified block cover with a fresh analyzer (no fixpoint
    involved) and verifies: the entry block is covered, the cover is
    closed under resolved successors, and no covered instruction
    self-modifies, hides a destination, leaves a PC target unresolved,
    or writes with latency above one cycle.
    """
    from ..gensim.cfg import block_span

    if cert.desc_fp != fingerprint(desc):
        return False
    if cert.program_digest != words_digest(words, origin):
        return False
    analyzer, flows, summarize = _checker_instr(desc, words, origin)
    covered = set(cert.blocks)
    entry = 0 - origin
    if cert.entry != entry or entry not in covered:
        return False
    n_words = len(words)
    for start in cert.blocks:
        if not (0 <= start < n_words) or flows[start] is None:
            return False
        span = block_span(flows, start)
        if not span:
            return False
        for offset in span:
            instr = summarize(offset)
            if instr.writes_imem or instr.unresolved:
                return False
            if instr.writes_pc and instr.pc_targets is None:
                return False
            if instr.max_latency > 1:
                return False
        last = summarize(span[-1])
        fall = span[-1] + last.size
        succs: List[int] = []
        if last.writes_pc:
            succs.extend(t - origin for t in last.pc_targets)
        if not last.writes_pc or last.conditional_pc:
            succs.append(fall)
        for succ in succs:
            if 0 <= succ < n_words and flows[succ] is not None \
                    and succ not in covered:
                return False
    return True


def check_superblock_chains(desc: ast.Description, words: Sequence[int],
                            origin: int, cert: SuperblockChain) -> bool:
    """Re-validate every chain link from first principles."""
    from ..gensim.cfg import block_span

    if cert.desc_fp != fingerprint(desc):
        return False
    if cert.program_digest != words_digest(words, origin):
        return False
    analyzer, flows, summarize = _checker_instr(desc, words, origin)
    n_words = len(words)
    for chain in cert.chains:
        if len(chain) < 2:
            return False
        total = 0
        for i, start in enumerate(chain):
            if not (0 <= start < n_words) or flows[start] is None:
                return False
            span = block_span(flows, start)
            if not span:
                return False
            total += len(span)
            for offset in span:
                instr = summarize(offset)
                if instr.writes_imem or instr.unresolved:
                    return False
            if i == len(chain) - 1:
                continue
            last = summarize(span[-1])
            expected = origin + chain[i + 1]
            if last.writes_pc:
                if last.conditional_pc or last.pc_targets is None \
                        or last.max_latency > 1:
                    return False
                if last.pc_targets != (expected & analyzer.pc_mask,):
                    return False
            else:
                if span[-1] + last.size != chain[i + 1]:
                    return False
        if total > MAX_CHAIN_LEN:
            return False
    return True
