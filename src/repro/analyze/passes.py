"""The analysis passes and the pass manager.

Each pass is a pure function over a :class:`PassContext` (the description
plus lazily shared artifacts like the signature table) returning a list of
:class:`~repro.analyze.diagnostics.Diagnostic`.  :func:`analyze` runs the
semantic checker first — a description that is not well-formed is reported
and the deeper passes are skipped, because they assume a checked AST — and
then every registered pass, each under its own :mod:`repro.obs` span.

:func:`check_static` is the exploration-loop entry point: the same
pipeline, memoized in an :class:`~repro.cache.ArtifactCache` by the
description's structural fingerprint, so a sweep that re-proposes a known
candidate (or re-runs warm) pays a dictionary lookup.

The passes:

* **decode-ambiguity** (``ISDL101/102``) — pairwise signature-overlap
  check: two operations of one field (or two options of one non-terminal)
  whose constant bit images do not conflict can match the same word.  This
  is the static dual of the paper's Fig. 4 disassembler, which relies on a
  *unique* constant match; see also Axiom 1 (§3.3.2).
* **constraints** (``ISDL202/203``) — boolean analysis of each
  constraint over the field→operation choices it mentions: unsatisfiable
  constraints forbid *every* instruction (error); vacuous constraints
  forbid none (warning).  Unknown references (``ISDL201``) are reported by
  the semantic stage.
* **rtl-dataflow** (``ISDL301/302/303``) — storage reads that no
  operation ever writes, writes that are dead (unconditionally shadowed
  within the same instruction before any read), and write-write conflicts
  where two operations that may share an instruction word both write one
  location in the same cycle.
* **unused-definitions** (``ISDL401..404``) — tokens, non-terminals,
  storages and aliases never reachable from any operation.
* **encoding-space** (``ISDL501/502``) — unassigned opcode patterns per
  field and instruction bits no operation ever defines.
* **dataflow** (``ISDL601..605``) — whole-program reasoning on top of
  :mod:`repro.analyze.dataflow`: always-false guards and conditionally
  dead writes in the bare RTL, plus — when the caller supplies decoded
  workload programs — unreachable basic blocks, provably never-halting
  programs, and storages whose writes are provably dead across every
  supplied program.

Diagnostics are deduplicated and reported in a total order (code, then
source location, then context, then message) so repeated runs — and the
JSON/SARIF reports derived from them — are byte-stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..encoding.signature import SignatureTable
from ..isdl import ast, rtl, semantics
from ..isdl.fingerprint import fingerprint
from .diagnostics import AnalysisResult, Diagnostic, Severity

__all__ = [
    "PassContext",
    "AnalysisPass",
    "ALL_PASSES",
    "pass_named",
    "analyze",
    "check_static",
]

#: An unsatisfiability/vacuity check enumerates assignments over the
#: fields a constraint references; constraints this combinatorial are
#: skipped (none of our descriptions come close).
MAX_CONSTRAINT_ASSIGNMENTS = 4096


class PassContext:
    """What a pass may look at: the description plus shared artifacts.

    *programs* is an optional sequence of ``(name, words, origin)``
    decoded-word images (assembled workloads, typically): the dataflow
    pass runs its whole-program lints only when they are supplied.
    """

    def __init__(self, desc: ast.Description,
                 table: Optional[SignatureTable] = None,
                 cache=None, fp: Optional[str] = None, parent=None,
                 programs: Optional[Sequence[Tuple]] = None):
        self.desc = desc
        self.cache = cache
        self.fp = fp
        self.parent = parent
        self.programs: Tuple[Tuple[str, Tuple[int, ...], int], ...] = (
            tuple((name, tuple(words), origin)
                  for name, words, origin in programs)
            if programs else ()
        )
        self._table = table

    @property
    def table(self) -> SignatureTable:
        """The signature table, built once and shared with the tool chain
        (through the artifact cache when one is attached)."""
        if self._table is None:
            if self.cache is not None:
                self._table = self.cache.signature_table(
                    self.desc, self.fp, parent=self.parent
                )
            else:
                self._table = SignatureTable(self.desc)
        return self._table


@dataclass(frozen=True)
class AnalysisPass:
    """A registered analysis: name, code range, and the pass function."""

    name: str
    codes: str  # e.g. "ISDL101-ISDL102"
    description: str
    run: Callable[[PassContext], List[Diagnostic]]


# ---------------------------------------------------------------------------
# Pass 1: decode ambiguity (ISDL101, ISDL102)
# ---------------------------------------------------------------------------


def _ambiguous_pairs(signatures) -> List[Tuple[str, str, int]]:
    """``(name_a, name_b, witness_word)`` for non-conflicting pairs.

    Two encodings are distinguishable iff some bit is constant in both
    with opposite values; without such a bit the word carrying both
    constant images (don't-cares zero) matches both.
    """
    pairs = []
    items = list(signatures)
    for i, (name_a, sig_a) in enumerate(items):
        for name_b, sig_b in items[i + 1:]:
            common = sig_a.constant_mask & sig_b.constant_mask
            if (sig_a.constant_value & common) == (
                sig_b.constant_value & common
            ):
                witness = sig_a.constant_value | sig_b.constant_value
                pairs.append((name_a, name_b, witness))
    return pairs


def pass_decode_ambiguity(ctx: PassContext) -> List[Diagnostic]:
    desc, table = ctx.desc, ctx.table
    diagnostics: List[Diagnostic] = []
    for fld in desc.fields:
        signatures = [
            (op.name, table.operation(fld.name, op.name))
            for op in fld.operations
        ]
        for op_a, op_b, witness in _ambiguous_pairs(signatures):
            diagnostics.append(Diagnostic(
                "ISDL101", Severity.ERROR,
                f"operations {fld.name}.{op_a} and {fld.name}.{op_b} have"
                f" non-conflicting constant signatures: word"
                f" 0x{witness:x} matches both (decode is ambiguous)",
                where=f"{fld.name}.{op_a}",
                location=fld.operation(op_a).location or fld.location,
            ))
    for nt in desc.nonterminals.values():
        signatures = [
            (opt.label, table.option(nt.name, opt.label))
            for opt in nt.options
        ]
        for opt_a, opt_b, witness in _ambiguous_pairs(signatures):
            diagnostics.append(Diagnostic(
                "ISDL102", Severity.ERROR,
                f"non-terminal options {nt.name}.{opt_a} and"
                f" {nt.name}.{opt_b} have non-conflicting constant"
                f" signatures: value 0x{witness:x} matches both",
                where=f"{nt.name}.{opt_a}",
                location=nt.option(opt_a).location or nt.location,
            ))
    return diagnostics


# ---------------------------------------------------------------------------
# Pass 2: constraint analysis (ISDL202, ISDL203)
# ---------------------------------------------------------------------------


def _constraint_assignments(expr: ast.CExpr):
    """Yield every relevant field→operation assignment for *expr*.

    Constraint truth depends only on whether each referenced field's
    selected operation equals each referenced name; any other selection —
    including the field being absent from the instruction — behaves like
    ``None``, so the domain per field is its referenced ops plus ``None``.
    """
    by_field: Dict[str, Set[Optional[str]]] = {}
    for ref in ast.oprefs_in(expr):
        by_field.setdefault(ref.field, {None}).add(ref.op)
    fields = sorted(by_field)
    domains = [sorted(by_field[f], key=lambda v: (v is not None, v))
               for f in fields]
    total = 1
    for domain in domains:
        total *= len(domain)
    if total > MAX_CONSTRAINT_ASSIGNMENTS:
        return None
    assignments = []
    for combo in product(*domains):
        assignments.append({
            f: op for f, op in zip(fields, combo) if op is not None
        })
    return assignments


def pass_constraints(ctx: PassContext) -> List[Diagnostic]:
    desc = ctx.desc
    diagnostics: List[Diagnostic] = []
    known = {(fld.name, op.name) for fld, op in desc.operations()}
    for i, constraint in enumerate(desc.constraints):
        label = constraint.text or f"constraint #{i + 1}"
        refs = list(ast.oprefs_in(constraint.expr))
        if any((r.field, r.op) not in known for r in refs):
            continue  # dangling reference: already ISDL201 upstream
        assignments = _constraint_assignments(constraint.expr)
        if assignments is None:
            continue  # too combinatorial to enumerate; stay silent
        truths = [
            ast.evaluate_constraint(constraint.expr, selected)
            for selected in assignments
        ]
        if not any(truths):
            diagnostics.append(Diagnostic(
                "ISDL202", Severity.ERROR,
                f"{label} is unsatisfiable: no field->operation choice"
                " can meet it, so every instruction is forbidden",
                where=label,
                location=constraint.location,
            ))
        elif all(truths):
            diagnostics.append(Diagnostic(
                "ISDL203", Severity.WARNING,
                f"{label} is vacuous: it holds for every field->operation"
                " choice and can never forbid an instruction",
                where=label,
                location=constraint.location,
            ))
    return diagnostics


# ---------------------------------------------------------------------------
# Pass 3: RTL dataflow (ISDL301, ISDL302, ISDL303)
# ---------------------------------------------------------------------------

#: Storage kinds whose contents exist before the first instruction runs
#: (program images, data images, externally driven I/O) — reading them
#: without a prior write is the normal case, not a lint.
_EXTERNALLY_INITIALIZED = frozenset({
    ast.StorageKind.INSTRUCTION_MEMORY,
    ast.StorageKind.DATA_MEMORY,
    ast.StorageKind.MEMORY_MAPPED_IO,
    ast.StorageKind.REGISTER_FILE,
    ast.StorageKind.STACK,
    ast.StorageKind.PROGRAM_COUNTER,
})


def _alias_base(desc: ast.Description, name: str) -> str:
    alias = desc.aliases.get(name)
    return alias.storage if alias is not None else name


def _rtl_blocks(desc: ast.Description):
    """Yield ``(where, location, stmts)`` for every reachable RTL block:
    each operation's action+side_effect, then each NT option's."""
    for fld, op in desc.operations():
        yield (
            f"{fld.name}.{op.name}", op.location,
            list(op.action) + list(op.side_effect),
        )
    for nt in desc.nonterminals.values():
        for opt in nt.options:
            yield (
                f"{nt.name}.{opt.label}", opt.location,
                list(opt.action) + list(opt.side_effect),
            )


def _reads_in_stmt(stmt: rtl.Stmt) -> Set[str]:
    """Base storages read anywhere in one statement (conditions, RHS,
    index expressions of the destination included)."""
    names: Set[str] = set()
    roots: List[rtl.Expr] = []
    if isinstance(stmt, rtl.Assign):
        roots.append(stmt.expr)
        if isinstance(stmt.dest, rtl.StorageLV) and stmt.dest.index is not None:
            roots.append(stmt.dest.index)
    elif isinstance(stmt, rtl.If):
        roots.append(stmt.cond)
    for root in roots:
        for node in rtl.walk_exprs(root):
            if isinstance(node, rtl.StorageRead):
                names.add(node.storage)
    return names


def _static_index(expr: Optional[rtl.Expr]) -> Optional[Tuple]:
    """A hashable image of an index expression when it is static enough
    to compare structurally (literals and parameter references only)."""
    if expr is None:
        return ("none",)
    if isinstance(expr, rtl.IntLit):
        return ("int", expr.value)
    if isinstance(expr, rtl.ParamRef):
        return ("param", expr.name)
    return None


def _write_key(desc: ast.Description,
               dest: rtl.StorageLV) -> Optional[Tuple]:
    """A comparable identity for an exact storage write, or None when the
    written location cannot be pinned down statically."""
    alias = desc.aliases.get(dest.storage)
    if alias is not None:
        if dest.hi is not None:
            return None  # a slice of an alias slice: too clever to track
        return (alias.storage, ("int", alias.index) if alias.index is not None
                else ("none",), alias.hi, alias.lo)
    index = _static_index(dest.index)
    if index is None:
        return None
    return (dest.storage, index, dest.hi, dest.lo)


def _dead_writes(desc: ast.Description, where: str,
                 stmts: Sequence[rtl.Stmt]) -> List[Diagnostic]:
    """ISDL302: unconditional writes shadowed before any read."""
    diagnostics: List[Diagnostic] = []
    pending: Dict[Tuple, Tuple[rtl.Assign, str]] = {}
    for stmt in stmts:  # top level only: If bodies are control-dependent
        if isinstance(stmt, rtl.If):
            touched = {
                _alias_base(desc, n)
                for n in rtl.storages_read([stmt]) | rtl.storages_written([stmt])
            }
            for key in [k for k, (_, base) in pending.items()
                        if base in touched]:
                del pending[key]
            continue
        if not isinstance(stmt, rtl.Assign):
            continue
        read_bases = {_alias_base(desc, n) for n in _reads_in_stmt(stmt)}
        for key in [k for k, (_, base) in pending.items()
                    if base in read_bases]:
            del pending[key]
        dest = stmt.dest
        if not isinstance(dest, rtl.StorageLV):
            pending.clear()  # writes through $$/NT params: unknown target
            continue
        key = _write_key(desc, dest)
        if key is None:
            continue
        earlier = pending.get(key)
        if earlier is not None:
            diagnostics.append(Diagnostic(
                "ISDL302", Severity.WARNING,
                f"{where}: write to {rtl.format_lvalue(earlier[0].dest)} is"
                " dead — unconditionally overwritten in the same"
                " instruction before any read",
                where=where,
                location=earlier[0].location,
            ))
        pending[key] = (stmt, _alias_base(desc, dest.storage))
    return diagnostics


def _unconditional_write_keys(desc: ast.Description,
                              stmts: Sequence[rtl.Stmt]) -> Set[Tuple]:
    """Exactly-located unconditional writes of one RTL block, excluding
    dynamically indexed destinations (different operands rarely collide)."""
    keys: Set[Tuple] = set()
    for stmt in stmts:
        if isinstance(stmt, rtl.Assign) and isinstance(
            stmt.dest, rtl.StorageLV
        ):
            index = (stmt.dest.index is None
                     or isinstance(stmt.dest.index, rtl.IntLit))
            if not index:
                continue
            key = _write_key(desc, stmt.dest)
            if key is not None:
                keys.add(key)
    return keys


def pass_rtl_dataflow(ctx: PassContext) -> List[Diagnostic]:
    desc = ctx.desc
    diagnostics: List[Diagnostic] = []

    # ISDL301 — reads of storage no operation ever writes.
    reads: Set[str] = set()
    writes: Set[str] = set()
    for _, _, stmts in _rtl_blocks(desc):
        reads |= {_alias_base(desc, n) for n in rtl.storages_read(stmts)}
        writes |= {_alias_base(desc, n) for n in rtl.storages_written(stmts)}
    for storage in desc.storages.values():
        if storage.kind in _EXTERNALLY_INITIALIZED:
            continue
        if storage.name in reads and storage.name not in writes:
            diagnostics.append(Diagnostic(
                "ISDL301", Severity.WARNING,
                f"storage {storage.name!r} is read but never written by"
                " any operation — every read sees the reset value",
                where=storage.name,
                location=storage.location,
            ))

    # ISDL302 — dead writes within one instruction.
    for where, _, stmts in _rtl_blocks(desc):
        diagnostics.extend(_dead_writes(desc, where, stmts))

    # ISDL303 — write-write conflicts between co-schedulable operations.
    per_op: List[Tuple[str, str, Set[Tuple]]] = []
    for fld, op in desc.operations():
        stmts = list(op.action) + list(op.side_effect)
        per_op.append((
            fld.name, op.name, _unconditional_write_keys(desc, stmts)
        ))
    for i, (field_a, op_a, keys_a) in enumerate(per_op):
        if not keys_a:
            continue
        for field_b, op_b, keys_b in per_op[i + 1:]:
            if field_a == field_b:
                continue
            shared = keys_a & keys_b
            if not shared:
                continue
            if not desc.instruction_valid({field_a: op_a, field_b: op_b}):
                continue  # a constraint already forbids the combination
            names = sorted({key[0] for key in shared})
            diagnostics.append(Diagnostic(
                "ISDL303", Severity.WARNING,
                f"operations {field_a}.{op_a} and {field_b}.{op_b} may"
                f" share an instruction and both write"
                f" {', '.join(names)} in the same cycle",
                where=f"{field_a}.{op_a}",
                location=desc.operation(field_a, op_a).location,
            ))
    return diagnostics


# ---------------------------------------------------------------------------
# Pass 4: unused definitions (ISDL401..ISDL404)
# ---------------------------------------------------------------------------


def pass_unused_definitions(ctx: PassContext) -> List[Diagnostic]:
    desc = ctx.desc
    diagnostics: List[Diagnostic] = []

    used_tokens: Set[str] = set()
    used_nts: Set[str] = set()
    worklist: List[str] = []  # NT names whose options are still to visit

    def mark(type_name: str) -> None:
        if type_name in desc.nonterminals:
            if type_name not in used_nts:
                used_nts.add(type_name)
                worklist.append(type_name)
        else:
            used_tokens.add(type_name)

    for _, op in desc.operations():
        for param in op.params:
            mark(param.type_name)
    while worklist:
        for opt in desc.nonterminals[worklist.pop()].options:
            for param in opt.params:
                mark(param.type_name)

    referenced: Set[str] = set()  # raw names in RTL (storages or aliases)
    for _, _, stmts in _rtl_blocks(desc):
        referenced |= rtl.storages_read(stmts)
        referenced |= rtl.storages_written(stmts)
    used_storages = {_alias_base(desc, n) for n in referenced}
    # The sequencer and the run loop use these without RTL mentions.
    for storage in desc.storages.values():
        if storage.kind in (ast.StorageKind.PROGRAM_COUNTER,
                            ast.StorageKind.INSTRUCTION_MEMORY):
            used_storages.add(storage.name)
    for attr_value in desc.attributes.values():
        used_storages.add(_alias_base(desc, attr_value))

    for token in desc.tokens.values():
        if token.name not in used_tokens:
            diagnostics.append(Diagnostic(
                "ISDL401", Severity.WARNING,
                f"token {token.name!r} is never used as a parameter type",
                where=token.name, location=token.location,
            ))
    for nt in desc.nonterminals.values():
        if nt.name not in used_nts:
            diagnostics.append(Diagnostic(
                "ISDL402", Severity.WARNING,
                f"non-terminal {nt.name!r} is never used as a parameter"
                " type of any operation",
                where=nt.name, location=nt.location,
            ))
    for storage in desc.storages.values():
        if storage.name not in used_storages:
            diagnostics.append(Diagnostic(
                "ISDL403", Severity.WARNING,
                f"storage {storage.name!r} is never read or written by"
                " any operation",
                where=storage.name, location=storage.location,
            ))
    for alias in desc.aliases.values():
        if alias.name not in referenced and alias.name not in set(
            desc.attributes.values()
        ):
            diagnostics.append(Diagnostic(
                "ISDL404", Severity.INFO,
                f"alias {alias.name!r} is never referenced",
                where=alias.name, location=alias.location,
            ))
    return diagnostics


# ---------------------------------------------------------------------------
# Pass 5: encoding-space coverage (ISDL501, ISDL502)
# ---------------------------------------------------------------------------


def _bit_positions(mask: int) -> List[int]:
    positions = []
    bit = 0
    while mask:
        if mask & 1:
            positions.append(bit)
        mask >>= 1
        bit += 1
    return positions


def pass_encoding_space(ctx: PassContext) -> List[Diagnostic]:
    desc, table = ctx.desc, ctx.table
    diagnostics: List[Diagnostic] = []
    defined_anywhere = 0
    for fld in desc.fields:
        signatures = [
            table.operation(fld.name, op.name) for op in fld.operations
        ]
        opcode_mask = 0
        for sig in signatures:
            opcode_mask |= sig.constant_mask
            defined_anywhere |= sig.defined_mask
        opcode_bits = len(_bit_positions(opcode_mask))
        if opcode_bits == 0:
            continue
        total = 1 << opcode_bits
        claimed = 0
        for sig in signatures:
            own = len(_bit_positions(sig.constant_mask & opcode_mask))
            claimed += 1 << (opcode_bits - own)
        holes = max(total - claimed, 0)
        if holes:
            diagnostics.append(Diagnostic(
                "ISDL501", Severity.INFO,
                f"field {fld.name!r} leaves {holes} of {total} opcode"
                f" patterns unassigned over bits"
                f" {_bit_positions(opcode_mask)}",
                where=fld.name, location=fld.location,
            ))
    wasted = [
        position for position in range(desc.word_width)
        if not (defined_anywhere >> position) & 1
    ]
    if wasted:
        diagnostics.append(Diagnostic(
            "ISDL502", Severity.INFO,
            f"instruction bits {wasted} are don't-care in every operation"
            " of every field (wasted encoding space)",
            where=desc.name,
        ))
    return diagnostics


# ---------------------------------------------------------------------------
# Pass 6: whole-program dataflow (ISDL601..ISDL605)
# ---------------------------------------------------------------------------

#: Storage kinds whose writes are externally observable (program output,
#: I/O, the sequencer's own state) — a write nothing reads back is the
#: normal case there, not a dead store.
_DEAD_STORE_EXEMPT = frozenset({
    ast.StorageKind.PROGRAM_COUNTER,
    ast.StorageKind.INSTRUCTION_MEMORY,
    ast.StorageKind.MEMORY_MAPPED_IO,
    ast.StorageKind.DATA_MEMORY,
})


def _false_guards(desc: ast.Description, where: str, location,
                  stmts: Sequence[rtl.Stmt],
                  texts: Set[str]) -> List[Diagnostic]:
    """ISDL603 (description level): guards that fold to a constant 0
    with no operand bindings at all — false for *every* instruction.
    The formatted guard texts land in *texts* so the per-program check
    can skip them (they would re-fire at every decoded occurrence)."""
    diagnostics: List[Diagnostic] = []

    def walk(body: Sequence[rtl.Stmt]) -> None:
        for stmt in body:
            if not isinstance(stmt, rtl.If):
                continue
            value = rtl.try_const_eval(stmt.cond)
            if value is not None and not value:
                text = rtl.format_expr(stmt.cond)
                texts.add(text)
                diagnostics.append(Diagnostic(
                    "ISDL603", Severity.WARNING,
                    f"{where}: guard {text!r} is always false — its"
                    " then-branch can never execute",
                    where=where,
                    location=stmt.location or location,
                ))
            walk(stmt.then)
            walk(stmt.orelse)

    walk(stmts)
    return diagnostics


def _guarded_write_keys(desc: ast.Description,
                        stmt: rtl.If) -> List[Tuple[Tuple, rtl.Assign]]:
    """Exactly-located writes anywhere under *stmt*'s guard."""
    out: List[Tuple[Tuple, rtl.Assign]] = []

    def walk(body: Sequence[rtl.Stmt]) -> None:
        for inner in body:
            if isinstance(inner, rtl.If):
                walk(inner.then)
                walk(inner.orelse)
            elif isinstance(inner, rtl.Assign) and isinstance(
                inner.dest, rtl.StorageLV
            ):
                key = _write_key(desc, inner.dest)
                if key is not None:
                    out.append((key, inner))

    walk(stmt.then)
    walk(stmt.orelse)
    return out


def _dead_conditional_writes(desc: ast.Description, where: str,
                             stmts: Sequence[rtl.Stmt]) -> List[Diagnostic]:
    """ISDL604: a guarded write later overwritten unconditionally (with
    no intervening read of the storage) can never be observed — the
    guard is evaluated for nothing.  The complement of ISDL302, which
    only reports *unconditional* shadowed writes."""
    diagnostics: List[Diagnostic] = []
    #: write key -> guarded Assigns still awaiting a read (key[0] is
    #: always the base storage, see _write_key)
    pending: Dict[Tuple, List[rtl.Assign]] = {}

    def invalidate(read_bases: Set[str]) -> None:
        for key in [k for k in pending if k[0] in read_bases]:
            del pending[key]

    for stmt in stmts:
        if isinstance(stmt, rtl.If):
            invalidate({
                _alias_base(desc, n) for n in rtl.storages_read([stmt])
            })
            for key, guarded in _guarded_write_keys(desc, stmt):
                pending.setdefault(key, []).append(guarded)
            continue
        if not isinstance(stmt, rtl.Assign):
            continue
        invalidate({_alias_base(desc, n) for n in _reads_in_stmt(stmt)})
        dest = stmt.dest
        if not isinstance(dest, rtl.StorageLV):
            pending.clear()  # write through $$/NT params: unknown target
            continue
        key = _write_key(desc, dest)
        if key is None:
            continue
        for guarded in pending.pop(key, ()):
            diagnostics.append(Diagnostic(
                "ISDL604", Severity.WARNING,
                f"{where}: conditional write to"
                f" {rtl.format_lvalue(guarded.dest)} is dead — a later"
                " unconditional write overwrites it before any read",
                where=where,
                location=guarded.location,
            ))
    return diagnostics


def _unreachable_runs(facts) -> List[Tuple[int, int]]:
    """Maximal ``(start offset, instruction count)`` runs of decodable
    words outside the entry-reachable block cover."""
    reachable = facts.reachable_offsets
    runs: List[Tuple[int, int]] = []
    start: Optional[int] = None
    count = 0
    expected: Optional[int] = None
    for offset in sorted(facts.instr):
        if offset in reachable:
            if start is not None:
                runs.append((start, count))
                start = None
            continue
        if start is not None and offset == expected:
            count += 1
        else:
            if start is not None:
                runs.append((start, count))
            start, count = offset, 1
        expected = offset + facts.instr[offset].size
    if start is not None:
        runs.append((start, count))
    return runs


def pass_dataflow(ctx: PassContext) -> List[Diagnostic]:
    desc = ctx.desc
    diagnostics: List[Diagnostic] = []
    halt = desc.attributes.get("halt_flag")
    halt_base = _alias_base(desc, halt) if halt else None

    # -- description level --------------------------------------------------

    # ISDL602 — a halt flag nothing ever raises: no program can halt.
    if halt_base is not None:
        written: Set[str] = set()
        for _, _, stmts in _rtl_blocks(desc):
            written |= {
                _alias_base(desc, n) for n in rtl.storages_written(stmts)
            }
        if halt_base not in written:
            diagnostics.append(Diagnostic(
                "ISDL602", Severity.WARNING,
                f"halt flag {halt!r} is never written by any operation —"
                " no program on this architecture can ever halt",
                where=desc.name,
            ))

    static_false: Set[str] = set()
    for where, location, stmts in _rtl_blocks(desc):
        diagnostics.extend(
            _false_guards(desc, where, location, stmts, static_false)
        )
        diagnostics.extend(_dead_conditional_writes(desc, where, stmts))

    # -- whole-program level (needs decoded word images) --------------------

    if not ctx.programs:
        return diagnostics
    from .dataflow import arch_facts

    facts = arch_facts(desc, ctx.programs, cache=ctx.cache,
                       parent=ctx.parent)
    for name, program in sorted(facts.programs.items()):
        if program.complete:
            for start, length in _unreachable_runs(program):
                diagnostics.append(Diagnostic(
                    "ISDL601", Severity.WARNING,
                    f"program {name!r}: block at word offset {start:#x}"
                    f" ({length} instruction(s)) is unreachable from the"
                    " entry point",
                    where=name,
                ))
            for offset in sorted(program.reachable_offsets):
                for guard in program.instr[offset].false_guards:
                    if guard in static_false:
                        continue  # already reported for every instruction
                    diagnostics.append(Diagnostic(
                        "ISDL603", Severity.WARNING,
                        f"program {name!r}: guard {guard!r} at word offset"
                        f" {offset:#x} is always false under the decoded"
                        " operands",
                        where=name,
                    ))
        if program.halting is False:
            diagnostics.append(Diagnostic(
                "ISDL602", Severity.WARNING,
                f"program {name!r} provably never halts: no reachable"
                " instruction writes the halt flag and control never"
                " leaves the loaded image",
                where=name,
            ))

    # ISDL605 — storages written but never read across *every* supplied
    # program; sound only when reachability is exact everywhere.
    if facts.complete:
        written_all: Set[str] = set()
        read_all: Set[str] = set()
        for program in facts.programs.values():
            written_all |= program.writes
            read_all |= program.reads
        for storage in desc.storages.values():
            if storage.kind in _DEAD_STORE_EXEMPT \
                    or storage.name == halt_base:
                continue
            if storage.name in written_all and storage.name not in read_all:
                diagnostics.append(Diagnostic(
                    "ISDL605", Severity.INFO,
                    f"storage {storage.name!r} is written but never read"
                    f" by any reachable instruction of the"
                    f" {len(facts.programs)} supplied program(s) — every"
                    " write is provably dead",
                    where=storage.name,
                    location=storage.location,
                ))
    return diagnostics


# ---------------------------------------------------------------------------
# The registry and the pass manager
# ---------------------------------------------------------------------------

ALL_PASSES: Tuple[AnalysisPass, ...] = (
    AnalysisPass(
        "decode-ambiguity", "ISDL101-ISDL102",
        "operations/options whose constant signatures can match one word",
        pass_decode_ambiguity,
    ),
    AnalysisPass(
        "constraints", "ISDL202-ISDL203",
        "unsatisfiable and vacuous boolean constraints",
        pass_constraints,
    ),
    AnalysisPass(
        "rtl-dataflow", "ISDL301-ISDL303",
        "never-written reads, dead writes, same-cycle write conflicts",
        pass_rtl_dataflow,
    ),
    AnalysisPass(
        "unused-definitions", "ISDL401-ISDL404",
        "tokens, non-terminals, storages and aliases nothing reaches",
        pass_unused_definitions,
    ),
    AnalysisPass(
        "encoding-space", "ISDL501-ISDL502",
        "unassigned opcode patterns and wasted instruction bits",
        pass_encoding_space,
    ),
    AnalysisPass(
        "dataflow", "ISDL601-ISDL605",
        "always-false guards, dead conditional writes; with programs:"
        " unreachable blocks, never-halting, program-dead stores",
        pass_dataflow,
    ),
)


def pass_named(name: str) -> AnalysisPass:
    for analysis in ALL_PASSES:
        if analysis.name == name:
            return analysis
    raise KeyError(name)


def _loc_key(diagnostic: Diagnostic) -> Tuple[str, int, int]:
    location = diagnostic.location
    if location is None:
        return ("", 0, 0)
    return (location.filename or "", location.line, location.column)


def _ordered(diagnostics: Sequence[Diagnostic]) -> Tuple[Diagnostic, ...]:
    """Deduplicate and totally order diagnostics.

    Sort key: code, then source location, then structural context, then
    message — nothing depends on pass registration order or dictionary
    iteration, so the text/JSON/SARIF reports are byte-stable across
    runs and refactorings.
    """
    seen = set()
    out: List[Diagnostic] = []
    for diagnostic in sorted(
        diagnostics,
        key=lambda d: (d.code, _loc_key(d), d.where, d.message),
    ):
        identity = (diagnostic.code, diagnostic.severity,
                    diagnostic.message, diagnostic.where,
                    _loc_key(diagnostic))
        if identity in seen:
            continue
        seen.add(identity)
        out.append(diagnostic)
    return tuple(out)


def analyze(desc: ast.Description, *,
            passes: Optional[Sequence[AnalysisPass]] = None,
            table: Optional[SignatureTable] = None,
            cache=None, fp: Optional[str] = None,
            parent=None,
            programs: Optional[Sequence[Tuple]] = None) -> AnalysisResult:
    """Run the semantic stage plus every (selected) pass over *desc*.

    A description with error-severity semantic diagnostics gets only the
    semantic stage — the passes assume a well-formed AST.  A pass that
    raises is reported as an ``ISDL901`` error rather than aborting the
    whole analysis (the gate then rejects the candidate, which is the
    safe direction).  *programs* — ``(name, words, origin)`` decoded
    images — unlocks the whole-program dataflow lints (ISDL601/602
    program level, ISDL605).  The returned diagnostics are deduplicated
    and totally ordered (see :func:`_ordered`).
    """
    selected = ALL_PASSES if passes is None else tuple(passes)
    name = getattr(desc, "name", "<description>")
    with obs.span("analyze.run", desc=name):
        diagnostics: List[Diagnostic] = list(semantics.diagnose(desc))
        ran: List[str] = ["semantic"]
        well_formed = all(
            d.severity is not Severity.ERROR for d in diagnostics
        )
        if well_formed:
            ctx = PassContext(desc, table=table, cache=cache, fp=fp,
                              parent=parent, programs=programs)
            for analysis in selected:
                with obs.span("analyze.pass", analysis=analysis.name):
                    try:
                        diagnostics.extend(analysis.run(ctx))
                    except Exception as exc:  # broad by design — keep linting
                        diagnostics.append(Diagnostic(
                            "ISDL901", Severity.ERROR,
                            f"analysis pass {analysis.name!r} failed:"
                            f" {type(exc).__name__}: {exc}",
                            where=analysis.name,
                        ))
                ran.append(analysis.name)
        ordered = _ordered(diagnostics)
        obs.add("analyze.runs")
        obs.add("analyze.diagnostics", len(ordered))
        return AnalysisResult(name, ordered, tuple(ran))


def check_static(desc: ast.Description, *,
                 cache=None,
                 passes: Optional[Sequence[AnalysisPass]] = None,
                 parent=None,
                 programs: Optional[Sequence[Tuple]] = None
                 ) -> AnalysisResult:
    """Analyze *desc*, memoized by its structural fingerprint.

    This is the validity gate the exploration engine calls per candidate:
    with an :class:`~repro.cache.ArtifactCache` attached the analysis runs
    once per distinct description and warm sweeps pay a lookup.  *parent*
    is the incremental-build hint threaded through to the shared
    signature table (see :meth:`repro.cache.ArtifactCache.signature_table`).
    With *programs* the memo key additionally covers the program images
    (the whole-program lints depend on them).
    """
    if cache is None:
        return analyze(desc, passes=passes, programs=programs)
    fp = fingerprint(desc)
    builder = lambda: analyze(  # tiny memo thunk
        desc, passes=passes, cache=cache, fp=fp, parent=parent,
        programs=programs,
    )
    if programs:
        from .dataflow import words_digest

        key = (fp, tuple(
            words_digest(words, origin) for _, words, origin in programs
        ))
        return cache.get_or_build("analysis", key, builder)
    return cache.analysis(desc, builder, fp=fp)
