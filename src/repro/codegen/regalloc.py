"""Linear-scan register allocation for the retargetable code generator.

Virtual registers get live intervals from the linear IR; intervals crossing
a loop back-edge are extended to the branch (loop-carried values stay live
around the whole loop body).  Allocation failure is reported as a
:class:`~repro.errors.CodegenError` — in the exploration methodology that
means the candidate architecture's register file is too small for the
workload, a legitimate evaluation result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import CodegenError
from .ir import IrOp, Kernel, Opcode, VReg


@dataclass
class Interval:
    """Live interval of one virtual register (positions in the op list)."""

    vreg: VReg
    start: int
    end: int


def live_intervals(kernel: Kernel) -> List[Interval]:
    """Compute loop-aware live intervals for every virtual register."""
    first_def: Dict[VReg, int] = {}
    last_use: Dict[VReg, int] = {}
    for pos, op in enumerate(kernel.ops):
        if op.dst is not None and op.dst not in first_def:
            first_def[op.dst] = pos
        for use in op.uses():
            last_use[use] = pos
        if op.dst is not None:
            last_use.setdefault(op.dst, pos)
    intervals = {
        vreg: Interval(vreg, start, last_use[vreg])
        for vreg, start in first_def.items()
    }
    # Back-edges: a value live anywhere inside a loop stays live through
    # the whole loop (it may be read again on the next iteration).
    labels = kernel.labels()
    back_edges: List[Tuple[int, int]] = []
    for pos, op in enumerate(kernel.ops):
        if op.opcode in (Opcode.JUMP, Opcode.CBR):
            target = labels[op.label]
            if target <= pos:
                back_edges.append((target, pos))
    changed = True
    while changed:
        changed = False
        for target, branch in back_edges:
            for interval in intervals.values():
                overlaps = interval.start < branch and interval.end > target
                if overlaps and interval.end < branch:
                    interval.end = branch
                    changed = True
    return sorted(intervals.values(), key=lambda iv: (iv.start, iv.end))


def allocate(kernel: Kernel, register_count: int,
             first_register: int = 0,
             reserved: Tuple[int, ...] = ()) -> Dict[VReg, int]:
    """Map virtual registers to physical register numbers (linear scan)."""
    available = [
        first_register + i
        for i in range(register_count)
        if first_register + i not in reserved
    ]
    intervals = live_intervals(kernel)
    mapping: Dict[VReg, int] = {}
    active: List[Interval] = []
    free = list(reversed(available))  # pop() takes the lowest number
    free.sort(reverse=True)
    for interval in intervals:
        # Expire intervals ending at or before this start: reads happen
        # before writes within a cycle, so a destination may reuse the
        # register of a value whose last use is the defining instruction.
        still_active = []
        for old in active:
            if old.end <= interval.start:
                free.append(mapping[old.vreg])
                free.sort(reverse=True)
            else:
                still_active.append(old)
        active = still_active
        if not free:
            raise CodegenError(
                f"register allocation failed: {len(active) + 1} values live"
                f" at position {interval.start} but only"
                f" {len(available)} registers available"
            )
        mapping[interval.vreg] = free.pop()
        active.append(interval)
    return mapping


def max_pressure(kernel: Kernel) -> int:
    """Maximum number of simultaneously live values (for diagnostics)."""
    intervals = live_intervals(kernel)
    events = []
    for interval in intervals:
        events.append((interval.start, 1))
        events.append((interval.end, -1))
    pressure = best = 0
    # At equal positions the release sorts first (read-before-write).
    for _, delta in sorted(events):
        pressure += delta
        best = max(best, pressure)
    return best
