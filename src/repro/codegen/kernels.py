"""A registry of named benchmark kernels for remote callers.

The in-process exploration API takes :class:`~repro.codegen.ir.Kernel`
objects built with :class:`~repro.codegen.ir.KernelBuilder`; a client of
the evaluation service (:mod:`repro.serve`) only has JSON to work with,
so workloads travel as *specs* — ``"name"`` or ``"name:size"`` strings
resolved here into the same IR kernels the examples use.  The registry is
deliberately small and mirrors the kernels the paper's introduction
motivates: reduction loops, a shift-add dot product, block moves, and a
memory fill.

A spec's size parameter scales the iteration count, so callers can dial
simulated work without new code on the server.  Resolution is pure (the
same spec always produces a structurally identical kernel), which keeps
:func:`repro.cache.kernel_fingerprint` stable across submissions — the
property the service's request-coalescing key relies on.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import CodegenError
from .ir import Cond, Kernel, KernelBuilder, Opcode

__all__ = [
    "KERNEL_FACTORIES",
    "available_kernels",
    "kernel_from_spec",
    "parse_kernel_spec",
    "resolve_kernels",
]


def sum_kernel(n: int = 40) -> Kernel:
    """Sum the integers n..1 into an accumulator and store it at DM[0]."""
    K = KernelBuilder(f"sum{n}")
    cnt = K.li(n)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    return K.build()


def dot_kernel(n: int = 8) -> Kernel:
    """Integer dot product via shift-add multiply (no multiplier needed)."""
    K = KernelBuilder(f"dot{n}")
    a_ptr = K.li(0)
    b_ptr = K.li(16)
    count = K.li(n)
    acc = K.li(0)
    K.label("loop")
    a = K.load(a_ptr)
    b = K.load(b_ptr)
    partial = K.li(0)
    bit = K.li(8)
    K.label("mul")
    masked = K.and_(b, 1)
    K.cbr(Cond.EQ, masked, 0, "skip")
    K.binary_into(partial, Opcode.ADD, partial, a)
    K.label("skip")
    K.binary_into(a, Opcode.SHL, a, 1)
    K.binary_into(b, Opcode.SHR, b, 1)
    K.binary_into(bit, Opcode.SUB, bit, 1)
    K.cbr(Cond.NE, bit, 0, "mul")
    K.binary_into(acc, Opcode.ADD, acc, partial)
    K.binary_into(a_ptr, Opcode.ADD, a_ptr, 1)
    K.binary_into(b_ptr, Opcode.ADD, b_ptr, 1)
    K.binary_into(count, Opcode.SUB, count, 1)
    K.cbr(Cond.NE, count, 0, "loop")
    K.store(K.li(40), acc)
    return K.build()


def blockmove_kernel(n: int = 12) -> Kernel:
    """Copy n words from DM[0..] to DM[64..]."""
    K = KernelBuilder(f"blockmove{n}")
    src = K.li(0)
    dst = K.li(64)
    count = K.li(n)
    K.label("loop")
    K.store(dst, K.load(src))
    K.binary_into(src, Opcode.ADD, src, 1)
    K.binary_into(dst, Opcode.ADD, dst, 1)
    K.binary_into(count, Opcode.SUB, count, 1)
    K.cbr(Cond.NE, count, 0, "loop")
    return K.build()


def memset_kernel(n: int = 16) -> Kernel:
    """Fill n words at DM[32..] with a constant."""
    K = KernelBuilder(f"memset{n}")
    dst = K.li(32)
    value = K.li(85)
    count = K.li(n)
    K.label("loop")
    K.store(dst, value)
    K.binary_into(dst, Opcode.ADD, dst, 1)
    K.binary_into(count, Opcode.SUB, count, 1)
    K.cbr(Cond.NE, count, 0, "loop")
    return K.build()


#: spec name -> (factory taking the size parameter, default size)
KERNEL_FACTORIES: Dict[str, Tuple[Callable[[int], Kernel], int]] = {
    "sum": (sum_kernel, 40),
    "dot": (dot_kernel, 8),
    "blockmove": (blockmove_kernel, 12),
    "memset": (memset_kernel, 16),
}


def available_kernels() -> List[str]:
    """The spec names :func:`kernel_from_spec` accepts, sorted."""
    return sorted(KERNEL_FACTORIES)


def parse_kernel_spec(spec: str) -> Tuple[str, int]:
    """Split ``"name"`` / ``"name:size"`` into a validated (name, size)."""
    name, _, size_text = spec.partition(":")
    name = name.strip()
    entry = KERNEL_FACTORIES.get(name)
    if entry is None:
        raise CodegenError(
            f"unknown workload kernel {name!r}"
            f" (available: {', '.join(available_kernels())})"
        )
    _, default_size = entry
    if not size_text:
        return name, default_size
    try:
        size = int(size_text)
    except ValueError:
        raise CodegenError(
            f"bad workload size in {spec!r}: {size_text!r} is not an integer"
        ) from None
    if size <= 0:
        raise CodegenError(f"workload size must be positive in {spec!r}")
    return name, size


def kernel_from_spec(spec: str) -> Kernel:
    """Build the kernel a ``"name[:size]"`` spec names."""
    name, size = parse_kernel_spec(spec)
    factory, _ = KERNEL_FACTORIES[name]
    return factory(size)


def resolve_kernels(specs: Sequence[str]) -> List[Kernel]:
    """Resolve a list of specs; order is preserved, duplicates allowed."""
    if not specs:
        raise CodegenError("at least one workload kernel spec is required")
    return [kernel_from_spec(spec) for spec in specs]
