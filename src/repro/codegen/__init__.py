"""A minimal retargetable code generator (stand-in for AVIV, paper ref [2])."""

from .compile import CompiledProgram, Compiler, compile_kernel
from .ir import Cond, Imm, IrOp, Kernel, KernelBuilder, Opcode, VReg
from .regalloc import allocate, live_intervals, max_pressure
from .select import Pattern, TargetIsa, analyze

__all__ = [
    "CompiledProgram",
    "Compiler",
    "compile_kernel",
    "Cond",
    "Imm",
    "IrOp",
    "Kernel",
    "KernelBuilder",
    "Opcode",
    "VReg",
    "allocate",
    "live_intervals",
    "max_pressure",
    "Pattern",
    "TargetIsa",
    "analyze",
]
