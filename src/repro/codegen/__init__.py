"""A minimal retargetable code generator (stand-in for AVIV, paper ref [2])."""

from .compile import CompiledProgram, Compiler, compile_kernel
from .ir import Cond, Imm, IrOp, Kernel, KernelBuilder, Opcode, VReg
from .kernels import available_kernels, kernel_from_spec, resolve_kernels
from .regalloc import allocate, live_intervals, max_pressure
from .select import Pattern, TargetIsa, analyze

__all__ = [
    "CompiledProgram",
    "Compiler",
    "compile_kernel",
    "Cond",
    "Imm",
    "IrOp",
    "Kernel",
    "KernelBuilder",
    "Opcode",
    "VReg",
    "available_kernels",
    "kernel_from_spec",
    "resolve_kernels",
    "allocate",
    "live_intervals",
    "max_pressure",
    "Pattern",
    "TargetIsa",
    "analyze",
]
