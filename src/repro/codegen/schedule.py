"""VLIW packing and hazard-free list scheduling.

Machine operations are packed greedily, in program order, into VLIW
instructions: an operation joins the current packet only if its field is
free, the ISDL constraints admit the combination, and it neither reads nor
writes anything a packet member writes (same-cycle reads see pre-cycle
state, so a same-packet RAW would change semantics).  Branches and labels
close packets.  After packing, explicit NOP packets are inserted so every
consumer issues at least ``latency`` slots after its producer — the
schedule is hazard-free and incurs zero stall cycles on the ILS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..isdl import ast


@dataclass
class MachineOp:
    """One selected target operation, pre-scheduling."""

    field_name: str
    op_name: str
    text: str  # rendered assembly for this operation
    reads: Set[object] = field(default_factory=set)  # phys regs / flags
    writes: Set[object] = field(default_factory=set)
    latency: int = 1
    is_branch: bool = False
    label: Optional[str] = None  # label definition (no operation)

    @property
    def is_label(self) -> bool:
        return self.label is not None and not self.text


@dataclass
class Packet:
    """One VLIW instruction: operations in distinct fields."""

    ops: List[MachineOp] = field(default_factory=list)

    def fields(self) -> Set[str]:
        return {op.field_name for op in self.ops}

    def writes(self) -> Set[object]:
        result: Set[object] = set()
        for op in self.ops:
            result |= op.writes
        return result

    def render(self) -> str:
        return " | ".join(op.text for op in self.ops)


def pack(desc: ast.Description, mops: Sequence[MachineOp],
         parallelize: bool = True) -> List[object]:
    """Group machine ops into packets; labels stay standalone entries."""
    result: List[object] = []
    current: Optional[Packet] = None

    def close():
        nonlocal current
        if current is not None and current.ops:
            result.append(current)
        current = None

    for mop in mops:
        if mop.is_label:
            close()
            result.append(mop.label)
            continue
        if current is None:
            current = Packet()
        if not _fits(desc, current, mop, parallelize):
            close()
            current = Packet()
        current.ops.append(mop)
        if mop.is_branch:
            close()
    close()
    return result


def _fits(desc, packet: Packet, mop: MachineOp, parallelize: bool) -> bool:
    if not packet.ops:
        return True
    if not parallelize:
        return False
    if mop.field_name in packet.fields():
        return False
    packet_writes = packet.writes()
    if mop.reads & packet_writes:
        return False  # same-cycle RAW changes semantics
    if mop.writes & packet_writes:
        return False  # WAW: commit order within a cycle is subtle
    selection = {op.field_name: op.op_name for op in packet.ops}
    selection[mop.field_name] = mop.op_name
    return desc.instruction_valid(selection)


def insert_latency_padding(
    entries: List[object], nop_text: str
) -> List[object]:
    """Insert NOP packets so reads issue >= latency after their writer.

    *entries* are :class:`Packet` objects and label strings.  Labels are
    conservative barriers: ready times are kept, but a value produced
    before a label may also arrive via a branch, so padding is computed on
    the straight-line order (which is exactly how the ILS computes stalls
    from the static stream).
    """
    result: List[object] = []
    ready: Dict[object, int] = {}  # resource -> first slot it may be read
    slot = 0

    def emit_nops(count: int):
        nonlocal slot
        for _ in range(count):
            nop = Packet(
                [MachineOp("__nop__", "nop", nop_text)]
            )
            result.append(nop)
            slot += 1

    for entry in entries:
        if isinstance(entry, str):
            result.append(entry)
            continue
        need = slot
        for op in entry.ops:
            for resource in op.reads:
                need = max(need, ready.get(resource, 0))
        emit_nops(need - slot)
        result.append(entry)
        slot += 1
        for op in entry.ops:
            for resource in op.writes:
                ready[resource] = slot + op.latency - 1
    return result


def render_program(entries: List[object]) -> str:
    """Final assembly text: labels on their own lines, packets joined."""
    lines: List[str] = []
    for entry in entries:
        if isinstance(entry, str):
            lines.append(f"{entry}:")
        else:
            lines.append("        " + entry.render())
    return "\n".join(lines) + "\n"
