"""Instruction selection: matching target operations to IR semantics.

The code generator is retargetable the same way the paper's tools are: it
reads the *machine description*, not a hand-written back-end.  The
classifier inspects every operation's RTL action/side-effect and recognizes
the semantic shapes the IR needs (ALU with register/immediate source, move,
load immediate, load/store, compare, conditional branch, jump, halt).
Operations whose RTL matches no shape are simply unavailable to the
compiler — exactly what happens when an exploration transform produces an
exotic candidate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import CodegenError
from ..isdl import ast, rtl
from .ir import Opcode

#: RTL binary operators implementing each IR opcode
_IR_BINOP = {
    Opcode.ADD: "+",
    Opcode.SUB: "-",
    Opcode.AND: "&",
    Opcode.OR: "|",
    Opcode.XOR: "^",
    Opcode.SHL: "<<",
    Opcode.SHR: ">>",
    Opcode.MUL: "*",
}

_IR_FP = {
    Opcode.FADD: "fadd",
    Opcode.FSUB: "fsub",
    Opcode.FMUL: "fmul",
    Opcode.FDIV: "fdiv",
}


@dataclass(frozen=True)
class NtOperand:
    """How to drive a source non-terminal (register and immediate modes)."""

    nt_name: str
    reg_label: Optional[str] = None  # option taking one REG token
    reg_param: Optional[str] = None
    imm_label: Optional[str] = None  # option taking one immediate token
    imm_param: Optional[str] = None
    imm_token: Optional[ast.TokenDef] = None


@dataclass(frozen=True)
class Pattern:
    """One usable target operation with its operand roles."""

    field: str
    op_name: str
    kind: str
    binop: Optional[str] = None  # RTL operator or FP intrinsic
    dst: Optional[str] = None  # destination REG param
    lhs: Optional[str] = None  # left-hand REG param
    src: Optional[str] = None  # source param (REG, imm token, or NT)
    src_nt: Optional[NtOperand] = None
    src_token: Optional[ast.TokenDef] = None
    addr: Optional[str] = None  # address REG param (load/store)
    data: Optional[str] = None  # data REG param (store)
    target: Optional[str] = None  # branch-target param
    target_token: Optional[ast.TokenDef] = None
    relative: bool = True  # PC-relative branch?
    flag: Optional[str] = None  # flag storage read by a branch
    flag_taken: Optional[int] = None  # flag value meaning "taken"
    reg_cond: Optional[str] = None  # 'eq0' / 'ne0' for register branches
    zero_flag: Optional[str] = None  # flag a cmp sets on equality
    neg_flag: Optional[str] = None  # flag a cmp sets on signed less-than
    latency: int = 1


@dataclass
class TargetIsa:
    """Everything selection learned about one description."""

    desc: ast.Description
    reg_token: ast.TokenDef
    reg_file: str
    patterns: List[Pattern] = field(default_factory=list)

    def find(self, kind: str, binop: Optional[str] = None) -> List[Pattern]:
        return [
            p
            for p in self.patterns
            if p.kind == kind and (binop is None or p.binop == binop)
        ]

    def first(self, kind: str, binop: Optional[str] = None) -> Pattern:
        matches = self.find(kind, binop)
        if not matches:
            what = f"{kind}({binop})" if binop else kind
            raise CodegenError(
                f"target {self.desc.name!r} has no operation for {what}"
            )
        return matches[0]

    @property
    def register_count(self) -> int:
        return self.reg_token.hi - self.reg_token.lo + 1


def analyze(desc: ast.Description) -> TargetIsa:
    """Classify every operation of *desc* into selection patterns."""
    reg_file, reg_token = _find_register_file(desc)
    isa = TargetIsa(desc, reg_token, reg_file)
    classifier = _Classifier(desc, reg_file, reg_token)
    for fld, op in desc.operations():
        pattern = classifier.classify(fld, op)
        if pattern is not None:
            isa.patterns.append(pattern)
    return isa


def _find_register_file(desc) -> Tuple[str, ast.TokenDef]:
    reg_files = [
        s for s in desc.storages.values()
        if s.kind is ast.StorageKind.REGISTER_FILE
    ]
    if not reg_files:
        raise CodegenError(
            f"description {desc.name!r} has no register file"
        )
    reg_file = max(reg_files, key=lambda s: s.depth or 0)
    for token in desc.tokens.values():
        if token.kind is ast.TokenKind.PREFIXED and (
            token.hi - token.lo + 1 <= (reg_file.depth or 0)
        ):
            return reg_file.name, token
    raise CodegenError(
        f"no register-name token for register file {reg_file.name!r}"
    )


class _Classifier:
    def __init__(self, desc, reg_file, reg_token):
        self.desc = desc
        self.reg_file = reg_file
        self.reg_token = reg_token
        self.halt_flag = desc.attributes.get("halt_flag")
        self.pc = desc.program_counter().name

    # ------------------------------------------------------------------

    def classify(self, fld: ast.Field, op: ast.Operation) -> Optional[Pattern]:
        base = dict(field=fld.name, op_name=op.name,
                    latency=op.timing.latency)
        action = op.action
        if not action and not op.side_effect:
            return Pattern(kind="nop", **base)
        if not action and op.side_effect:
            return self._classify_cmp(op, base)
        if len(action) == 1 and isinstance(action[0], rtl.If):
            return self._classify_branch(op, action[0], base)
        if len(action) != 1 or not isinstance(action[0], rtl.Assign):
            return None
        stmt = action[0]
        dest, expr = stmt.dest, stmt.expr
        if isinstance(dest, rtl.StorageLV):
            if self.halt_flag and dest.storage == self.halt_flag:
                if expr == rtl.IntLit(1):
                    return Pattern(kind="halt", **base)
            if dest.storage == self.pc:
                return self._classify_jump(op, expr, base)
            if dest.storage == self.reg_file:
                return self._classify_reg_write(op, dest, expr, base)
            if self._is_memory(dest.storage):
                return self._classify_store(op, dest, expr, base)
        return None

    # ------------------------------------------------------------------

    def _is_memory(self, name: str) -> bool:
        storage = self.desc.storages.get(name)
        return (
            storage is not None
            and storage.kind is ast.StorageKind.DATA_MEMORY
        )

    def _reg_param(self, op, expr) -> Optional[str]:
        """Name of the REG param p when expr is RF[p] (else None)."""
        if not isinstance(expr, rtl.StorageRead):
            return None
        if expr.storage != self.reg_file or expr.hi is not None:
            return None
        if not isinstance(expr.index, rtl.ParamRef):
            return None
        if self._param_type(op, expr.index.name) is not self.reg_token:
            return None
        return expr.index.name

    def _param_type(self, op, name):
        for param in op.params:
            if param.name == name:
                return self.desc.param_type(param)
        return None

    def _source_operand(self, op, expr):
        """Classify an expression as a source operand.

        Returns (param_name, nt_operand, token) or None.  Masking wrappers
        like ``b & 0xF`` are unwrapped.
        """
        while (
            isinstance(expr, rtl.BinOp)
            and expr.op == "&"
            and isinstance(expr.right, rtl.IntLit)
        ):
            expr = expr.left
        reg = self._reg_param(op, expr)
        if reg is not None:
            return reg, None, self.reg_token
        if not isinstance(expr, rtl.ParamRef):
            return None
        ptype = self._param_type(op, expr.name)
        if isinstance(ptype, ast.TokenDef):
            return expr.name, None, ptype
        if isinstance(ptype, ast.NonTerminal):
            nt_operand = self._analyze_nt(ptype)
            if nt_operand is not None:
                return expr.name, nt_operand, None
        return None

    def _analyze_nt(self, nt: ast.NonTerminal) -> Optional[NtOperand]:
        reg_label = reg_param = None
        imm_label = imm_param = imm_token = None
        for option in nt.options:
            if len(option.params) != 1 or len(option.action) != 1:
                continue
            stmt = option.action[0]
            if not (
                isinstance(stmt, rtl.Assign)
                and isinstance(stmt.dest, rtl.NtLV)
            ):
                continue
            param = option.params[0]
            ptype = self.desc.param_type(param)
            if (
                isinstance(ptype, ast.TokenDef)
                and ptype.kind is ast.TokenKind.PREFIXED
                and isinstance(stmt.expr, rtl.StorageRead)
                and stmt.expr.storage == self.reg_file
            ):
                reg_label, reg_param = option.label, param.name
            elif (
                isinstance(ptype, ast.TokenDef)
                and ptype.kind is ast.TokenKind.IMMEDIATE
                and stmt.expr == rtl.ParamRef(param.name)
            ):
                imm_label, imm_param, imm_token = (
                    option.label, param.name, ptype,
                )
        if reg_label is None and imm_label is None:
            return None
        return NtOperand(
            nt.name, reg_label, reg_param, imm_label, imm_param, imm_token
        )

    # ------------------------------------------------------------------

    def _classify_reg_write(self, op, dest, expr, base):
        dst = None
        if isinstance(dest.index, rtl.ParamRef):
            if self._param_type(op, dest.index.name) is self.reg_token:
                dst = dest.index.name
        if dst is None:
            return None
        # load immediate
        if isinstance(expr, rtl.ParamRef):
            ptype = self._param_type(op, expr.name)
            if isinstance(ptype, ast.TokenDef):
                if ptype.kind is ast.TokenKind.IMMEDIATE:
                    return Pattern(
                        kind="li", dst=dst, src=expr.name, src_token=ptype,
                        **base,
                    )
                return None
            nt_operand = self._analyze_nt(ptype) if ptype else None
            if nt_operand is not None:
                return Pattern(
                    kind="mov", dst=dst, src=expr.name, src_nt=nt_operand,
                    **base,
                )
            return None
        # register move
        reg = self._reg_param(op, expr)
        if reg is not None:
            return Pattern(kind="mov", dst=dst, src=reg,
                           src_token=self.reg_token, **base)
        # memory load
        if isinstance(expr, rtl.StorageRead) and self._is_memory(expr.storage):
            addr = self._addr_reg(op, expr.index)
            if addr is not None:
                return Pattern(kind="load", dst=dst, addr=addr, **base)
            return None
        # FP unit
        if isinstance(expr, rtl.Call) and expr.func in _IR_FP.values():
            regs = [self._reg_param(op, arg) for arg in expr.args]
            if len(regs) == 2 and all(regs):
                return Pattern(
                    kind="falu", binop=expr.func, dst=dst,
                    lhs=regs[0], src=regs[1], src_token=self.reg_token,
                    **base,
                )
            return None
        # integer ALU (also note any compare-style flags it sets as a
        # side effect — targets without a dedicated cmp branch off these).
        if isinstance(expr, rtl.BinOp):
            lhs = self._reg_param(op, expr.left)
            if lhs is None:
                return None
            source = self._source_operand(op, expr.right)
            if source is None:
                return None
            src, src_nt, src_token = source
            zero_flag = neg_flag = None
            for stmt in op.side_effect:
                if not (
                    isinstance(stmt, rtl.Assign)
                    and isinstance(stmt.dest, rtl.StorageLV)
                ):
                    continue
                match = self._flag_source(op, stmt.expr)
                if match is None:
                    continue
                if match[0] == "zero":
                    zero_flag = stmt.dest.storage
                else:
                    neg_flag = stmt.dest.storage
            return Pattern(
                kind="alu", binop=expr.op, dst=dst, lhs=lhs, src=src,
                src_nt=src_nt, src_token=src_token,
                zero_flag=zero_flag, neg_flag=neg_flag, **base,
            )
        return None

    def _addr_reg(self, op, index_expr) -> Optional[str]:
        expr = index_expr
        while (
            isinstance(expr, rtl.BinOp)
            and expr.op == "&"
            and isinstance(expr.right, rtl.IntLit)
        ):
            expr = expr.left
        return self._reg_param(op, expr)

    def _classify_store(self, op, dest, expr, base):
        addr = self._addr_reg(op, dest.index)
        data = self._reg_param(op, expr)
        if addr is None or data is None:
            return None
        return Pattern(kind="store", addr=addr, data=data, **base)

    def _classify_jump(self, op, expr, base):
        if isinstance(expr, rtl.ParamRef):
            ptype = self._param_type(op, expr.name)
            if isinstance(ptype, ast.TokenDef):
                return Pattern(
                    kind="jump", target=expr.name, target_token=ptype,
                    relative=False, **base,
                )
        return None

    def _classify_branch(self, op, stmt: rtl.If, base):
        if stmt.orelse or len(stmt.then) != 1:
            return None
        body = stmt.then[0]
        if not (
            isinstance(body, rtl.Assign)
            and isinstance(body.dest, rtl.StorageLV)
            and body.dest.storage == self.pc
        ):
            return None
        target = target_token = None
        relative = True
        expr = body.expr
        if (
            isinstance(expr, rtl.BinOp)
            and expr.op == "+"
            and isinstance(expr.left, rtl.StorageRead)
            and expr.left.storage == self.pc
            and isinstance(expr.right, rtl.ParamRef)
        ):
            target = expr.right.name
        elif isinstance(expr, rtl.ParamRef):
            target = expr.name
            relative = False
        if target is None:
            return None
        ptype = self._param_type(op, target)
        if not isinstance(ptype, ast.TokenDef):
            return None
        target_token = ptype
        cond = stmt.cond
        if not isinstance(cond, rtl.BinOp) or cond.op not in ("==", "!="):
            return None
        # register-zero branch: RF[a] ==/!= 0
        reg = self._reg_param(op, cond.left)
        if reg is not None and cond.right == rtl.IntLit(0):
            reg_cond = "eq0" if cond.op == "==" else "ne0"
            return Pattern(
                kind="branch_reg", lhs=reg, reg_cond=reg_cond,
                target=target, target_token=target_token, relative=relative,
                **base,
            )
        # flag branch: FLAG ==/!= k
        if (
            isinstance(cond.left, rtl.StorageRead)
            and cond.left.index is None
            and isinstance(cond.right, rtl.IntLit)
        ):
            flag = cond.left.storage
            value = cond.right.value
            taken = value if cond.op == "==" else 1 - value
            return Pattern(
                kind="branch_flag", flag=flag, flag_taken=taken,
                target=target, target_token=target_token, relative=relative,
                **base,
            )
        return None

    def _classify_cmp(self, op, base):
        """Recognize compare ops from their flag-setting side effects.

        A zero flag comes from ``((RF[a] - src) & mask) == 0``; a negative
        flag from ``bit(RF[a] - src, msb)``.
        """
        zero_flag = neg_flag = lhs = src = None
        src_nt = src_token = None
        for stmt in op.side_effect:
            if not (
                isinstance(stmt, rtl.Assign)
                and isinstance(stmt.dest, rtl.StorageLV)
            ):
                continue
            match = self._flag_source(op, stmt.expr)
            if match is None:
                continue
            flag_kind, left_reg, source = match
            if flag_kind == "zero":
                zero_flag = stmt.dest.storage
            else:
                neg_flag = stmt.dest.storage
            lhs = left_reg
            src, src_nt, src_token = source
        if zero_flag is None and neg_flag is None:
            return None
        return Pattern(
            kind="cmp", zero_flag=zero_flag, neg_flag=neg_flag,
            lhs=lhs, src=src, src_nt=src_nt, src_token=src_token, **base,
        )

    def _flag_source(self, op, expr):
        """Match one flag assignment; returns (kind, lhs_reg, source)."""
        if (
            isinstance(expr, rtl.BinOp)
            and expr.op == "=="
            and expr.right == rtl.IntLit(0)
        ):
            diff = self._difference(op, expr.left)
            if diff is not None:
                return ("zero",) + diff
            return None
        if (
            isinstance(expr, rtl.Call)
            and expr.func == "bit"
            and isinstance(expr.args[1], rtl.IntLit)
        ):
            diff = self._difference(op, expr.args[0])
            if diff is not None:
                return ("neg",) + diff
        return None

    def _difference(self, op, expr):
        """Match ``(RF[a] - src) [& mask]``; returns (lhs_reg, source)."""
        if (
            isinstance(expr, rtl.BinOp)
            and expr.op == "&"
            and isinstance(expr.right, rtl.IntLit)
        ):
            expr = expr.left
        if not (isinstance(expr, rtl.BinOp) and expr.op == "-"):
            return None
        left_reg = self._reg_param(op, expr.left)
        source = self._source_operand(op, expr.right)
        if left_reg is None or source is None:
            return None
        return left_reg, source
