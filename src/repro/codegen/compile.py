"""The retargetable compiler facade: IR kernel → assembly text.

Pipeline: instruction selection against the classified patterns of the
machine description, constant materialization, branch lowering (flag-based
or register-zero, with a shift-based fallback for signed less-than), linear
scan register allocation, VLIW packing, hazard-free latency padding, and
rendering through the description's own syntax templates.  The output is
ordinary assembly text for :mod:`repro.asm` — the compiler, assembler and
simulator all speak the single ISDL description (paper §4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from .. import obs
from ..errors import CodegenError
from ..isdl import ast, rtl
from .ir import (
    BINARY_OPS,
    Cond,
    Imm,
    IrOp,
    Kernel,
    Opcode,
    VReg,
)
from .regalloc import allocate
from .schedule import MachineOp, insert_latency_padding, pack, render_program
from .select import Pattern, TargetIsa, _IR_BINOP, _IR_FP, analyze


@dataclass
class _Lowered:
    """One selected operation with virtual-register operands."""

    pattern: Optional[Pattern]  # None for labels
    binding: Dict[str, object] = field(default_factory=dict)
    label: Optional[str] = None  # label definition or branch target

    def uses(self) -> List[VReg]:
        return [
            v
            for key in ("lhs", "src", "addr", "data", "reg")
            for v in [self.binding.get(key)]
            if isinstance(v, VReg)
        ]

    def defines(self) -> Optional[VReg]:
        dst = self.binding.get("dst")
        return dst if isinstance(dst, VReg) else None


@dataclass
class CompiledProgram:
    """Compiler output: assembly text plus bookkeeping."""

    source: str
    instruction_count: int
    register_mapping: Dict[VReg, int]
    lowered_count: int

    def __str__(self) -> str:
        return self.source


class Compiler:
    """A code generator retargeted from one machine description."""

    def __init__(self, desc: ast.Description,
                 isa: Optional[TargetIsa] = None):
        self.desc = desc
        self.isa = isa or analyze(desc)
        self._temp_counter = 1 << 20  # temp vregs above user vregs

    # ------------------------------------------------------------------

    def compile(self, kernel: Kernel, parallelize: bool = True,
                halt: bool = True) -> CompiledProgram:
        """Compile *kernel* to assembly text for this target."""
        with obs.span("codegen.compile", kernel=kernel.name):
            kernel.validate()
            lowered = self._lower(kernel, append_halt=halt)
            mapping = self._allocate(lowered)
            mops = [self._render(item, mapping) for item in lowered]
            entries = pack(self.desc, mops, parallelize)
            entries = insert_latency_padding(entries, self._nop_text())
            source = render_program(entries)
            packets = sum(1 for e in entries if not isinstance(e, str))
            return CompiledProgram(source, packets, mapping, len(lowered))

    def compile_to_words(self, kernel: Kernel, parallelize: bool = True):
        """Compile and assemble in one step."""
        from ..asm import Assembler

        program = self.compile(kernel, parallelize)
        return Assembler(self.desc).assemble(
            program.source, filename=f"{kernel.name}.s"
        )

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------

    def _temp(self) -> VReg:
        self._temp_counter += 1
        return VReg(self._temp_counter)

    def _lower(self, kernel: Kernel, append_halt: bool) -> List[_Lowered]:
        out: List[_Lowered] = []
        for op in kernel.ops:
            self._lower_op(op, out)
        if append_halt and (
            not kernel.ops or kernel.ops[-1].opcode is not Opcode.HALT
        ):
            out.append(_Lowered(self.isa.first("halt")))
        return out

    def _lower_op(self, op: IrOp, out: List[_Lowered]) -> None:
        if op.opcode is Opcode.LABEL:
            out.append(_Lowered(None, label=op.label))
        elif op.opcode is Opcode.LI:
            self._materialize(op.a.value, out, dst=op.dst)
        elif op.opcode is Opcode.MOV:
            src = self._as_vreg(op.a, out)
            out.append(
                _Lowered(self.isa.first("mov"),
                         {"dst": op.dst, "src": src})
            )
        elif op.opcode in BINARY_OPS:
            self._lower_binary(op, out)
        elif op.opcode is Opcode.LOAD:
            addr = self._as_vreg(op.a, out)
            out.append(
                _Lowered(self.isa.first("load"),
                         {"dst": op.dst, "addr": addr})
            )
        elif op.opcode is Opcode.STORE:
            addr = self._as_vreg(op.a, out)
            data = self._as_vreg(op.b, out)
            out.append(
                _Lowered(self.isa.first("store"),
                         {"addr": addr, "data": data})
            )
        elif op.opcode is Opcode.JUMP:
            out.append(_Lowered(self.isa.first("jump"), {}, label=op.label))
        elif op.opcode is Opcode.CBR:
            self._lower_cbr(op, out)
        elif op.opcode is Opcode.HALT:
            out.append(_Lowered(self.isa.first("halt")))
        else:  # pragma: no cover - exhaustive over Opcode
            raise CodegenError(f"cannot lower {op.opcode}")

    # -- constants ---------------------------------------------------------

    def _as_vreg(self, value, out: List[_Lowered]) -> VReg:
        if isinstance(value, VReg):
            return value
        return self._materialize(value.value, out)

    def _materialize(self, value: int, out: List[_Lowered],
                     dst: Optional[VReg] = None) -> VReg:
        """Load an arbitrary constant into a register."""
        li = self.isa.first("li")
        width = li.src_token.width
        dst = dst or self._temp()
        if 0 <= value < (1 << width):
            out.append(_Lowered(li, {"dst": dst, "imm": value}))
            return dst
        # Wide constant: build from chunks with shl/or.
        reg_width = self.desc.storages[self.isa.reg_file].width
        value &= (1 << reg_width) - 1
        chunks: List[int] = []
        remaining = value
        while remaining or not chunks:
            chunks.append(remaining & ((1 << width) - 1))
            remaining >>= width
        chunks.reverse()
        shl = self.isa.first("alu", "<<")
        orp = self.isa.first("alu", "|")
        current = self._temp()
        out.append(_Lowered(li, {"dst": current, "imm": chunks[0]}))
        for chunk in chunks[1:]:
            shifted = self._temp()
            out.append(
                _Lowered(shl, {"dst": shifted, "lhs": current,
                               "src": ("imm", width)})
            )
            merged = self._temp()
            out.append(
                _Lowered(orp, {"dst": merged, "lhs": shifted,
                               "src": ("imm", chunk)})
            )
            current = merged
        out.append(
            _Lowered(self.isa.first("mov"), {"dst": dst, "src": current})
        )
        return dst

    # -- arithmetic ----------------------------------------------------------

    def _lower_binary(self, op: IrOp, out: List[_Lowered]) -> None:
        if op.opcode in _IR_FP:
            pattern = self.isa.first("falu", _IR_FP[op.opcode])
            lhs = self._as_vreg(op.a, out)
            src = self._as_vreg(op.b, out)
            out.append(
                _Lowered(pattern, {"dst": op.dst, "lhs": lhs, "src": src})
            )
            return
        rtl_op = _IR_BINOP[op.opcode]
        pattern = self.isa.first("alu", rtl_op)
        lhs = self._as_vreg(op.a, out)
        src = self._operand(pattern, op.b, out)
        out.append(
            _Lowered(pattern, {"dst": op.dst, "lhs": lhs, "src": src})
        )

    def _operand(self, pattern: Pattern, value, out) -> object:
        """Bind the flexible source operand: immediate mode if possible."""
        if isinstance(value, Imm):
            token = None
            if pattern.src_nt is not None:
                token = pattern.src_nt.imm_token
            elif (
                pattern.src_token is not None
                and pattern.src_token.kind is ast.TokenKind.IMMEDIATE
            ):
                token = pattern.src_token
            if token is not None and value.value in token.valid_values():
                return ("imm", value.value)
            return self._materialize(value.value, out)
        return value

    # -- control flow --------------------------------------------------------

    def _lower_cbr(self, op: IrOp, out: List[_Lowered]) -> None:
        cond = op.cond
        # Preferred route: a compare op plus a flag branch.
        cmps = self.isa.find("cmp")
        if cmps:
            cmp = cmps[0]
            flag, taken = None, 1
            if cond is Cond.EQ and cmp.zero_flag:
                flag, taken = cmp.zero_flag, 1
            elif cond is Cond.NE and cmp.zero_flag:
                flag, taken = cmp.zero_flag, 0
            elif cond is Cond.LT and cmp.neg_flag:
                flag, taken = cmp.neg_flag, 1
            if flag is not None:
                branch = self._flag_branch(flag, taken)
                if branch is not None:
                    lhs = self._as_vreg(op.a, out)
                    src = self._operand(cmp, op.b, out)
                    out.append(
                        _Lowered(cmp, {"lhs": lhs, "src": src})
                    )
                    out.append(_Lowered(branch, {}, label=op.label))
                    return
        # A flag-setting subtract plus a flag branch (targets like SPAM2
        # whose ALU sets ZF as a side effect, with no dedicated compare).
        if cond in (Cond.EQ, Cond.NE, Cond.LT):
            for sub in self.isa.find("alu", "-"):
                flag, taken = None, 1
                if cond is Cond.EQ and sub.zero_flag:
                    flag, taken = sub.zero_flag, 1
                elif cond is Cond.NE and sub.zero_flag:
                    flag, taken = sub.zero_flag, 0
                elif cond is Cond.LT and sub.neg_flag:
                    flag, taken = sub.neg_flag, 1
                if flag is None:
                    continue
                branch = self._flag_branch(flag, taken)
                if branch is None:
                    continue
                lhs = self._as_vreg(op.a, out)
                src = self._operand(sub, op.b, out)
                scratch = self._temp()
                out.append(
                    _Lowered(sub, {"dst": scratch, "lhs": lhs, "src": src})
                )
                out.append(_Lowered(branch, {}, label=op.label))
                return
        # Register-zero branches (possibly after computing a difference).
        reg_cond = {"eq0": Cond.EQ, "ne0": Cond.NE}
        for pattern in self.isa.find("branch_reg"):
            if reg_cond.get(pattern.reg_cond) is not cond:
                continue
            reg = self._difference_or_value(op, out)
            out.append(_Lowered(pattern, {"reg": reg}, label=op.label))
            return
        # Signed less-than via sign-bit extraction + not-equal-zero branch.
        if cond is Cond.LT:
            bnez = [
                p for p in self.isa.find("branch_reg") if p.reg_cond == "ne0"
            ]
            shr = self.isa.find("alu", ">>")
            sub = self.isa.find("alu", "-")
            if bnez and shr and sub:
                lhs = self._as_vreg(op.a, out)
                rhs = self._as_vreg(op.b, out)
                diff = self._temp()
                out.append(
                    _Lowered(sub[0], {"dst": diff, "lhs": lhs, "src": rhs})
                )
                width = self.desc.storages[self.isa.reg_file].width
                sign = self._temp()
                out.append(
                    _Lowered(shr[0], {"dst": sign, "lhs": diff,
                                      "src": ("imm", width - 1)})
                )
                out.append(_Lowered(bnez[0], {"reg": sign}, label=op.label))
                return
        raise CodegenError(
            f"target {self.desc.name!r} cannot implement a"
            f" {cond.value} branch"
        )

    def _difference_or_value(self, op: IrOp, out) -> VReg:
        """RF value that is zero iff a == b."""
        if isinstance(op.b, Imm) and op.b.value == 0:
            return self._as_vreg(op.a, out)
        sub = self.isa.find("alu", "-") or self.isa.find("alu", "^")
        if not sub:
            raise CodegenError(
                f"target {self.desc.name!r} cannot compare registers"
            )
        lhs = self._as_vreg(op.a, out)
        pattern = sub[0]
        src = self._operand(pattern, op.b, out)
        diff = self._temp()
        out.append(_Lowered(pattern, {"dst": diff, "lhs": lhs, "src": src}))
        return diff

    def _flag_branch(self, flag: str, taken: int) -> Optional[Pattern]:
        for pattern in self.isa.find("branch_flag"):
            if pattern.flag == flag and pattern.flag_taken == taken:
                return pattern
        return None

    # ------------------------------------------------------------------
    # Allocation adapter
    # ------------------------------------------------------------------

    def _allocate(self, lowered: List[_Lowered]) -> Dict[VReg, int]:
        pseudo = Kernel(name="lowered")
        for item in lowered:
            if item.pattern is None:
                pseudo.ops.append(IrOp(Opcode.LABEL, label=item.label))
                continue
            uses = item.uses()
            kind = item.pattern.kind
            if kind in ("branch_flag", "branch_reg"):
                pseudo.ops.append(
                    IrOp(
                        Opcode.CBR,
                        a=uses[0] if uses else None,
                        label=item.label,
                        cond=Cond.EQ,
                    )
                )
            elif kind == "jump":
                pseudo.ops.append(IrOp(Opcode.JUMP, label=item.label))
            else:
                pseudo.ops.append(
                    IrOp(
                        Opcode.ADD,
                        dst=item.defines(),
                        a=uses[0] if uses else None,
                        b=uses[1] if len(uses) > 1 else None,
                    )
                )
        return allocate(
            pseudo,
            self.isa.register_count,
            first_register=self.isa.reg_token.lo,
        )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------

    def _reg_text(self, number: int) -> str:
        return f"{self.isa.reg_token.prefix}{number}"

    def _nop_text(self) -> str:
        nop = self.isa.first("nop")
        op = self.desc.operation(nop.field, nop.op_name)
        return op.syntax or op.name

    def _render(self, item: _Lowered, mapping: Dict[VReg, int]) -> MachineOp:
        if item.pattern is None:
            return MachineOp("", "", "", label=item.label)
        pattern = item.pattern
        op = self.desc.operation(pattern.field, pattern.op_name)
        texts: Dict[str, str] = {}
        reads: set = set()
        writes: set = set()

        def reg_of(vreg: VReg) -> int:
            return mapping[vreg]

        binding = item.binding
        if "dst" in binding:
            number = reg_of(binding["dst"])
            texts[pattern.dst] = self._reg_text(number)
            writes.add(("R", number))
        if "lhs" in binding and pattern.lhs:
            number = reg_of(binding["lhs"])
            texts[pattern.lhs] = self._reg_text(number)
            reads.add(("R", number))
        if "addr" in binding and pattern.addr:
            number = reg_of(binding["addr"])
            texts[pattern.addr] = self._reg_text(number)
            reads.add(("R", number))
        if "data" in binding and pattern.data:
            number = reg_of(binding["data"])
            texts[pattern.data] = self._reg_text(number)
            reads.add(("R", number))
        if "reg" in binding and pattern.lhs:
            number = reg_of(binding["reg"])
            texts[pattern.lhs] = self._reg_text(number)
            reads.add(("R", number))
        if "imm" in binding:
            texts[pattern.src] = str(binding["imm"])
        if "src" in binding:
            texts[pattern.src] = self._src_text(
                pattern, binding["src"], mapping, reads
            )
        if pattern.target is not None:
            texts[pattern.target] = (
                f"{item.label} - ." if pattern.relative else item.label
            )
        # Flag and memory effects for scheduling.
        if pattern.kind == "load":
            reads.add("__MEM__")
        if pattern.kind == "store":
            writes.add("__MEM__")
        if pattern.kind == "branch_flag":
            reads.add(("F", pattern.flag))
        for flag in rtl.storages_written(op.side_effect):
            writes.add(("F", flag))
        if pattern.kind == "cmp":
            for flag in (pattern.zero_flag, pattern.neg_flag):
                if flag:
                    writes.add(("F", flag))
        text = self._fill_template(op, texts)
        return MachineOp(
            pattern.field,
            pattern.op_name,
            text,
            reads=reads,
            writes=writes,
            latency=pattern.latency,
            is_branch=pattern.kind in ("branch_flag", "branch_reg", "jump"),
        )

    def _src_text(self, pattern: Pattern, value, mapping, reads) -> str:
        if isinstance(value, tuple) and value[0] == "imm":
            imm_value = value[1]
            if pattern.src_nt is not None:
                nt = self.desc.nonterminals[pattern.src_nt.nt_name]
                option = nt.option(pattern.src_nt.imm_label)
                template = option.syntax or f"%{pattern.src_nt.imm_param}"
                return template.replace(
                    f"%{pattern.src_nt.imm_param}", str(imm_value)
                )
            return str(imm_value)
        number = mapping[value]
        reads.add(("R", number))
        reg_text = self._reg_text(number)
        if pattern.src_nt is not None:
            nt = self.desc.nonterminals[pattern.src_nt.nt_name]
            option = nt.option(pattern.src_nt.reg_label)
            template = option.syntax or f"%{pattern.src_nt.reg_param}"
            return template.replace(
                f"%{pattern.src_nt.reg_param}", reg_text
            )
        return reg_text

    def _fill_template(self, op: ast.Operation, texts: Dict[str, str]) -> str:
        template = op.syntax or ast.default_syntax(op.name, op.params)
        for name in sorted(texts, key=len, reverse=True):
            template = template.replace(f"%{name}", texts[name])
        return template


def compile_kernel(desc: ast.Description, kernel: Kernel,
                   parallelize: bool = True) -> CompiledProgram:
    """One-shot convenience wrapper."""
    return Compiler(desc).compile(kernel, parallelize)
