"""A tiny three-address IR for the retargetable code generator.

The paper's methodology compiles application code with the AVIV retargetable
compiler (ref [2]); this package is our stand-in so the Figure-1 loop can be
driven end-to-end.  The IR is deliberately small: virtual registers, integer
and single-precision float arithmetic, loads/stores, compare-and-branch,
labels, and halt.  A :class:`KernelBuilder` offers a convenient way to write
kernels from Python.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..errors import CodegenError


@dataclass(frozen=True)
class VReg:
    """A virtual register."""

    index: int

    def __str__(self) -> str:
        return f"v{self.index}"


@dataclass(frozen=True)
class Imm:
    """An integer immediate (also used for raw float bit patterns)."""

    value: int

    def __str__(self) -> str:
        return f"#{self.value}"


Value = Union[VReg, Imm]


class Opcode(enum.Enum):
    """IR operations."""

    LI = "li"  # dst <- imm
    MOV = "mov"  # dst <- src
    ADD = "add"
    SUB = "sub"
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"
    MUL = "mul"
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    LOAD = "load"  # dst <- mem[addr]
    STORE = "store"  # mem[addr] <- src
    LABEL = "label"
    JUMP = "jump"
    CBR = "cbr"  # conditional branch: if (a COND b) goto label
    HALT = "halt"


class Cond(enum.Enum):
    """Comparison kinds for :attr:`Opcode.CBR`."""

    EQ = "eq"
    NE = "ne"
    LT = "lt"  # signed less-than


#: opcodes computing dst from two register/immediate operands
BINARY_OPS = frozenset(
    {
        Opcode.ADD,
        Opcode.SUB,
        Opcode.AND,
        Opcode.OR,
        Opcode.XOR,
        Opcode.SHL,
        Opcode.SHR,
        Opcode.MUL,
        Opcode.FADD,
        Opcode.FSUB,
        Opcode.FMUL,
        Opcode.FDIV,
    }
)

FLOAT_OPS = frozenset(
    {Opcode.FADD, Opcode.FSUB, Opcode.FMUL, Opcode.FDIV}
)


@dataclass(frozen=True)
class IrOp:
    """One IR instruction."""

    opcode: Opcode
    dst: Optional[VReg] = None
    a: Optional[Value] = None
    b: Optional[Value] = None
    label: Optional[str] = None
    cond: Optional[Cond] = None

    def __str__(self) -> str:
        if self.opcode is Opcode.LABEL:
            return f"{self.label}:"
        if self.opcode is Opcode.JUMP:
            return f"    jump {self.label}"
        if self.opcode is Opcode.CBR:
            return f"    if {self.a} {self.cond.value} {self.b} goto {self.label}"
        if self.opcode is Opcode.STORE:
            return f"    mem[{self.a}] <- {self.b}"
        if self.opcode is Opcode.LOAD:
            return f"    {self.dst} <- mem[{self.a}]"
        if self.opcode is Opcode.HALT:
            return "    halt"
        if self.opcode in (Opcode.LI, Opcode.MOV):
            return f"    {self.dst} <- {self.a}"
        return f"    {self.dst} <- {self.opcode.value} {self.a}, {self.b}"

    # -- dataflow helpers -------------------------------------------------

    def uses(self) -> List[VReg]:
        used = []
        for value in (self.a, self.b):
            if isinstance(value, VReg):
                used.append(value)
        return used

    def defines(self) -> Optional[VReg]:
        return self.dst


@dataclass
class Kernel:
    """A straight-line-with-branches IR program."""

    ops: List[IrOp] = field(default_factory=list)
    name: str = "kernel"

    def __iter__(self):
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def labels(self) -> Dict[str, int]:
        return {
            op.label: i
            for i, op in enumerate(self.ops)
            if op.opcode is Opcode.LABEL
        }

    def validate(self) -> None:
        """Check label references and operand shapes."""
        labels = self.labels()
        defined: set = set()
        for op in self.ops:
            if op.opcode in (Opcode.JUMP, Opcode.CBR):
                if op.label not in labels:
                    raise CodegenError(f"undefined label {op.label!r}")
            if op.opcode is Opcode.CBR and op.cond is None:
                raise CodegenError("cbr without a condition")
            for use in op.uses():
                if use not in defined:
                    raise CodegenError(
                        f"virtual register {use} used before definition"
                        f" in {op}"
                    )
            if op.dst is not None:
                defined.add(op.dst)

    def __str__(self) -> str:
        return "\n".join(str(op) for op in self.ops)


class KernelBuilder:
    """Fluent construction of IR kernels."""

    def __init__(self, name: str = "kernel"):
        self.kernel = Kernel(name=name)
        self._next_vreg = 0
        self._next_label = 0

    # -- values -----------------------------------------------------------

    def vreg(self) -> VReg:
        reg = VReg(self._next_vreg)
        self._next_vreg += 1
        return reg

    def new_label(self, stem: str = "L") -> str:
        label = f"{stem}{self._next_label}"
        self._next_label += 1
        return label

    def _emit(self, op: IrOp):
        self.kernel.ops.append(op)

    @staticmethod
    def _value(value) -> Value:
        if isinstance(value, (VReg, Imm)):
            return value
        if isinstance(value, int):
            return Imm(value)
        raise CodegenError(f"not an IR value: {value!r}")

    # -- instructions -------------------------------------------------------

    def li(self, value: int) -> VReg:
        dst = self.vreg()
        self._emit(IrOp(Opcode.LI, dst, Imm(value)))
        return dst

    # -- explicit-destination forms (loop-carried variables) ---------------

    def li_into(self, dst: VReg, value: int) -> VReg:
        self._emit(IrOp(Opcode.LI, dst, Imm(value)))
        return dst

    def mov_into(self, dst: VReg, src) -> VReg:
        self._emit(IrOp(Opcode.MOV, dst, self._value(src)))
        return dst

    def binary_into(self, dst: VReg, opcode: Opcode, a, b) -> VReg:
        if opcode not in BINARY_OPS:
            raise CodegenError(f"{opcode} is not a binary operation")
        self._emit(IrOp(opcode, dst, self._value(a), self._value(b)))
        return dst

    def load_into(self, dst: VReg, addr) -> VReg:
        self._emit(IrOp(Opcode.LOAD, dst, self._value(addr)))
        return dst

    def mov(self, src) -> VReg:
        dst = self.vreg()
        self._emit(IrOp(Opcode.MOV, dst, self._value(src)))
        return dst

    def binary(self, opcode: Opcode, a, b) -> VReg:
        if opcode not in BINARY_OPS:
            raise CodegenError(f"{opcode} is not a binary operation")
        dst = self.vreg()
        self._emit(IrOp(opcode, dst, self._value(a), self._value(b)))
        return dst

    def add(self, a, b) -> VReg:
        return self.binary(Opcode.ADD, a, b)

    def sub(self, a, b) -> VReg:
        return self.binary(Opcode.SUB, a, b)

    def and_(self, a, b) -> VReg:
        return self.binary(Opcode.AND, a, b)

    def shl(self, a, b) -> VReg:
        return self.binary(Opcode.SHL, a, b)

    def shr(self, a, b) -> VReg:
        return self.binary(Opcode.SHR, a, b)

    def mul(self, a, b) -> VReg:
        return self.binary(Opcode.MUL, a, b)

    def fadd(self, a, b) -> VReg:
        return self.binary(Opcode.FADD, a, b)

    def fmul(self, a, b) -> VReg:
        return self.binary(Opcode.FMUL, a, b)

    def load(self, addr) -> VReg:
        dst = self.vreg()
        self._emit(IrOp(Opcode.LOAD, dst, self._value(addr)))
        return dst

    def store(self, addr, value) -> None:
        self._emit(
            IrOp(Opcode.STORE, None, self._value(addr), self._value(value))
        )

    def label(self, name: str) -> None:
        self._emit(IrOp(Opcode.LABEL, label=name))

    def jump(self, name: str) -> None:
        self._emit(IrOp(Opcode.JUMP, label=name))

    def cbr(self, cond: Cond, a, b, label: str) -> None:
        self._emit(
            IrOp(
                Opcode.CBR,
                a=self._value(a),
                b=self._value(b),
                label=label,
                cond=cond,
            )
        )

    def halt(self) -> None:
        self._emit(IrOp(Opcode.HALT))

    def build(self) -> Kernel:
        self.kernel.validate()
        return self.kernel
