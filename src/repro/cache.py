"""Content-addressed artifact cache for the exploration tool chain.

Every box of the paper's Figure-1 loop regenerates from the single ISDL
description: signature tables, simulator cores, assembled workload
binaries, and synthesized hardware models.  During exploration the same
description (or large parts of it) is evaluated over and over — the
incumbent is re-simulated against new candidates, rejected candidates
reappear in later sweeps, and benchmark reruns repeat whole trajectories.
This module memoizes those artifacts behind a structural fingerprint
(:func:`repro.isdl.fingerprint`) so repeated work is a dictionary lookup.

Two layers:

* an in-memory LRU (always on) — bounded by ``max_entries``, shared by
  every tool that accepts a ``cache=`` handle;
* an optional on-disk pickle layer (``disk_path=``) for artifacts that
  survive pickling (assembled programs, whole evaluations), which makes
  warm-cache state persistent across processes and runs.

The cache is thread-safe; builders run outside the lock, so two threads
racing on the same key may both build (last store wins) but never corrupt
the table.  All disk I/O is best-effort and safe under concurrent
writers: saves go to a uniquely named temp file (pid + thread + sequence)
and land with an atomic ``os.replace``, so a reader never sees a
half-written pickle; a corrupt or truncated entry is treated as a miss —
counted in ``stats.disk_errors`` and the ``cache.disk_corrupt`` obs
counter, and the bad file is removed so the rebuild overwrites it.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import threading
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from . import obs

__all__ = ["ArtifactCache", "CacheStats", "kernel_fingerprint"]


def kernel_fingerprint(kernel) -> str:
    """Stable digest of an IR kernel (dataclass reprs are deterministic)."""
    payload = f"{kernel.name}|{kernel.ops!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting, total and per artifact kind."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    #: disk entries that existed but failed to load (corrupt/truncated)
    disk_errors: int = 0
    hits_by_kind: Counter = field(default_factory=Counter)
    misses_by_kind: Counter = field(default_factory=Counter)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def report(self) -> str:
        lines = [
            f"cache: {self.hits} hits / {self.misses} misses"
            f" ({self.hit_rate * 100:.1f}% hit rate),"
            f" {self.evictions} evictions, {self.disk_hits} from disk"
            + (f", {self.disk_errors} corrupt disk entr"
               f"{'y' if self.disk_errors == 1 else 'ies'}"
               if self.disk_errors else "")
        ]
        for kind in sorted(set(self.hits_by_kind) | set(self.misses_by_kind)):
            lines.append(
                f"  {kind:12s} {self.hits_by_kind[kind]:5d} hit"
                f" {self.misses_by_kind[kind]:5d} miss"
            )
        return "\n".join(lines)


class ArtifactCache:
    """LRU artifact cache keyed by ``(kind, key)``.

    The generic interface is :meth:`get_or_build`; the typed helpers below
    it encode the key conventions used across the tool chain so callers
    (metrics, the parallel evaluator, benchmarks) agree on what a cache
    entry means.
    """

    #: artifact kinds that survive pickling and may go to the disk layer
    PICKLABLE_KINDS = frozenset({"program", "evaluation", "analysis"})

    def __init__(self, max_entries: int = 512,
                 disk_path: Optional[str] = None):
        self.max_entries = max_entries
        self.disk_path = disk_path
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[str, Hashable], Any]" = OrderedDict()
        self._lock = threading.RLock()
        if disk_path:
            os.makedirs(disk_path, exist_ok=True)

    # ------------------------------------------------------------------
    # Generic interface
    # ------------------------------------------------------------------

    def get_or_build(self, kind: str, key: Hashable,
                     builder: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``(kind, key)`` or build it."""
        full_key = (kind, key)
        with self._lock:
            if full_key in self._entries:
                self._entries.move_to_end(full_key)
                self.stats.hits += 1
                self.stats.hits_by_kind[kind] += 1
                obs.add("cache.hits")
                return self._entries[full_key]
        value, from_disk = self._disk_load(kind, key)
        if not from_disk:
            value = builder()
        with self._lock:
            if from_disk:
                self.stats.hits += 1
                self.stats.hits_by_kind[kind] += 1
                self.stats.disk_hits += 1
                obs.add("cache.hits")
                obs.add("cache.disk_hits")
            else:
                self.stats.misses += 1
                self.stats.misses_by_kind[kind] += 1
                obs.add("cache.misses")
            self._store(full_key, value)
        if not from_disk:
            self._disk_save(kind, key, value)
        return value

    def peek(self, kind: str, key: Hashable) -> Optional[Any]:
        """Non-counting lookup (memory layer only); None on miss."""
        with self._lock:
            return self._entries.get((kind, key))

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _store(self, full_key: Tuple[str, Hashable], value: Any) -> None:
        self._entries[full_key] = value
        self._entries.move_to_end(full_key)
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            obs.add("cache.evictions")

    # ------------------------------------------------------------------
    # Disk layer (best-effort, picklable kinds only)
    # ------------------------------------------------------------------

    #: everything a hostile/truncated pickle can raise at load time
    _DISK_LOAD_ERRORS = (
        OSError, pickle.PickleError, EOFError, AttributeError,
        ImportError, IndexError, ValueError, TypeError,
        MemoryError,
    )

    #: unique temp-file names even for two threads saving the same key
    _tmp_seq = itertools.count()

    def _disk_file(self, kind: str, key: Hashable) -> str:
        digest = hashlib.sha256(repr((kind, key)).encode()).hexdigest()
        return os.path.join(self.disk_path, f"{kind}-{digest[:32]}.pkl")

    def _disk_load(self, kind: str, key: Hashable) -> Tuple[Any, bool]:
        if not self.disk_path or kind not in self.PICKLABLE_KINDS:
            return None, False
        path = self._disk_file(kind, key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle), True
        except FileNotFoundError:
            return None, False  # a plain miss, not a corrupt entry
        except self._DISK_LOAD_ERRORS:
            # the entry exists but cannot be loaded (truncated write from
            # a killed process, version skew, bit rot): count it, drop
            # the bad file so the rebuild overwrites it, report a miss
            with self._lock:
                self.stats.disk_errors += 1
            obs.add("cache.disk_corrupt")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None, False

    def _disk_save(self, kind: str, key: Hashable, value: Any) -> None:
        if not self.disk_path or kind not in self.PICKLABLE_KINDS:
            return
        path = self._disk_file(kind, key)
        # temp-file-then-rename keeps the landing atomic; the name is
        # unique per (process, thread, save) so concurrent writers of the
        # same key never clobber each other's half-written temp file
        tmp = (f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
               f".{next(self._tmp_seq)}")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle)
            os.replace(tmp, path)
        except (OSError, pickle.PickleError, TypeError):
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Typed helpers — the key conventions of the tool chain
    # ------------------------------------------------------------------

    def description_fingerprint(self, desc) -> str:
        """Fingerprint a description (uncached; printing is cheap)."""
        from .isdl import fingerprint

        return fingerprint(desc)

    def signature_table(self, desc, fp: Optional[str] = None):
        """Memoized :class:`~repro.encoding.signature.SignatureTable`."""
        from .encoding.signature import SignatureTable

        fp = fp or self.description_fingerprint(desc)
        return self.get_or_build(
            "sigtable", fp, lambda: SignatureTable(desc)
        )

    def fast_core(self, desc, fp: Optional[str] = None):
        """Memoized :class:`~repro.gensim.fastcore.FastCore`.

        A FastCore is stateless between runs (it only caches compiled
        per-operation routines), so one instance serves every simulator
        generated for the same description.
        """
        from .gensim.fastcore import FastCore

        fp = fp or self.description_fingerprint(desc)
        return self.get_or_build("fastcore", fp, lambda: FastCore(desc))

    def assembled(self, desc, kernel, builder: Callable[[], Any],
                  fp: Optional[str] = None):
        """Memoized assembled workload binary for (description, kernel)."""
        fp = fp or self.description_fingerprint(desc)
        return self.get_or_build(
            "program", (fp, kernel_fingerprint(kernel)), builder
        )

    def synthesized(self, desc, fp: Optional[str] = None, *,
                    share: bool = True, use_constraints: bool = True):
        """Memoized :func:`repro.hgen.synthesize` hardware model."""
        from .hgen import synthesize

        fp = fp or self.description_fingerprint(desc)
        return self.get_or_build(
            "synth", (fp, share, use_constraints),
            lambda: synthesize(desc, share=share,
                               use_constraints=use_constraints),
        )

    def block_table(self, desc, words, origin: int,
                    builder: Callable[[], Any],
                    fp: Optional[str] = None):
        """Memoized :class:`repro.gensim.blocksim.BlockTable`.

        Keyed by (description fingerprint, program words, origin): block
        functions close over burned constants only, so one lazily filled
        table serves every simulator measuring the same candidate.
        Memory layer only — compiled code objects do not pickle.
        """
        fp = fp or self.description_fingerprint(desc)
        return self.get_or_build(
            "blocktable", (fp, tuple(words), origin), builder
        )

    def evaluation(self, key: Hashable, builder: Callable[[], Any]):
        """Memoized whole-candidate evaluation (see explore.metrics)."""
        return self.get_or_build("evaluation", key, builder)

    def analysis(self, desc, builder: Callable[[], Any],
                 fp: Optional[str] = None):
        """Memoized :class:`repro.analyze.AnalysisResult` for a description.

        Keyed by the structural fingerprint alone: the analysis depends on
        nothing but the description, so the explorer's validity gate pays
        one run per distinct candidate and a lookup thereafter.
        """
        fp = fp or self.description_fingerprint(desc)
        return self.get_or_build("analysis", fp, builder)
