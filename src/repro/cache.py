"""Content-addressed artifact cache for the exploration tool chain.

Every box of the paper's Figure-1 loop regenerates from the single ISDL
description: signature tables, simulator cores, assembled workload
binaries, and synthesized hardware models.  During exploration the same
description (or large parts of it) is evaluated over and over — the
incumbent is re-simulated against new candidates, rejected candidates
reappear in later sweeps, and benchmark reruns repeat whole trajectories.
This module memoizes those artifacts behind a structural fingerprint
(:func:`repro.isdl.fingerprint`) so repeated work is a dictionary lookup.

Two layers:

* an in-memory LRU (always on) — bounded by ``max_entries``, shared by
  every tool that accepts a ``cache=`` handle;
* an optional on-disk pickle layer (``disk_path=``) for artifacts that
  survive pickling (assembled programs, whole evaluations), which makes
  warm-cache state persistent across processes and runs.

The cache is thread-safe; builders run outside the lock, so two threads
racing on the same key may both build (last store wins) but never corrupt
the table.  All disk I/O is best-effort and safe under concurrent
writers: saves go to a uniquely named temp file (pid + thread + sequence)
and land with an atomic ``os.replace``, so a reader never sees a
half-written pickle; a corrupt or truncated entry is treated as a miss —
counted in ``stats.disk_errors`` and the ``cache.disk_corrupt`` obs
counter, and the bad file is removed so the rebuild overwrites it.

**Cross-process leases** (``lease=True``, needs ``disk_path``): before
building a disk-eligible artifact, a process stakes a claim by creating
``<entry>.lease`` with ``O_CREAT|O_EXCL`` (the atomic test-and-set the
filesystem gives us) containing its pid and an expiry.  A second process
that loses the race *waits and polls the disk entry* instead of paying
the build twice — the concurrent-duals ladder of PR 5 extended across
processes: the memory LRU dedupes within a thread, in-flight coalescing
across threads, the lease across co-located processes (a cluster's
shards sharing one disk path).  Leases are advisory and crash-safe: an
expired lease, or one whose holder pid is gone, is broken and the
waiter builds; a waiter never blocks past the lease timeout, so the
worst failure mode is the duplicate build we would have done anyway.
Holder-liveness checks use ``os.kill(pid, 0)``, so leases coordinate
processes on one host (which is what a local shard fleet is).
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pickle
import threading
import time
from collections import Counter, OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, Optional, Tuple

from . import obs

__all__ = ["ArtifactCache", "CacheStats", "kernel_fingerprint"]


def kernel_fingerprint(kernel) -> str:
    """Stable digest of an IR kernel (dataclass reprs are deterministic)."""
    payload = f"{kernel.name}|{kernel.ops!r}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting, total and per artifact kind."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    #: disk entries that existed but failed to load (corrupt/truncated)
    disk_errors: int = 0
    #: builds we waited out under another process's lease
    lease_waits: int = 0
    #: stale leases (expired or dead holder) we broke
    lease_breaks: int = 0
    hits_by_kind: Counter = field(default_factory=Counter)
    misses_by_kind: Counter = field(default_factory=Counter)
    #: artifacts built incrementally off a parent, per kind
    incremental_builds: Counter = field(default_factory=Counter)
    #: sub-units (rows, routines, node groups, ...) carried over, per kind
    units_reused: Counter = field(default_factory=Counter)
    #: sub-units rebuilt during incremental builds, per kind
    units_rebuilt: Counter = field(default_factory=Counter)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def report(self) -> str:
        lines = [
            f"cache: {self.hits} hits / {self.misses} misses"
            f" ({self.hit_rate * 100:.1f}% hit rate),"
            f" {self.evictions} evictions, {self.disk_hits} from disk"
            + (f", {self.disk_errors} corrupt disk entr"
               f"{'y' if self.disk_errors == 1 else 'ies'}"
               if self.disk_errors else "")
            + (f", {self.lease_waits} lease wait"
               f"{'' if self.lease_waits == 1 else 's'}"
               if self.lease_waits else "")
        ]
        for kind in sorted(set(self.hits_by_kind) | set(self.misses_by_kind)):
            lines.append(
                f"  {kind:12s} {self.hits_by_kind[kind]:5d} hit"
                f" {self.misses_by_kind[kind]:5d} miss"
            )
        if self.incremental_builds:
            lines.append("incremental:")
            for kind in sorted(self.incremental_builds):
                lines.append(
                    f"  {kind:12s} {self.incremental_builds[kind]:5d}"
                    f" build{'' if self.incremental_builds[kind] == 1 else 's'}"
                    f" ({self.units_reused[kind]} units reused,"
                    f" {self.units_rebuilt[kind]} rebuilt)"
                )
        return "\n".join(lines)


class ArtifactCache:
    """LRU artifact cache keyed by ``(kind, key)``.

    The generic interface is :meth:`get_or_build`; the typed helpers below
    it encode the key conventions used across the tool chain so callers
    (metrics, the parallel evaluator, benchmarks) agree on what a cache
    entry means.
    """

    #: artifact kinds that survive pickling and may go to the disk layer
    PICKLABLE_KINDS = frozenset({"program", "evaluation", "analysis"})

    def __init__(self, max_entries: int = 512,
                 disk_path: Optional[str] = None, *,
                 lease: bool = False, lease_timeout_s: float = 30.0,
                 lease_poll_s: float = 0.05):
        self.max_entries = max_entries
        self.disk_path = disk_path
        #: cross-process build leases (disk-eligible kinds only)
        self.lease = bool(lease and disk_path)
        self.lease_timeout_s = lease_timeout_s
        self.lease_poll_s = lease_poll_s
        self.stats = CacheStats()
        self._entries: "OrderedDict[Tuple[str, Hashable], Any]" = OrderedDict()
        self._lock = threading.RLock()
        if disk_path:
            os.makedirs(disk_path, exist_ok=True)

    # ------------------------------------------------------------------
    # Generic interface
    # ------------------------------------------------------------------

    def get_or_build(self, kind: str, key: Hashable,
                     builder: Callable[[], Any]) -> Any:
        """Return the cached artifact for ``(kind, key)`` or build it."""
        full_key = (kind, key)
        with self._lock:
            if full_key in self._entries:
                self._entries.move_to_end(full_key)
                self.stats.hits += 1
                self.stats.hits_by_kind[kind] += 1
                obs.add("cache.hits")
                return self._entries[full_key]
        value, from_disk = self._disk_load(kind, key)
        saved = False
        if not from_disk:
            if self.lease and kind in self.PICKLABLE_KINDS:
                value, from_disk, saved = self._build_under_lease(
                    kind, key, builder
                )
            else:
                value = builder()
        with self._lock:
            if from_disk:
                self.stats.hits += 1
                self.stats.hits_by_kind[kind] += 1
                self.stats.disk_hits += 1
                obs.add("cache.hits")
                obs.add("cache.disk_hits")
            else:
                self.stats.misses += 1
                self.stats.misses_by_kind[kind] += 1
                obs.add("cache.misses")
            self._store(full_key, value)
        if not from_disk and not saved:
            self._disk_save(kind, key, value)
        return value

    def peek(self, kind: str, key: Hashable) -> Optional[Any]:
        """Non-counting lookup (memory layer only); None on miss."""
        with self._lock:
            return self._entries.get((kind, key))

    def clear(self) -> None:
        """Drop the in-memory layer (disk entries are kept)."""
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def _store(self, full_key: Tuple[str, Hashable], value: Any) -> None:
        self._entries[full_key] = value
        self._entries.move_to_end(full_key)
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            obs.add("cache.evictions")

    # ------------------------------------------------------------------
    # Disk layer (best-effort, picklable kinds only)
    # ------------------------------------------------------------------

    #: everything a hostile/truncated pickle can raise at load time
    _DISK_LOAD_ERRORS = (
        OSError, pickle.PickleError, EOFError, AttributeError,
        ImportError, IndexError, ValueError, TypeError,
        MemoryError,
    )

    #: unique temp-file names even for two threads saving the same key
    _tmp_seq = itertools.count()

    def _disk_file(self, kind: str, key: Hashable) -> str:
        digest = hashlib.sha256(repr((kind, key)).encode()).hexdigest()
        return os.path.join(self.disk_path, f"{kind}-{digest[:32]}.pkl")

    def _disk_load(self, kind: str, key: Hashable) -> Tuple[Any, bool]:
        if not self.disk_path or kind not in self.PICKLABLE_KINDS:
            return None, False
        path = self._disk_file(kind, key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle), True
        except FileNotFoundError:
            return None, False  # a plain miss, not a corrupt entry
        except self._DISK_LOAD_ERRORS:
            # the entry exists but cannot be loaded (truncated write from
            # a killed process, version skew, bit rot): count it, drop
            # the bad file so the rebuild overwrites it, report a miss
            with self._lock:
                self.stats.disk_errors += 1
            obs.add("cache.disk_corrupt")
            try:
                os.unlink(path)
            except OSError:
                pass
            return None, False

    def _disk_save(self, kind: str, key: Hashable, value: Any) -> None:
        if not self.disk_path or kind not in self.PICKLABLE_KINDS:
            return
        path = self._disk_file(kind, key)
        # temp-file-then-rename keeps the landing atomic; the name is
        # unique per (process, thread, save) so concurrent writers of the
        # same key never clobber each other's half-written temp file
        tmp = (f"{path}.tmp.{os.getpid()}.{threading.get_ident()}"
               f".{next(self._tmp_seq)}")
        try:
            with open(tmp, "wb") as handle:
                pickle.dump(value, handle)
            os.replace(tmp, path)
        except (OSError, pickle.PickleError, TypeError):
            try:
                os.unlink(tmp)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # Cross-process build leases (lease=True, disk-eligible kinds)
    # ------------------------------------------------------------------

    def _build_under_lease(self, kind: str, key: Hashable,
                           builder: Callable[[], Any]
                           ) -> Tuple[Any, bool, bool]:
        """Build with the cross-process lease protocol.

        Returns ``(value, from_disk, saved)``.  Exactly one of three
        things happens: we hold the lease and build (publishing to disk
        before releasing, so waiters see the artifact the moment the
        lease clears); we wait out another live holder and pick its
        artifact up from disk; or the wait budget runs out and we build
        locally anyway — slower, never stuck.
        """
        lease_path = self._disk_file(kind, key) + ".lease"
        deadline = time.monotonic() + self.lease_timeout_s
        waited = False
        while True:
            holder = self._lease_acquire(lease_path)
            if holder is None:  # ours
                try:
                    value, from_disk = self._disk_load(kind, key)
                    if from_disk:  # holder published while we raced
                        return value, True, False
                    value = builder()
                    self._disk_save(kind, key, value)
                    return value, False, True
                finally:
                    self._lease_release(lease_path)
            if not waited:
                waited = True
                with self._lock:
                    self.stats.lease_waits += 1
                obs.add("cache.lease_waits")
            # another process is building: poll for its published
            # artifact until the lease expires, clears, or we give up
            while time.monotonic() < deadline:
                time.sleep(self.lease_poll_s)
                value, from_disk = self._disk_load(kind, key)
                if from_disk:
                    return value, True, False
                if not self._lease_held(lease_path, holder):
                    break  # released or broken: race for it again
            else:
                return builder(), False, False  # budget spent: build

    def _lease_acquire(self, lease_path: str) -> Optional[Dict[str, Any]]:
        """Try to stake the lease; None when we now hold it, else the
        (possibly unreadable → empty) claim of the current holder."""
        while True:
            try:
                fd = os.open(lease_path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                holder = self._lease_read(lease_path)
                if holder is not None and not self._lease_stale(holder):
                    return holder
                # expired or dead holder: break the lease and race again
                with self._lock:
                    self.stats.lease_breaks += 1
                obs.add("cache.lease_breaks")
                try:
                    os.unlink(lease_path)
                except OSError:
                    pass
                continue
            except OSError:
                return None  # unwritable dir: degrade to lease-less
            try:
                claim = {"pid": os.getpid(),
                         "expires": time.time() + self.lease_timeout_s}
                os.write(fd, json.dumps(claim).encode("utf-8"))
            except OSError:
                pass
            finally:
                os.close(fd)
            return None

    @staticmethod
    def _lease_read(lease_path: str) -> Optional[Dict[str, Any]]:
        """The holder's claim, ``{}`` when unreadable (a holder mid-write
        — treated as live until it expires), None when the file is gone."""
        try:
            with open(lease_path, "rb") as handle:
                return json.loads(handle.read().decode("utf-8"))
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            return {}

    def _lease_stale(self, holder: Dict[str, Any]) -> bool:
        expires = holder.get("expires")
        if isinstance(expires, (int, float)) and time.time() > expires:
            return True
        pid = holder.get("pid")
        if isinstance(pid, int):
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # holder died without releasing
            except OSError:
                pass  # e.g. EPERM: alive but not ours
        elif expires is None:
            return False  # unreadable claim: give it the poll loop
        return False

    def _lease_held(self, lease_path: str,
                    holder: Dict[str, Any]) -> bool:
        current = self._lease_read(lease_path)
        if current is None:
            return False
        if current != holder:
            return True  # a new holder took over; keep waiting on it
        return not self._lease_stale(current)

    def _lease_release(self, lease_path: str) -> None:
        try:
            os.unlink(lease_path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Typed helpers — the key conventions of the tool chain
    # ------------------------------------------------------------------

    def description_fingerprint(self, desc) -> str:
        """Fingerprint a description (memoized per AST object)."""
        from .isdl import fingerprint

        return fingerprint(desc)

    @staticmethod
    def _parent_delta(parent, child):
        """FingerprintDelta parent → child, or None without a parent."""
        if parent is None:
            return None
        from .isdl.fingerprint import fingerprint_delta

        return fingerprint_delta(parent, child)

    def note_incremental(self, kind: str, counts: Dict[str, int]) -> None:
        """Fold a builder's per-unit reuse counts into the stats.

        *counts* is the ``reuse_counts`` attribute incremental builders
        expose: keys ending in ``reused``/``copied`` count carried-over
        units, keys ending in ``rebuilt``/``computed``/``partitioned``
        count rebuilt ones.
        """
        reused = sum(v for k, v in counts.items()
                     if k.endswith(("reused", "copied")))
        rebuilt = sum(v for k, v in counts.items()
                      if k.endswith(("rebuilt", "computed", "partitioned")))
        with self._lock:
            self.stats.incremental_builds[kind] += 1
            self.stats.units_reused[kind] += reused
            self.stats.units_rebuilt[kind] += rebuilt
        obs.add("cache.incremental.builds")
        obs.add(f"cache.incremental.{kind}.reused", reused)
        obs.add(f"cache.incremental.{kind}.rebuilt", rebuilt)

    def signature_table(self, desc, fp: Optional[str] = None, *,
                        parent=None):
        """Memoized :class:`~repro.encoding.signature.SignatureTable`.

        With *parent* (the description this one was mutated from) a miss
        builds incrementally: rows of delta-unchanged operations are
        carried over from the parent's cached table when it is present.
        """
        from .encoding.signature import SignatureTable

        fp = fp or self.description_fingerprint(desc)

        def build():
            parent_table = (
                self.peek("sigtable", self.description_fingerprint(parent))
                if parent is not None else None
            )
            if parent_table is None:
                return SignatureTable(desc)
            delta = self._parent_delta(parent, desc)
            table = SignatureTable(desc, reuse_from=(parent_table, delta))
            self.note_incremental("sigtable", table.reuse_counts)
            return table

        return self.get_or_build("sigtable", fp, build)

    def fast_core(self, desc, fp: Optional[str] = None, *, parent=None):
        """Memoized :class:`~repro.gensim.fastcore.FastCore`.

        A FastCore is stateless between runs (it only caches compiled
        per-operation routines), so one instance serves every simulator
        generated for the same description.  With *parent*, a miss adopts
        the parent core's compiled routines for delta-unchanged
        operations instead of recompiling them on first dispatch.
        """
        from .gensim.fastcore import FastCore

        fp = fp or self.description_fingerprint(desc)

        def build():
            parent_core = (
                self.peek("fastcore", self.description_fingerprint(parent))
                if parent is not None else None
            )
            if parent_core is None:
                return FastCore(desc)
            delta = self._parent_delta(parent, desc)
            core = FastCore(desc, reuse_from=(parent_core, delta))
            self.note_incremental("fastcore", core.reuse_counts)
            return core

        return self.get_or_build("fastcore", fp, build)

    def assembled(self, desc, kernel, builder: Callable[[], Any],
                  fp: Optional[str] = None, *, parent=None):
        """Memoized assembled workload binary for (description, kernel).

        With *parent*, a miss first checks whether the parent's cached
        program for the same kernel is still valid — the delta must prove
        the whole instruction set, encoding environment, storages, and
        constraints unchanged (:attr:`FingerprintDelta.assembly_reusable`)
        — and adopts it without re-running the assembler.
        """
        fp = fp or self.description_fingerprint(desc)

        def build():
            if parent is not None:
                parent_program = self.peek(
                    "program",
                    (self.description_fingerprint(parent),
                     kernel_fingerprint(kernel)),
                )
                if parent_program is not None:
                    delta = self._parent_delta(parent, desc)
                    if delta.assembly_reusable:
                        self.note_incremental("program", {"reused": 1})
                        return parent_program
            return builder()

        return self.get_or_build(
            "program", (fp, kernel_fingerprint(kernel)), build
        )

    def synthesized(self, desc, fp: Optional[str] = None, *,
                    share: bool = True, use_constraints: bool = True,
                    parent=None, tech=None):
        """Memoized :func:`repro.hgen.synthesize` hardware model.

        With *parent*, a miss synthesizes incrementally off the parent's
        cached model (same *share*/*use_constraints* key): unchanged
        operations keep their extracted nodes, stable compatibility-matrix
        entries are copied, and per-component clique partitions are reused
        by structural digest.

        *tech* (a :class:`repro.tech.TechModel`) projects the returned
        model into a scaled technology **after** the cache fetch — the
        synth cache itself stays technology independent, so one stored
        synthesis serves every node/flavor a sweep asks for.
        """
        from .hgen import synthesize

        fp = fp or self.description_fingerprint(desc)

        def build():
            reuse_from = None
            if parent is not None:
                parent_model = self.peek(
                    "synth",
                    (self.description_fingerprint(parent), share,
                     use_constraints),
                )
                if parent_model is not None:
                    reuse_from = (
                        parent_model, self._parent_delta(parent, desc)
                    )
            model = synthesize(desc, share=share,
                               use_constraints=use_constraints,
                               reuse_from=reuse_from)
            if reuse_from is not None:
                self.note_incremental("synth", model.reuse_counts)
            return model

        model = self.get_or_build(
            "synth", (fp, share, use_constraints), build
        )
        if tech is not None:
            model = model.with_tech(tech)
        return model

    def block_table(self, desc, words, origin: int,
                    builder: Callable[[], Any],
                    fp: Optional[str] = None, *,
                    variant: str = "plain"):
        """Memoized :class:`repro.gensim.blocksim.BlockTable`.

        Keyed by (description fingerprint, program words, origin): block
        functions close over burned constants only, so one lazily filled
        table serves every simulator measuring the same candidate.
        *variant* separates incompatible compilation modes — a
        proof-certified simulator fuses superblock chains, and its fused
        entries must never be dispatched by a guarded (``"plain"``) run.
        Memory layer only — compiled code objects do not pickle.
        """
        fp = fp or self.description_fingerprint(desc)
        return self.get_or_build(
            "blocktable", (fp, tuple(words), origin, variant), builder
        )

    def peek_block_table(self, desc, words, origin: int,
                         fp: Optional[str] = None, *,
                         variant: str = "plain"):
        """Non-counting lookup of a cached block table; None on miss.

        Used by the block simulator to find the *parent* candidate's
        table for the same program so delta-unchanged compiled blocks can
        be adopted instead of recompiled (see
        :meth:`repro.gensim.blocksim.BlockSimulator.load_words`).
        """
        fp = fp or self.description_fingerprint(desc)
        return self.peek("blocktable", (fp, tuple(words), origin, variant))

    def facts(self, desc, words, origin: int,
              builder: Callable[[], Any],
              fp: Optional[str] = None):
        """Memoized :class:`repro.analyze.dataflow.ProgramFacts`.

        Keyed like block tables — (description fingerprint, program
        words, origin) — so every consumer of one candidate × program
        pair (diagnostic passes, certificate derivation, the block
        simulator) pays for one fixpoint run.  Memory layer only: facts
        are cheap to rebuild and referenced from live simulators.
        """
        fp = fp or self.description_fingerprint(desc)
        return self.get_or_build(
            "facts", (fp, tuple(words), origin), builder
        )

    def peek_facts(self, desc, words, origin: int,
                   fp: Optional[str] = None):
        """Non-counting lookup of cached program facts; None on miss.

        The incremental rebuild peeks the *parent* description's facts
        for the same program and carries over per-instruction summaries
        whose decode keys (operation unit fingerprints + operands) match.
        """
        fp = fp or self.description_fingerprint(desc)
        return self.peek("facts", (fp, tuple(words), origin))

    def evaluation(self, key: Hashable, builder: Callable[[], Any]):
        """Memoized whole-candidate evaluation (see explore.metrics)."""
        return self.get_or_build("evaluation", key, builder)

    def analysis(self, desc, builder: Callable[[], Any],
                 fp: Optional[str] = None):
        """Memoized :class:`repro.analyze.AnalysisResult` for a description.

        Keyed by the structural fingerprint alone: the analysis depends on
        nothing but the description, so the explorer's validity gate pays
        one run per distinct candidate and a lookup thereafter.
        """
        fp = fp or self.description_fingerprint(desc)
        return self.get_or_build("analysis", fp, builder)
