"""Exception hierarchy for the repro toolkit.

Every error raised by the toolkit derives from :class:`ReproError` so that
callers embedding the tools (e.g. the exploration loop) can catch one type.
Errors that originate in user-supplied text (ISDL descriptions, assembly
source, batch scripts) carry a source location.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a source file (1-based line and column)."""

    filename: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for all toolkit errors."""


class LocatedError(ReproError):
    """An error with an optional source location attached."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.message = message
        self.location = location
        super().__init__(str(self))

    def __str__(self) -> str:
        if self.location is not None:
            return f"{self.location}: {self.message}"
        return self.message


class IsdlSyntaxError(LocatedError):
    """Raised by the ISDL lexer/parser on malformed description text."""


class IsdlSemanticError(LocatedError):
    """Raised by semantic analysis on an inconsistent ISDL description.

    Examples: undefined storage referenced in RTL, encoding bits assigned
    twice, a signature bit depending on two parameters (violating Axiom 1 of
    the paper), a constraint naming an unknown operation.
    """


class EncodingError(ReproError):
    """Raised when an assembly function cannot encode the given operands."""


class DisassemblyError(ReproError):
    """Raised when an instruction word matches no operation signature.

    The paper allows undefined behaviour here; we raise a diagnostic instead
    because an exploration loop wants to know its binary was inconsistent.
    """


class AmbiguousEncodingError(DisassemblyError):
    """Raised when an instruction word matches more than one signature.

    The paper's Fig. 4 algorithm assumes a decodable assembly function
    (unique constant match per field); on a description that breaks that
    property the match set — not declaration order — is the truth, so the
    disassembler names every matching operation instead of silently taking
    the first.  ``matches`` holds the qualified names, sorted.
    """

    def __init__(self, message: str, matches: tuple = ()):
        super().__init__(message)
        self.matches = tuple(matches)


class AssemblerError(LocatedError):
    """Raised on malformed assembly source or constraint violations."""


class ConstraintViolation(AssemblerError):
    """An instruction combines operations forbidden by the constraints."""


class SimulationError(ReproError):
    """Raised by the XSIM simulator on an unrecoverable runtime condition."""


class StateError(SimulationError):
    """Raised on invalid accesses to processor state (bad index, width)."""


class SynthesisError(ReproError):
    """Raised by HGEN when a description cannot be mapped to hardware."""


class CodegenError(ReproError):
    """Raised by the retargetable code generator."""


class ExplorationError(ReproError):
    """Raised by the architecture-exploration driver."""
