"""Recursive-descent parser for ISDL descriptions.

See ``grammar.md`` in this package for the concrete syntax.  The parser
produces a :class:`repro.isdl.ast.Description`.  Location expressions
(``RF[r]``, ``ACC[3:0]``) are parsed generically and resolved against the
storage/alias/parameter tables in a post-pass, so section order never
matters.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..errors import IsdlSyntaxError, SourceLocation
from . import ast, rtl
from .lexer import Token, tokenize

_STORAGE_KEYWORDS = {kind.value: kind for kind in ast.StorageKind}

#: Binary operator precedence tiers, loosest first (C-like).
_BINARY_TIERS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]


def parse(source: str, filename: str = "<isdl>") -> ast.Description:
    """Parse ISDL *source* text into a :class:`Description`."""
    with obs.span("isdl.parse", file=filename):
        return _Parser(tokenize(source, filename)).parse_description()


class _RawLoc:
    """An unresolved ``name[...][...]`` location from the surface syntax."""

    __slots__ = ("name", "suffixes", "location")

    def __init__(self, name, suffixes, location):
        self.name = name
        self.suffixes = suffixes  # list of (expr, expr|None) bracket groups
        self.location = location


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Cursor helpers
    # ------------------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._peek()
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _at_id(self, *names: str) -> bool:
        token = self._peek()
        return token.kind == "ID" and token.value in names

    def _at_op(self, op: str) -> bool:
        token = self._peek()
        return token.kind == "OP" and token.value == op

    def _accept_id(self, *names: str) -> Optional[Token]:
        if self._at_id(*names):
            return self._next()
        return None

    def _accept_op(self, op: str) -> Optional[Token]:
        if self._at_op(op):
            return self._next()
        return None

    def _expect_id(self, *names: str) -> Token:
        token = self._peek()
        if token.kind == "ID" and (not names or token.value in names):
            return self._next()
        expected = " or ".join(repr(n) for n in names) if names else "identifier"
        raise IsdlSyntaxError(
            f"expected {expected}, found {token.text!r}", token.location
        )

    def _expect_op(self, op: str) -> Token:
        token = self._peek()
        if token.kind == "OP" and token.value == op:
            return self._next()
        raise IsdlSyntaxError(
            f"expected {op!r}, found {token.text!r}", token.location
        )

    def _expect_int(self) -> int:
        token = self._peek()
        if token.kind != "INT":
            raise IsdlSyntaxError(
                f"expected integer, found {token.text!r}", token.location
            )
        return self._next().value

    def _expect_string(self) -> str:
        token = self._peek()
        if token.kind != "STRING":
            raise IsdlSyntaxError(
                f"expected string, found {token.text!r}", token.location
            )
        return self._next().value

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def parse_description(self) -> ast.Description:
        self._expect_id("processor")
        name = self._expect_string()
        desc = ast.Description(name=name, word_width=0)
        while not self._peek().kind == "EOF":
            self._parse_section(desc)
        if desc.word_width <= 0:
            raise IsdlSyntaxError(
                "description has no 'section format' defining the word width",
                self._peek().location,
            )
        _resolve_description(desc)
        return desc

    def _parse_section(self, desc: ast.Description) -> None:
        self._expect_id("section")
        name_token = self._expect_id()
        name = name_token.value
        if name == "format":
            self._parse_format(desc)
        elif name == "global_definitions":
            self._parse_global_definitions(desc)
        elif name == "storage":
            self._parse_storage(desc)
        elif name == "instruction_set":
            self._parse_instruction_set(desc)
        elif name == "constraints":
            self._parse_constraints(desc)
        elif name == "optional":
            self._parse_optional(desc)
        else:
            raise IsdlSyntaxError(
                f"unknown section {name!r}", name_token.location
            )
        self._expect_id("end")

    # ------------------------------------------------------------------
    # Sections
    # ------------------------------------------------------------------

    def _parse_format(self, desc: ast.Description) -> None:
        while not self._at_id("end"):
            self._expect_id("word")
            desc.word_width = self._expect_int()

    def _parse_global_definitions(self, desc: ast.Description) -> None:
        while not self._at_id("end"):
            if self._at_id("token"):
                token = self._parse_token_def()
                desc.tokens[token.name] = token
            elif self._at_id("nonterminal"):
                nt = self._parse_nonterminal()
                desc.nonterminals[nt.name] = nt
            else:
                token = self._peek()
                raise IsdlSyntaxError(
                    f"expected 'token' or 'nonterminal', found {token.text!r}",
                    token.location,
                )

    def _parse_token_def(self) -> ast.TokenDef:
        start = self._expect_id("token")
        name = self._expect_id().value
        if self._accept_id("prefix"):
            prefix = self._expect_string()
            self._expect_id("range")
            lo = self._expect_int()
            self._expect_op("..")
            hi = self._expect_int()
            return ast.TokenDef(
                name,
                ast.TokenKind.PREFIXED,
                prefix=prefix,
                lo=lo,
                hi=hi,
                location=start.location,
            )
        if self._accept_id("immediate"):
            sign = self._expect_id("signed", "unsigned").value
            self._expect_id("width")
            width = self._expect_int()
            return ast.TokenDef(
                name,
                ast.TokenKind.IMMEDIATE,
                signed=(sign == "signed"),
                width=width,
                location=start.location,
            )
        if self._accept_id("enum"):
            self._expect_op("{")
            symbols = []
            while True:
                symbol = self._expect_id().value
                self._expect_op("=")
                value = self._expect_int()
                symbols.append((symbol, value))
                if not self._accept_op(","):
                    break
            self._expect_op("}")
            return ast.TokenDef(
                name,
                ast.TokenKind.ENUM,
                symbols=tuple(symbols),
                location=start.location,
            )
        token = self._peek()
        raise IsdlSyntaxError(
            f"expected 'prefix', 'immediate' or 'enum', found {token.text!r}",
            token.location,
        )

    def _parse_nonterminal(self) -> ast.NonTerminal:
        start = self._expect_id("nonterminal")
        name = self._expect_id().value
        self._expect_id("width")
        width = self._expect_int()
        options = []
        while self._at_id("option"):
            options.append(self._parse_nt_option())
        self._expect_id("end")
        if not options:
            raise IsdlSyntaxError(
                f"non-terminal {name!r} has no options", start.location
            )
        return ast.NonTerminal(name, width, tuple(options), start.location)

    def _parse_nt_option(self) -> ast.NtOption:
        start = self._expect_id("option")
        label = self._expect_id().value
        params = self._parse_params()
        parts = self._parse_parts(default_cost=ast.Costs(cycle=0))
        return ast.NtOption(
            label=label,
            params=params,
            syntax=parts["syntax"],
            encoding=parts["encoding"],
            action=parts["action"],
            side_effect=parts["side_effect"],
            costs=parts["costs"],
            timing=parts["timing"],
            location=start.location,
        )

    def _parse_storage(self, desc: ast.Description) -> None:
        while not self._at_id("end"):
            if self._at_id("alias"):
                alias = self._parse_alias()
                desc.aliases[alias.name] = alias
                continue
            token = self._expect_id(*_STORAGE_KEYWORDS)
            kind = _STORAGE_KEYWORDS[token.value]
            name = self._expect_id().value
            self._expect_id("width")
            width = self._expect_int()
            depth = None
            if self._accept_id("depth"):
                depth = self._expect_int()
            if kind in ast.ADDRESSED_KINDS and depth is None:
                raise IsdlSyntaxError(
                    f"storage {name!r} of kind {kind.value} needs a depth",
                    token.location,
                )
            if kind not in ast.ADDRESSED_KINDS and depth is not None:
                raise IsdlSyntaxError(
                    f"storage {name!r} of kind {kind.value} takes no depth",
                    token.location,
                )
            desc.storages[name] = ast.Storage(
                name, kind, width, depth, token.location
            )

    def _parse_alias(self) -> ast.Alias:
        start = self._expect_id("alias")
        name = self._expect_id().value
        self._expect_op("=")
        target = self._expect_id().value
        index = None
        hi = None
        lo = None
        groups = []
        while self._at_op("["):
            groups.append(self._parse_const_bracket())
        if len(groups) == 1:
            first = groups[0]
            if first[1] is None:
                # Disambiguated during resolution: single [n] on addressed
                # storage is an element index, on scalar storage a bit.
                index = first[0]
            else:
                hi, lo = first
        elif len(groups) == 2:
            if groups[0][1] is not None:
                raise IsdlSyntaxError(
                    "alias element index must be a single integer",
                    start.location,
                )
            index = groups[0][0]
            hi, lo = groups[1]
            if lo is None:
                lo = hi
        elif len(groups) > 2:
            raise IsdlSyntaxError("too many suffixes on alias", start.location)
        return ast.Alias(name, target, index, hi, lo, start.location)

    def _parse_const_bracket(self) -> Tuple[int, Optional[int]]:
        self._expect_op("[")
        first = self._expect_int()
        second = None
        if self._accept_op(":"):
            second = self._expect_int()
        self._expect_op("]")
        return first, second

    def _parse_instruction_set(self, desc: ast.Description) -> None:
        while self._at_id("field"):
            start = self._next()
            name = self._expect_id().value
            operations = []
            while self._at_id("operation"):
                operations.append(self._parse_operation())
            self._expect_id("end")
            if not operations:
                raise IsdlSyntaxError(
                    f"field {name!r} has no operations", start.location
                )
            desc.fields.append(
                ast.Field(name, tuple(operations), start.location)
            )
        if not self._at_id("end"):
            token = self._peek()
            raise IsdlSyntaxError(
                f"expected 'field' or 'end', found {token.text!r}",
                token.location,
            )

    def _parse_operation(self) -> ast.Operation:
        start = self._expect_id("operation")
        name = self._expect_id().value
        params = self._parse_params()
        parts = self._parse_parts(default_cost=ast.Costs())
        return ast.Operation(
            name=name,
            params=params,
            syntax=parts["syntax"],
            encoding=parts["encoding"],
            action=parts["action"],
            side_effect=parts["side_effect"],
            costs=parts["costs"],
            timing=parts["timing"],
            location=start.location,
        )

    def _parse_params(self) -> Tuple[ast.Param, ...]:
        self._expect_op("(")
        params = []
        if not self._at_op(")"):
            while True:
                pname = self._expect_id().value
                self._expect_op(":")
                tname = self._expect_id().value
                params.append(ast.Param(pname, tname))
                if not self._accept_op(","):
                    break
        self._expect_op(")")
        return tuple(params)

    def _parse_parts(self, default_cost: ast.Costs) -> Dict[str, object]:
        """Parse the six-part body shared by operations and NT options."""
        syntax = None
        if self._accept_id("syntax"):
            syntax = self._expect_string()
        self._expect_id("encoding")
        encoding = self._parse_encoding()
        action: Tuple[rtl.Stmt, ...] = ()
        side_effect: Tuple[rtl.Stmt, ...] = ()
        costs = default_cost
        timing = ast.Timing()
        if self._accept_id("action"):
            action = self._parse_stmt_block()
        if self._accept_id("side_effect"):
            side_effect = self._parse_stmt_block()
        if self._accept_id("cost"):
            costs = self._parse_costs(default_cost)
        if self._accept_id("timing"):
            timing = self._parse_timing()
        return {
            "syntax": syntax,
            "encoding": encoding,
            "action": action,
            "side_effect": side_effect,
            "costs": costs,
            "timing": timing,
        }

    def _parse_costs(self, default: ast.Costs) -> ast.Costs:
        cycle, stall, size = default.cycle, default.stall, default.size
        seen = False
        while self._at_id("cycle", "stall", "size"):
            key = self._next().value
            value = self._expect_int()
            if key == "cycle":
                cycle = value
            elif key == "stall":
                stall = value
            else:
                size = value
            seen = True
        if not seen:
            token = self._peek()
            raise IsdlSyntaxError(
                f"'cost' needs at least one of cycle/stall/size, found"
                f" {token.text!r}",
                token.location,
            )
        return ast.Costs(cycle, stall, size)

    def _parse_timing(self) -> ast.Timing:
        latency, usage = 1, 1
        seen = False
        while self._at_id("latency", "usage"):
            key = self._next().value
            value = self._expect_int()
            if key == "latency":
                latency = value
            else:
                usage = value
            seen = True
        if not seen:
            token = self._peek()
            raise IsdlSyntaxError(
                f"'timing' needs latency and/or usage, found {token.text!r}",
                token.location,
            )
        return ast.Timing(latency, usage)

    def _parse_encoding(self) -> Tuple[ast.BitAssign, ...]:
        self._expect_op("{")
        assigns = []
        while not self._at_op("}"):
            assigns.append(self._parse_bit_assign())
            if not self._accept_op(";"):
                break
        self._expect_op("}")
        return tuple(assigns)

    def _parse_bit_assign(self) -> ast.BitAssign:
        start = self._expect_id("bits")
        self._expect_op("[")
        hi = self._expect_int()
        lo = hi
        if self._accept_op(":"):
            lo = self._expect_int()
        self._expect_op("]")
        if lo > hi:
            raise IsdlSyntaxError(
                f"bit range [{hi}:{lo}] is reversed", start.location
            )
        self._expect_op("=")
        token = self._peek()
        if token.kind == "INT":
            value = self._next().value
            rhs: object = ast.EncConst(value)
        else:
            pname = self._expect_id().value
            phi = plo = None
            if self._at_op("["):
                phi, plo = self._parse_const_bracket()
                if plo is None:
                    plo = phi
            rhs = ast.EncParam(pname, phi, plo)
        return ast.BitAssign(hi, lo, rhs, start.location)

    # ------------------------------------------------------------------
    # RTL statements & expressions
    # ------------------------------------------------------------------

    def _parse_stmt_block(self) -> Tuple[rtl.Stmt, ...]:
        self._expect_op("{")
        stmts = self._parse_stmts_until("}")
        self._expect_op("}")
        return stmts

    def _parse_stmts_until(self, closer: str) -> Tuple[rtl.Stmt, ...]:
        stmts = []
        while not self._at_op(closer):
            stmts.append(self._parse_stmt())
        return tuple(stmts)

    def _parse_stmt(self) -> rtl.Stmt:
        if self._at_id("if"):
            start = self._next()
            cond = self._parse_expr()
            self._expect_op("{")
            then = self._parse_stmts_until("}")
            self._expect_op("}")
            orelse: Tuple[rtl.Stmt, ...] = ()
            if self._accept_id("else"):
                self._expect_op("{")
                orelse = self._parse_stmts_until("}")
                self._expect_op("}")
            return rtl.If(cond, then, orelse, start.location)
        start = self._peek()
        dest = self._parse_lvalue()
        self._expect_op("<-")
        expr = self._parse_expr()
        self._expect_op(";")
        return rtl.Assign(dest, expr, start.location)

    def _parse_lvalue(self):
        if self._accept_op("$$"):
            return rtl.NtLV()
        token = self._expect_id()
        suffixes = self._parse_bracket_suffixes()
        return _RawLoc(token.value, suffixes, token.location)

    def _parse_bracket_suffixes(self):
        suffixes = []
        while self._at_op("["):
            self._next()
            first = self._parse_expr()
            second = None
            if self._accept_op(":"):
                second = self._parse_expr()
            self._expect_op("]")
            suffixes.append((first, second))
        return suffixes

    def _parse_expr(self) -> rtl.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> rtl.Expr:
        cond = self._parse_binary(0)
        if self._accept_op("?"):
            then = self._parse_expr()
            self._expect_op(":")
            other = self._parse_expr()
            return rtl.Cond(cond, then, other)
        return cond

    def _parse_binary(self, tier: int) -> rtl.Expr:
        if tier >= len(_BINARY_TIERS):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        ops = _BINARY_TIERS[tier]
        while self._peek().kind == "OP" and self._peek().value in ops:
            op = self._next().value
            right = self._parse_binary(tier + 1)
            left = rtl.BinOp(op, left, right)
        return left

    def _parse_unary(self) -> rtl.Expr:
        for op in ("~", "-", "!"):
            if self._at_op(op):
                self._next()
                return rtl.UnOp(op, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> rtl.Expr:
        token = self._peek()
        if token.kind == "INT":
            return rtl.IntLit(self._next().value)
        if self._accept_op("$$"):
            return rtl.NtValue()
        if self._accept_op("("):
            expr = self._parse_expr()
            self._expect_op(")")
            return expr
        if token.kind == "ID":
            self._next()
            if self._at_op("("):
                self._next()
                args = []
                if not self._at_op(")"):
                    while True:
                        args.append(self._parse_expr())
                        if not self._accept_op(","):
                            break
                self._expect_op(")")
                return rtl.Call(token.value, tuple(args))
            suffixes = self._parse_bracket_suffixes()
            return _RawLoc(token.value, suffixes, token.location)
        raise IsdlSyntaxError(
            f"expected expression, found {token.text!r}", token.location
        )

    # ------------------------------------------------------------------
    # Constraints / optional
    # ------------------------------------------------------------------

    def _parse_constraints(self, desc: ast.Description) -> None:
        while self._at_id("forbid", "require"):
            keyword = self._next()
            expr = self._parse_cexpr()
            if keyword.value == "forbid":
                expr = ast.CNot(expr)
            text = f"{keyword.value} ..."
            desc.constraints.append(
                ast.Constraint(expr, text, keyword.location)
            )
        if not self._at_id("end"):
            token = self._peek()
            raise IsdlSyntaxError(
                f"expected 'forbid', 'require' or 'end', found {token.text!r}",
                token.location,
            )

    def _parse_cexpr(self) -> ast.CExpr:
        left = self._parse_cterm()
        while self._accept_op("|"):
            left = ast.COr(left, self._parse_cterm())
        return left

    def _parse_cterm(self) -> ast.CExpr:
        left = self._parse_cfactor()
        while self._accept_op("&"):
            left = ast.CAnd(left, self._parse_cfactor())
        return left

    def _parse_cfactor(self) -> ast.CExpr:
        if self._accept_op("~"):
            return ast.CNot(self._parse_cfactor())
        if self._accept_op("("):
            expr = self._parse_cexpr()
            self._expect_op(")")
            return expr
        field = self._expect_id().value
        self._expect_op(".")
        op = self._expect_id().value
        return ast.COpRef(field, op)

    def _parse_optional(self, desc: ast.Description) -> None:
        while self._at_id("attribute"):
            self._next()
            key = self._expect_id().value
            if self._at_op("="):
                self._next()
            desc.attributes[key] = self._expect_string()


# ---------------------------------------------------------------------------
# Location resolution post-pass
# ---------------------------------------------------------------------------


def _resolve_description(desc: ast.Description) -> None:
    """Rewrite every _RawLoc into ParamRef / StorageRead / StorageLV nodes."""
    for nt_name, nt in list(desc.nonterminals.items()):
        options = tuple(
            _resolve_option(desc, opt) for opt in nt.options
        )
        desc.nonterminals[nt_name] = ast.NonTerminal(
            nt.name, nt.width, options, nt.location
        )
    for i, fld in enumerate(list(desc.fields)):
        operations = tuple(_resolve_operation(desc, op) for op in fld.operations)
        desc.fields[i] = ast.Field(fld.name, operations, fld.location)


def _resolve_option(desc, opt: ast.NtOption) -> ast.NtOption:
    param_names = {p.name for p in opt.params}
    resolver = _LocResolver(desc, param_names)
    return ast.NtOption(
        label=opt.label,
        params=opt.params,
        syntax=opt.syntax,
        encoding=opt.encoding,
        action=resolver.stmts(opt.action),
        side_effect=resolver.stmts(opt.side_effect),
        costs=opt.costs,
        timing=opt.timing,
        location=opt.location,
    )


def _resolve_operation(desc, op: ast.Operation) -> ast.Operation:
    param_names = {p.name for p in op.params}
    resolver = _LocResolver(desc, param_names)
    return ast.Operation(
        name=op.name,
        params=op.params,
        syntax=op.syntax,
        encoding=op.encoding,
        action=resolver.stmts(op.action),
        side_effect=resolver.stmts(op.side_effect),
        costs=op.costs,
        timing=op.timing,
        location=op.location,
    )


class _LocResolver:
    """Resolves raw ``name[...]`` locations given the symbol tables."""

    def __init__(self, desc: ast.Description, param_names):
        self._desc = desc
        self._params = param_names

    def stmts(self, stmts) -> Tuple[rtl.Stmt, ...]:
        return tuple(self._stmt(s) for s in stmts)

    def _stmt(self, stmt: rtl.Stmt) -> rtl.Stmt:
        if isinstance(stmt, rtl.Assign):
            return rtl.Assign(
                self._lvalue(stmt.dest), self._expr(stmt.expr), stmt.location
            )
        if isinstance(stmt, rtl.If):
            return rtl.If(
                self._expr(stmt.cond),
                tuple(self._stmt(s) for s in stmt.then),
                tuple(self._stmt(s) for s in stmt.orelse),
                stmt.location,
            )
        raise TypeError(f"not a statement: {stmt!r}")

    def _lvalue(self, lvalue) -> rtl.LValue:
        if isinstance(lvalue, rtl.NtLV):
            return lvalue
        if isinstance(lvalue, _RawLoc):
            if lvalue.name in self._params and not lvalue.suffixes:
                return rtl.ParamLV(lvalue.name)
            storage, index, hi, lo = self._split_location(lvalue)
            return rtl.StorageLV(storage, index, hi, lo)
        raise TypeError(f"not an l-value: {lvalue!r}")

    def _expr(self, expr) -> rtl.Expr:
        if isinstance(expr, _RawLoc):
            if expr.name in self._params and not expr.suffixes:
                return rtl.ParamRef(expr.name)
            storage, index, hi, lo = self._split_location(expr)
            return rtl.StorageRead(storage, index, hi, lo)
        if isinstance(expr, (rtl.IntLit, rtl.ParamRef, rtl.NtValue)):
            return expr
        if isinstance(expr, rtl.BinOp):
            return rtl.BinOp(expr.op, self._expr(expr.left), self._expr(expr.right))
        if isinstance(expr, rtl.UnOp):
            return rtl.UnOp(expr.op, self._expr(expr.operand))
        if isinstance(expr, rtl.Cond):
            return rtl.Cond(
                self._expr(expr.cond),
                self._expr(expr.then),
                self._expr(expr.other),
            )
        if isinstance(expr, rtl.Call):
            return rtl.Call(expr.func, tuple(self._expr(a) for a in expr.args))
        if isinstance(expr, rtl.StorageRead):
            return expr
        raise TypeError(f"not an expression: {expr!r}")

    def _split_location(self, raw: _RawLoc):
        """Return (storage, index, hi, lo) for a raw location."""
        name = raw.name
        desc = self._desc
        if name in desc.storages:
            addressed = desc.storages[name].addressed
        elif name in desc.aliases:
            addressed = False  # aliases denote scalar slices of state
        else:
            raise IsdlSyntaxError(
                f"unknown name {name!r} (not a parameter, storage or alias)",
                raw.location,
            )
        suffixes = [
            (self._expr(a), self._expr(b) if b is not None else None)
            for a, b in raw.suffixes
        ]
        index = None
        bitrange = None
        if addressed:
            if not suffixes:
                raise IsdlSyntaxError(
                    f"addressed storage {name!r} needs an element index",
                    raw.location,
                )
            first = suffixes.pop(0)
            if first[1] is not None:
                raise IsdlSyntaxError(
                    f"element index of {name!r} cannot be a range",
                    raw.location,
                )
            index = first[0]
        if suffixes:
            group = suffixes.pop(0)
            bitrange = self._const_range(group, raw.location)
        if suffixes:
            raise IsdlSyntaxError(
                f"too many suffixes on {name!r}", raw.location
            )
        hi, lo = bitrange if bitrange is not None else (None, None)
        return name, index, hi, lo

    @staticmethod
    def _const_range(group, location) -> Tuple[int, int]:
        first, second = group
        if not isinstance(first, rtl.IntLit) or (
            second is not None and not isinstance(second, rtl.IntLit)
        ):
            raise IsdlSyntaxError(
                "bit ranges must be integer constants", location
            )
        hi = first.value
        lo = second.value if second is not None else hi
        if lo > hi:
            raise IsdlSyntaxError(f"bit range [{hi}:{lo}] is reversed", location)
        return hi, lo
