"""Pretty-printer: render a Description back to ISDL surface syntax.

The exploration loop (:mod:`repro.explore`) transforms descriptions as ASTs;
printing them back to text keeps the methodology's single-description
property — every tool consumes the same ISDL text (paper section 4.1).
The printer round-trips: ``parse(print(parse(s)))`` equals ``parse(s)``.
"""

from __future__ import annotations

from typing import List, Tuple

from . import ast, rtl


def print_description(desc: ast.Description) -> str:
    """Render *desc* as ISDL text."""
    return "\n".join(
        line for _, _, lines in description_units(desc) for line in lines
    ) + "\n"


def description_units(
    desc: ast.Description,
) -> List[Tuple[str, object, List[str]]]:
    """The canonical document broken into per-unit line groups.

    Returns ``(kind, key, lines)`` triples in print order; concatenating
    every group's lines (joined with newlines, plus the trailing one)
    reproduces :func:`print_description` byte for byte.  This is the
    substrate of the fingerprint tree (:mod:`repro.isdl.fingerprint`):
    each storage, token, non-terminal, and operation is its own group, so
    per-unit digests fall out of the same pass that yields the root
    digest.  Kinds: ``header``, ``format``, ``frame`` (constant section
    scaffolding), ``token``, ``nonterminal``, ``storage``, ``alias``,
    ``field`` (the ``field <name>`` opener; key is the field name),
    ``operation`` (key is ``(field, op)``), ``constraints``,
    ``attributes`` (whole sections — they are small and change as one).
    """
    units: List[Tuple[str, object, List[str]]] = [
        ("header", None, [f'processor "{desc.name}"', ""]),
        ("format", None, _format_section(desc)),
        ("frame", "global_open", ["section global_definitions"]),
    ]
    for token in desc.tokens.values():
        units.append(("token", token.name, ["    " + _token_text(token)]))
    for nt in desc.nonterminals.values():
        units.append(("nonterminal", nt.name, _nonterminal_text(nt)))
    units.append(("frame", "global_close", ["end", ""]))
    units.append(("frame", "storage_open", ["section storage"]))
    for storage in desc.storages.values():
        units.append(("storage", storage.name, [_storage_line(storage)]))
    for alias in desc.aliases.values():
        units.append(("alias", alias.name, [_alias_line(alias)]))
    units.append(("frame", "storage_close", ["end", ""]))
    units.append(("frame", "instruction_open", ["section instruction_set"]))
    for fld in desc.fields:
        units.append(("field", fld.name, [f"    field {fld.name}"]))
        for op in fld.operations:
            units.append(
                ("operation", (fld.name, op.name), operation_lines(op))
            )
        units.append(("frame", ("field_close", fld.name), ["    end"]))
    units.append(("frame", "instruction_close", ["end", ""]))
    constraint_lines = _constraint_section(desc)
    if constraint_lines:
        units.append(("constraints", None, constraint_lines))
    optional_lines = _optional_section(desc)
    if optional_lines:
        units.append(("attributes", None, optional_lines))
    return units


def operation_lines(op: ast.Operation) -> List[str]:
    """The canonical lines of one operation definition (indent level 2).

    Position-independent: the fragment depends only on the operation, so
    its digest identifies the definition wherever it appears.
    """
    out = [f"        operation {op.name}({_params_text(op.params)})"]
    out += _parts_text(op, indent=3, default_cost=ast.Costs())
    return out


def _storage_line(storage: ast.Storage) -> str:
    line = f"    {storage.kind.value} {storage.name} width {storage.width}"
    if storage.depth is not None:
        line += f" depth {storage.depth}"
    return line


def _alias_line(alias: ast.Alias) -> str:
    target = alias.storage
    if alias.index is not None:
        target += f"[{alias.index}]"
    if alias.hi is not None:
        lo = alias.lo if alias.lo is not None else alias.hi
        target += f"[{alias.hi}]" if alias.hi == lo else f"[{alias.hi}:{lo}]"
    return f"    alias {alias.name} = {target}"


def _format_section(desc) -> List[str]:
    return ["section format", f"    word {desc.word_width}", "end", ""]


def _token_text(token: ast.TokenDef) -> str:
    if token.kind is ast.TokenKind.PREFIXED:
        return (
            f'token {token.name} prefix "{token.prefix}"'
            f" range {token.lo} .. {token.hi}"
        )
    if token.kind is ast.TokenKind.IMMEDIATE:
        sign = "signed" if token.signed else "unsigned"
        return f"token {token.name} immediate {sign} width {token.width}"
    body = ", ".join(f"{s} = {v}" for s, v in token.symbols)
    return f"token {token.name} enum {{ {body} }}"


def _nonterminal_text(nt: ast.NonTerminal) -> List[str]:
    out = [f"    nonterminal {nt.name} width {nt.width}"]
    for opt in nt.options:
        out.append(f"        option {opt.label}({_params_text(opt.params)})")
        out += _parts_text(opt, indent=3, default_cost=ast.Costs(cycle=0))
    out.append("    end")
    return out


def _params_text(params) -> str:
    return ", ".join(f"{p.name}: {p.type_name}" for p in params)


def _parts_text(item, indent: int, default_cost: ast.Costs) -> List[str]:
    pad = "    " * indent
    out: List[str] = []
    if item.syntax is not None:
        out.append(f'{pad}syntax "{item.syntax}"')
    out.append(pad + "encoding { " + _encoding_text(item.encoding) + " }")
    if item.action:
        out += _block_text("action", item.action, indent)
    if item.side_effect:
        out += _block_text("side_effect", item.side_effect, indent)
    if item.costs != default_cost:
        costs = item.costs
        out.append(
            f"{pad}cost cycle {costs.cycle} stall {costs.stall}"
            f" size {costs.size}"
        )
    if item.timing != ast.Timing():
        timing = item.timing
        out.append(f"{pad}timing latency {timing.latency} usage {timing.usage}")
    return out


def _encoding_text(encoding) -> str:
    parts = []
    for assign in encoding:
        if assign.hi == assign.lo:
            lhs = f"bits[{assign.hi}]"
        else:
            lhs = f"bits[{assign.hi}:{assign.lo}]"
        rhs = assign.rhs
        if isinstance(rhs, ast.EncConst):
            text = f"0b{rhs.value:0{assign.width}b}"
        else:
            text = rhs.name
            if rhs.hi is not None:
                if rhs.hi == rhs.lo:
                    text += f"[{rhs.hi}]"
                else:
                    text += f"[{rhs.hi}:{rhs.lo}]"
        parts.append(f"{lhs} = {text}")
    return "; ".join(parts)


def _block_text(keyword: str, stmts, indent: int) -> List[str]:
    pad = "    " * indent
    out = [f"{pad}{keyword} {{"]
    for stmt in stmts:
        out.append(rtl.format_stmt(stmt, indent + 1))
    out.append(pad + "}")
    return out


def _constraint_section(desc) -> List[str]:
    if not desc.constraints:
        return []
    out = ["section constraints"]
    for constraint in desc.constraints:
        out.append("    require " + _cexpr_text(constraint.expr))
    out += ["end", ""]
    return out


def _cexpr_text(expr: ast.CExpr) -> str:
    if isinstance(expr, ast.COpRef):
        return f"{expr.field}.{expr.op}"
    if isinstance(expr, ast.CNot):
        return f"~({_cexpr_text(expr.operand)})"
    if isinstance(expr, ast.CAnd):
        return f"({_cexpr_text(expr.left)} & {_cexpr_text(expr.right)})"
    if isinstance(expr, ast.COr):
        return f"({_cexpr_text(expr.left)} | {_cexpr_text(expr.right)})"
    raise TypeError(f"not a constraint expression: {expr!r}")


def _optional_section(desc) -> List[str]:
    if not desc.attributes:
        return []
    out = ["section optional"]
    for key, value in desc.attributes.items():
        out.append(f'    attribute {key} "{value}"')
    out += ["end", ""]
    return out
