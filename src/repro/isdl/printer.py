"""Pretty-printer: render a Description back to ISDL surface syntax.

The exploration loop (:mod:`repro.explore`) transforms descriptions as ASTs;
printing them back to text keeps the methodology's single-description
property — every tool consumes the same ISDL text (paper section 4.1).
The printer round-trips: ``parse(print(parse(s)))`` equals ``parse(s)``.
"""

from __future__ import annotations

from typing import List

from . import ast, rtl


def print_description(desc: ast.Description) -> str:
    """Render *desc* as ISDL text."""
    out: List[str] = [f'processor "{desc.name}"', ""]
    out += _format_section(desc)
    out += _global_section(desc)
    out += _storage_section(desc)
    out += _instruction_section(desc)
    out += _constraint_section(desc)
    out += _optional_section(desc)
    return "\n".join(out) + "\n"


def _format_section(desc) -> List[str]:
    return ["section format", f"    word {desc.word_width}", "end", ""]


def _global_section(desc) -> List[str]:
    out = ["section global_definitions"]
    for token in desc.tokens.values():
        out.append("    " + _token_text(token))
    for nt in desc.nonterminals.values():
        out += _nonterminal_text(nt)
    out += ["end", ""]
    return out


def _token_text(token: ast.TokenDef) -> str:
    if token.kind is ast.TokenKind.PREFIXED:
        return (
            f'token {token.name} prefix "{token.prefix}"'
            f" range {token.lo} .. {token.hi}"
        )
    if token.kind is ast.TokenKind.IMMEDIATE:
        sign = "signed" if token.signed else "unsigned"
        return f"token {token.name} immediate {sign} width {token.width}"
    body = ", ".join(f"{s} = {v}" for s, v in token.symbols)
    return f"token {token.name} enum {{ {body} }}"


def _nonterminal_text(nt: ast.NonTerminal) -> List[str]:
    out = [f"    nonterminal {nt.name} width {nt.width}"]
    for opt in nt.options:
        out.append(f"        option {opt.label}({_params_text(opt.params)})")
        out += _parts_text(opt, indent=3, default_cost=ast.Costs(cycle=0))
    out.append("    end")
    return out


def _params_text(params) -> str:
    return ", ".join(f"{p.name}: {p.type_name}" for p in params)


def _parts_text(item, indent: int, default_cost: ast.Costs) -> List[str]:
    pad = "    " * indent
    out: List[str] = []
    if item.syntax is not None:
        out.append(f'{pad}syntax "{item.syntax}"')
    out.append(pad + "encoding { " + _encoding_text(item.encoding) + " }")
    if item.action:
        out += _block_text("action", item.action, indent)
    if item.side_effect:
        out += _block_text("side_effect", item.side_effect, indent)
    if item.costs != default_cost:
        costs = item.costs
        out.append(
            f"{pad}cost cycle {costs.cycle} stall {costs.stall}"
            f" size {costs.size}"
        )
    if item.timing != ast.Timing():
        timing = item.timing
        out.append(f"{pad}timing latency {timing.latency} usage {timing.usage}")
    return out


def _encoding_text(encoding) -> str:
    parts = []
    for assign in encoding:
        if assign.hi == assign.lo:
            lhs = f"bits[{assign.hi}]"
        else:
            lhs = f"bits[{assign.hi}:{assign.lo}]"
        rhs = assign.rhs
        if isinstance(rhs, ast.EncConst):
            text = f"0b{rhs.value:0{assign.width}b}"
        else:
            text = rhs.name
            if rhs.hi is not None:
                if rhs.hi == rhs.lo:
                    text += f"[{rhs.hi}]"
                else:
                    text += f"[{rhs.hi}:{rhs.lo}]"
        parts.append(f"{lhs} = {text}")
    return "; ".join(parts)


def _block_text(keyword: str, stmts, indent: int) -> List[str]:
    pad = "    " * indent
    out = [f"{pad}{keyword} {{"]
    for stmt in stmts:
        out.append(rtl.format_stmt(stmt, indent + 1))
    out.append(pad + "}")
    return out


def _storage_section(desc) -> List[str]:
    out = ["section storage"]
    for storage in desc.storages.values():
        line = f"    {storage.kind.value} {storage.name} width {storage.width}"
        if storage.depth is not None:
            line += f" depth {storage.depth}"
        out.append(line)
    for alias in desc.aliases.values():
        target = alias.storage
        if alias.index is not None:
            target += f"[{alias.index}]"
        if alias.hi is not None:
            lo = alias.lo if alias.lo is not None else alias.hi
            target += f"[{alias.hi}]" if alias.hi == lo else f"[{alias.hi}:{lo}]"
        out.append(f"    alias {alias.name} = {target}")
    out += ["end", ""]
    return out


def _instruction_section(desc) -> List[str]:
    out = ["section instruction_set"]
    for fld in desc.fields:
        out.append(f"    field {fld.name}")
        for op in fld.operations:
            out.append(
                f"        operation {op.name}({_params_text(op.params)})"
            )
            out += _parts_text(op, indent=3, default_cost=ast.Costs())
        out.append("    end")
    out += ["end", ""]
    return out


def _constraint_section(desc) -> List[str]:
    if not desc.constraints:
        return []
    out = ["section constraints"]
    for constraint in desc.constraints:
        out.append("    require " + _cexpr_text(constraint.expr))
    out += ["end", ""]
    return out


def _cexpr_text(expr: ast.CExpr) -> str:
    if isinstance(expr, ast.COpRef):
        return f"{expr.field}.{expr.op}"
    if isinstance(expr, ast.CNot):
        return f"~({_cexpr_text(expr.operand)})"
    if isinstance(expr, ast.CAnd):
        return f"({_cexpr_text(expr.left)} & {_cexpr_text(expr.right)})"
    if isinstance(expr, ast.COr):
        return f"({_cexpr_text(expr.left)} | {_cexpr_text(expr.right)})"
    raise TypeError(f"not a constraint expression: {expr!r}")


def _optional_section(desc) -> List[str]:
    if not desc.attributes:
        return []
    out = ["section optional"]
    for key, value in desc.attributes.items():
        out.append(f'    attribute {key} "{value}"')
    out += ["end", ""]
    return out
