"""Semantic analysis for ISDL descriptions.

:func:`check` validates a parsed :class:`~repro.isdl.ast.Description` and
raises :class:`~repro.errors.IsdlSemanticError` on the first problem.
:func:`diagnose` runs the same checks but returns structured
:class:`~repro.analyze.diagnostics.Diagnostic` objects (stable codes,
severities, source spans) — the shape the :mod:`repro.analyze` engine and
``repro-lint`` build on.

The most important check is the paper's **Axiom 1** (section 3.3.2): every
bit of an operation signature is a function of at most one parameter.  Our
encoding AST makes each *assignment* single-parameter by construction, so the
axiom reduces to "no instruction bit is assigned twice", which is checked
here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from .. import obs
from ..analyze.diagnostics import Diagnostic, Severity
from ..errors import IsdlSemanticError
from . import ast, rtl
from .intrinsics import INTRINSICS

#: Codes for the well-formedness range (``ISDL0xx``); checks not listed
#: here report the generic :data:`CODE_SEMANTIC`.
CODE_SEMANTIC = "ISDL010"
CODE_AXIOM1 = "ISDL011"
CODE_NOT_REVERSIBLE = "ISDL012"
CODE_CROSS_FIELD_BITS = "ISDL013"
#: Constraint references to unknown operations live in the constraint
#: range and are only a warning under :func:`diagnose` — an exploration
#: transform that drops an operation may leave a dangling reference that
#: can never forbid anything, which is untidy rather than fatal.
CODE_CONSTRAINT_UNKNOWN_REF = "ISDL201"


def check(desc: ast.Description, collect: bool = False) -> List[str]:
    """Validate *desc*; raise on the first problem unless *collect*.

    .. deprecated::
        ``collect=True`` returning bare strings is a back-compat shim for
        pre-``repro.analyze`` callers; new code should call
        :func:`diagnose`, which returns structured ``Diagnostic`` objects
        with stable codes, severities and source spans.
    """
    with obs.span("isdl.check", desc=desc.name):
        checker = _Checker(desc, collect)
        checker.run()
        return [d.legacy_text() for d in checker.diagnostics]


def diagnose(desc: ast.Description) -> List[Diagnostic]:
    """Run all semantic checks, returning every problem as a Diagnostic.

    Unlike :func:`check` this never raises on description problems: it is
    the well-formedness stage of the :mod:`repro.analyze` pass pipeline,
    where an unknown constraint reference is a warning
    (:data:`CODE_CONSTRAINT_UNKNOWN_REF`) and everything else an error.
    """
    with obs.span("isdl.diagnose", desc=desc.name):
        checker = _Checker(desc, collect=True)
        checker.run()
        return checker.diagnostics


def alias_width(desc: ast.Description, alias: ast.Alias) -> int:
    """The bit width of the state slice an alias denotes."""
    storage = desc.storages[alias.storage]
    if alias.hi is not None:
        lo = alias.lo if alias.lo is not None else alias.hi
        return alias.hi - lo + 1
    return storage.width


def location_width(desc: ast.Description, name: str,
                   hi: Optional[int], lo: Optional[int]) -> int:
    """The width of a storage/alias location with optional bit range."""
    if hi is not None:
        return hi - (lo if lo is not None else hi) + 1
    if name in desc.aliases:
        return alias_width(desc, desc.aliases[name])
    return desc.storages[name].width


class _Checker:
    def __init__(self, desc: ast.Description, collect: bool):
        self.desc = desc
        self.collect = collect
        self.diagnostics: List[Diagnostic] = []

    def fail(self, message: str, location=None, *,
             code: str = CODE_SEMANTIC,
             severity: Severity = Severity.ERROR,
             where: str = "") -> None:
        diagnostic = Diagnostic(code, severity, message, where=where,
                                location=location)
        if self.collect:
            self.diagnostics.append(diagnostic)
        else:
            # Raise-mode keeps the historical fail-fast contract: any
            # problem — warning-severity included — aborts the load.
            raise IsdlSemanticError(diagnostic.legacy_text())

    # ------------------------------------------------------------------

    def run(self) -> None:
        self.check_storages()
        self.check_aliases()
        self.check_tokens()
        self.check_nonterminals()
        self.check_fields()
        self.check_constraints()
        self.check_cross_field_encoding()

    # ------------------------------------------------------------------

    def check_storages(self) -> None:
        pcs = ims = 0
        for storage in self.desc.storages.values():
            if storage.width <= 0:
                self.fail(
                    f"storage {storage.name!r} has non-positive width",
                    storage.location,
                )
            if storage.addressed and (storage.depth is None or storage.depth <= 0):
                self.fail(
                    f"storage {storage.name!r} has non-positive depth",
                    storage.location,
                )
            if storage.kind is ast.StorageKind.PROGRAM_COUNTER:
                pcs += 1
            if storage.kind is ast.StorageKind.INSTRUCTION_MEMORY:
                ims += 1
        if pcs != 1:
            self.fail(f"description needs exactly one program counter, found {pcs}")
        if ims != 1:
            self.fail(
                f"description needs exactly one instruction memory, found {ims}"
            )

    def check_aliases(self) -> None:
        for alias in self.desc.aliases.values():
            if alias.name in self.desc.storages:
                self.fail(
                    f"alias {alias.name!r} shadows a storage name",
                    alias.location,
                )
                continue
            storage = self.desc.storages.get(alias.storage)
            if storage is None:
                self.fail(
                    f"alias {alias.name!r} targets unknown storage"
                    f" {alias.storage!r}",
                    alias.location,
                )
                continue
            if storage.addressed:
                if alias.index is None:
                    self.fail(
                        f"alias {alias.name!r} of addressed storage"
                        f" {storage.name!r} needs an element index",
                        alias.location,
                    )
                elif not 0 <= alias.index < storage.depth:
                    self.fail(
                        f"alias {alias.name!r} index {alias.index} outside"
                        f" depth {storage.depth}",
                        alias.location,
                    )
            elif alias.index is not None:
                # A single [n] suffix on scalar storage is a bit select.
                alias_bit = alias.index
                if not 0 <= alias_bit < storage.width:
                    self.fail(
                        f"alias {alias.name!r} bit {alias_bit} outside width"
                        f" {storage.width}",
                        alias.location,
                    )
            if alias.hi is not None:
                lo = alias.lo if alias.lo is not None else alias.hi
                if not 0 <= lo <= alias.hi < storage.width:
                    self.fail(
                        f"alias {alias.name!r} range [{alias.hi}:{lo}] outside"
                        f" width {storage.width}",
                        alias.location,
                    )

    def check_tokens(self) -> None:
        for token in self.desc.tokens.values():
            if token.name in self.desc.nonterminals:
                self.fail(
                    f"token {token.name!r} collides with a non-terminal",
                    token.location,
                )
            if token.kind is ast.TokenKind.PREFIXED:
                if token.lo > token.hi:
                    self.fail(
                        f"token {token.name!r} has reversed range"
                        f" {token.lo}..{token.hi}",
                        token.location,
                    )
                if not token.prefix:
                    self.fail(
                        f"token {token.name!r} has an empty prefix",
                        token.location,
                    )
            elif token.kind is ast.TokenKind.IMMEDIATE:
                if token.width <= 0:
                    self.fail(
                        f"immediate token {token.name!r} has non-positive"
                        " width",
                        token.location,
                    )
            else:
                symbols = [s for s, _ in token.symbols]
                if len(symbols) != len(set(symbols)):
                    self.fail(
                        f"enum token {token.name!r} has duplicate symbols",
                        token.location,
                    )
                values = [v for _, v in token.symbols]
                if len(values) != len(set(values)):
                    self.fail(
                        f"enum token {token.name!r} has duplicate values",
                        token.location,
                    )

    # ------------------------------------------------------------------

    def check_nonterminals(self) -> None:
        for nt in self.desc.nonterminals.values():
            if nt.width <= 0:
                self.fail(
                    f"non-terminal {nt.name!r} has non-positive width",
                    nt.location,
                )
            labels = [opt.label for opt in nt.options]
            if len(labels) != len(set(labels)):
                self.fail(
                    f"non-terminal {nt.name!r} has duplicate option labels",
                    nt.location,
                )
            for opt in nt.options:
                where = f"{nt.name}.{opt.label}"
                self.check_params(opt.params, where, opt.location,
                                  allow_nonterminal=False)
                self.check_encoding(
                    opt.encoding, opt.params, nt.width, where, opt.location
                )
                self.check_rtl(opt.action, opt.params, where, in_nt=True)
                self.check_rtl(opt.side_effect, opt.params, where, in_nt=True)

    def check_fields(self) -> None:
        names = [fld.name for fld in self.desc.fields]
        if len(names) != len(set(names)):
            self.fail("duplicate field names in instruction set")
        if not self.desc.fields:
            self.fail("instruction set defines no fields")
        for fld in self.desc.fields:
            op_names = fld.operation_names
            if len(op_names) != len(set(op_names)):
                self.fail(
                    f"field {fld.name!r} has duplicate operation names",
                    fld.location,
                )
            for op in fld.operations:
                where = f"{fld.name}.{op.name}"
                self.check_params(op.params, where, op.location,
                                  allow_nonterminal=True)
                self.check_encoding(
                    op.encoding,
                    op.params,
                    self.desc.word_width,
                    where,
                    op.location,
                )
                self.check_rtl(op.action, op.params, where, in_nt=False)
                self.check_rtl(op.side_effect, op.params, where, in_nt=False)
                self.check_costs(op, where)

    def check_params(self, params, where, location, allow_nonterminal) -> None:
        names = [p.name for p in params]
        if len(names) != len(set(names)):
            self.fail(f"{where}: duplicate parameter names", location)
        for param in params:
            if param.type_name in self.desc.tokens:
                continue
            if param.type_name in self.desc.nonterminals:
                if not allow_nonterminal:
                    self.fail(
                        f"{where}: non-terminal options may not take"
                        f" non-terminal parameters ({param.name})",
                        location,
                    )
                continue
            self.fail(
                f"{where}: parameter {param.name!r} has unknown type"
                f" {param.type_name!r}",
                location,
            )

    def check_costs(self, op: ast.Operation, where: str) -> None:
        costs, timing = op.costs, op.timing
        if costs.cycle < 0 or costs.stall < 0 or costs.size < 1:
            self.fail(f"{where}: invalid costs {costs}", op.location)
        if timing.latency < 1 or timing.usage < 1:
            self.fail(f"{where}: invalid timing {timing}", op.location)

    # ------------------------------------------------------------------

    def check_encoding(self, encoding, params, width, where, location) -> None:
        param_types = {}
        for param in params:
            try:
                param_types[param.name] = self.desc.param_type(param)
            except IsdlSemanticError:
                param_types[param.name] = None
        assigned: Set[int] = set()
        covered: Dict[str, Set[int]] = {p.name: set() for p in params}
        for assign in encoding:
            if assign.hi >= width or assign.lo < 0:
                self.fail(
                    f"{where}: encoding bits [{assign.hi}:{assign.lo}] outside"
                    f" word width {width}",
                    assign.location,
                )
                continue
            bits = set(range(assign.lo, assign.hi + 1))
            overlap = assigned & bits
            if overlap:
                # Axiom 1 enforcement: one writer per instruction bit.
                self.fail(
                    f"{where}: instruction bits {sorted(overlap)} assigned"
                    " more than once (violates Axiom 1)",
                    assign.location,
                    code=CODE_AXIOM1,
                )
            assigned |= bits
            rhs = assign.rhs
            if isinstance(rhs, ast.EncConst):
                if rhs.value >= (1 << assign.width) or rhs.value < 0:
                    self.fail(
                        f"{where}: constant {rhs.value} does not fit in"
                        f" {assign.width} bits",
                        assign.location,
                    )
            elif isinstance(rhs, ast.EncParam):
                if rhs.name not in covered:
                    self.fail(
                        f"{where}: encoding references unknown parameter"
                        f" {rhs.name!r}",
                        assign.location,
                    )
                    continue
                ptype = param_types.get(rhs.name)
                value_width = self._value_width(ptype)
                hi = rhs.hi if rhs.hi is not None else value_width - 1
                lo = rhs.lo if rhs.lo is not None else 0
                if lo < 0 or hi >= value_width:
                    self.fail(
                        f"{where}: parameter slice {rhs.name}[{hi}:{lo}]"
                        f" outside value width {value_width}",
                        assign.location,
                    )
                    continue
                if hi - lo + 1 != assign.width:
                    self.fail(
                        f"{where}: bit range [{assign.hi}:{assign.lo}] and"
                        f" parameter slice {rhs.name}[{hi}:{lo}] have"
                        " different widths",
                        assign.location,
                    )
                param_bits = set(range(lo, hi + 1))
                double = covered[rhs.name] & param_bits
                if double:
                    self.fail(
                        f"{where}: parameter bits {rhs.name}{sorted(double)}"
                        " encoded more than once",
                        assign.location,
                    )
                covered[rhs.name] |= param_bits
        for param in params:
            value_width = self._value_width(param_types.get(param.name))
            missing = set(range(value_width)) - covered[param.name]
            if missing:
                self.fail(
                    f"{where}: parameter {param.name!r} bits"
                    f" {sorted(missing)} never encoded — the encoding is not"
                    " reversible",
                    location,
                    code=CODE_NOT_REVERSIBLE,
                )

    def _value_width(self, ptype) -> int:
        if isinstance(ptype, ast.TokenDef):
            return ptype.value_width
        if isinstance(ptype, ast.NonTerminal):
            return ptype.width
        return 1  # unknown type already reported; keep going

    # ------------------------------------------------------------------

    def check_rtl(self, stmts, params, where, in_nt: bool) -> None:
        param_map = {p.name: p for p in params}
        for stmt in rtl.walk_stmts(stmts):
            if isinstance(stmt, rtl.Assign):
                self.check_lvalue(stmt.dest, param_map, where, in_nt,
                                  stmt.location)
                self.check_expr(stmt.expr, param_map, where, in_nt,
                                stmt.location)
                if isinstance(stmt.dest, rtl.StorageLV) and stmt.dest.index is not None:
                    self.check_expr(stmt.dest.index, param_map, where, in_nt,
                                    stmt.location)
            elif isinstance(stmt, rtl.If):
                self.check_expr(stmt.cond, param_map, where, in_nt,
                                stmt.location)

    def check_lvalue(self, lvalue, param_map, where, in_nt, location) -> None:
        if isinstance(lvalue, rtl.NtLV):
            if not in_nt:
                self.fail(f"{where}: '$$' outside a non-terminal", location)
            return
        if isinstance(lvalue, rtl.ParamLV):
            param = param_map.get(lvalue.name)
            if param is None:
                self.fail(
                    f"{where}: unknown parameter {lvalue.name!r} as"
                    " destination",
                    location,
                )
                return
            nt = self.desc.nonterminals.get(param.type_name)
            if nt is None:
                self.fail(
                    f"{where}: parameter {lvalue.name!r} used as destination"
                    " is not a non-terminal",
                    location,
                )
                return
            opaque = [
                opt.label for opt in nt.options if opt.storage_target() is None
            ]
            if opaque:
                self.fail(
                    f"{where}: non-terminal {nt.name!r} used as destination"
                    f" but options {opaque} are not transparent"
                    " ('$$ <- location')",
                    location,
                )
            return
        if isinstance(lvalue, rtl.StorageLV):
            self.check_location(
                lvalue.storage, lvalue.index, lvalue.hi, lvalue.lo, where,
                location, writing=True,
            )
            return
        self.fail(f"{where}: invalid assignment destination", location)

    def check_expr(self, expr, param_map, where, in_nt, location) -> None:
        for node in rtl.walk_exprs(expr):
            if isinstance(node, rtl.ParamRef):
                if node.name not in param_map:
                    self.fail(
                        f"{where}: unknown parameter {node.name!r}", location
                    )
            elif isinstance(node, rtl.NtValue):
                if not in_nt:
                    self.fail(f"{where}: '$$' outside a non-terminal", location)
            elif isinstance(node, rtl.StorageRead):
                self.check_location(
                    node.storage, node.index, node.hi, node.lo, where,
                    location, writing=False,
                )
            elif isinstance(node, rtl.Call):
                intrinsic = INTRINSICS.get(node.func)
                if intrinsic is None:
                    self.fail(
                        f"{where}: unknown intrinsic {node.func!r}", location
                    )
                elif len(node.args) != intrinsic.arity:
                    self.fail(
                        f"{where}: intrinsic {node.func} takes"
                        f" {intrinsic.arity} arguments, got {len(node.args)}",
                        location,
                    )

    def check_location(self, name, index, hi, lo, where, location,
                       writing) -> None:
        storage = self.desc.storages.get(name)
        alias = self.desc.aliases.get(name)
        if storage is None and alias is None:
            self.fail(f"{where}: unknown storage {name!r}", location)
            return
        if storage is not None:
            if storage.addressed and index is None:
                self.fail(
                    f"{where}: addressed storage {name!r} accessed without"
                    " an index",
                    location,
                )
            if not storage.addressed and index is not None:
                self.fail(
                    f"{where}: scalar storage {name!r} accessed with an"
                    " index",
                    location,
                )
            width = storage.width
        else:
            if index is not None:
                self.fail(
                    f"{where}: alias {name!r} accessed with an index",
                    location,
                )
            width = alias_width(self.desc, alias)
        if hi is not None:
            effective_lo = lo if lo is not None else hi
            if not 0 <= effective_lo <= hi < width:
                self.fail(
                    f"{where}: bit range [{hi}:{effective_lo}] outside"
                    f" width {width} of {name!r}",
                    location,
                )

    # ------------------------------------------------------------------

    def check_constraints(self) -> None:
        known = {
            (fld.name, op.name) for fld, op in self.desc.operations()
        }
        for constraint in self.desc.constraints:
            for ref in ast.oprefs_in(constraint.expr):
                if (ref.field, ref.op) not in known:
                    self.fail(
                        f"constraint references unknown operation"
                        f" {ref.field}.{ref.op}",
                        constraint.location,
                        code=CODE_CONSTRAINT_UNKNOWN_REF,
                        severity=Severity.WARNING,
                    )

    def check_cross_field_encoding(self) -> None:
        """Operations in different fields must occupy disjoint word bits,
        unless a constraint already forbids their co-occurrence."""
        defined: List[Tuple[str, str, Set[int]]] = []
        for fld, op in self.desc.operations():
            bits: Set[int] = set()
            for assign in op.encoding:
                bits |= set(range(assign.lo, assign.hi + 1))
            defined.append((fld.name, op.name, bits))
        for i, (field_a, op_a, bits_a) in enumerate(defined):
            for field_b, op_b, bits_b in defined[i + 1 :]:
                if field_a == field_b:
                    continue
                overlap = bits_a & bits_b
                if not overlap:
                    continue
                selected = {field_a: op_a, field_b: op_b}
                if not self.desc.instruction_valid(selected):
                    continue  # a constraint excludes the combination
                self.fail(
                    f"operations {field_a}.{op_a} and {field_b}.{op_b} in"
                    f" different fields share instruction bits"
                    f" {sorted(overlap)} and no constraint forbids their"
                    " combination",
                    code=CODE_CROSS_FIELD_BITS,
                )
