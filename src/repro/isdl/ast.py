"""AST for ISDL machine descriptions.

An ISDL description has six sections (paper, section 2.1): *format*, *global
definitions*, *storage*, *instruction set*, *constraints*, and *optional
architectural information*.  The classes here mirror that structure:

* :class:`TokenDef` / :class:`NonTerminal` — global definitions,
* :class:`Storage` / :class:`Alias` — the processor state,
* :class:`Field` / :class:`Operation` — the instruction set, with the six
  parts of an operation definition (syntax, bitfield assignments, action,
  side effects, costs, timing),
* :class:`Constraint` — valid operation combinations,
* :class:`Description` — the whole description.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import IsdlSemanticError, SourceLocation
from . import rtl

# ---------------------------------------------------------------------------
# Global definitions: tokens and non-terminals
# ---------------------------------------------------------------------------


class TokenKind(enum.Enum):
    """The syntactic categories a token definition can take."""

    PREFIXED = "prefixed"  # e.g. register names R0..R15; value = index
    IMMEDIATE = "immediate"  # an integer literal of a given width/signedness
    ENUM = "enum"  # a finite set of symbols, each with a value


@dataclass(frozen=True)
class TokenDef:
    """A token: a syntactic element of the assembly language (paper 2.1.1).

    Tokens carry a *return value* identifying the matched alternative — the
    register index for prefixed tokens, the literal value for immediates, the
    symbol's value for enums.
    """

    name: str
    kind: TokenKind
    prefix: str = ""  # PREFIXED: the name stem ("R" for R0..R15)
    lo: int = 0  # PREFIXED: first index
    hi: int = 0  # PREFIXED: last index
    signed: bool = False  # IMMEDIATE: two's-complement?
    width: int = 0  # IMMEDIATE: bit width of the return value
    symbols: Tuple[Tuple[str, int], ...] = ()  # ENUM: (symbol, value) pairs
    location: Optional[SourceLocation] = None

    @property
    def value_width(self) -> int:
        """Number of bits needed to encode this token's return value."""
        if self.kind is TokenKind.IMMEDIATE:
            return self.width
        if self.kind is TokenKind.PREFIXED:
            span = max(self.hi, 1)
            return max(span.bit_length(), 1)
        max_value = max((v for _, v in self.symbols), default=0)
        return max(max_value.bit_length(), 1)

    def encode_value(self, value: int) -> int:
        """Return the unsigned bit pattern for a (possibly signed) value."""
        if self.kind is TokenKind.IMMEDIATE and self.signed:
            return value & ((1 << self.width) - 1)
        return value

    def decode_value(self, bits: int) -> int:
        """Invert :meth:`encode_value`."""
        if self.kind is TokenKind.IMMEDIATE and self.signed:
            if bits & (1 << (self.width - 1)):
                return bits - (1 << self.width)
        return bits

    def valid_values(self) -> range:
        """The range of legal (decoded) return values."""
        if self.kind is TokenKind.PREFIXED:
            return range(self.lo, self.hi + 1)
        if self.kind is TokenKind.IMMEDIATE:
            if self.signed:
                half = 1 << (self.width - 1)
                return range(-half, half)
            return range(0, 1 << self.width)
        values = [v for _, v in self.symbols]
        return range(min(values), max(values) + 1)


# ---------------------------------------------------------------------------
# Storage
# ---------------------------------------------------------------------------


class StorageKind(enum.Enum):
    """The storage types recognized by ISDL (paper 2.1.2)."""

    INSTRUCTION_MEMORY = "instruction_memory"
    DATA_MEMORY = "data_memory"
    REGISTER_FILE = "register_file"
    REGISTER = "register"
    CONTROL_REGISTER = "control_register"
    MEMORY_MAPPED_IO = "memory_mapped_io"
    PROGRAM_COUNTER = "program_counter"
    STACK = "stack"


#: Storage kinds that have a depth (are addressed by an index).
ADDRESSED_KINDS = frozenset(
    {
        StorageKind.INSTRUCTION_MEMORY,
        StorageKind.DATA_MEMORY,
        StorageKind.REGISTER_FILE,
        StorageKind.MEMORY_MAPPED_IO,
        StorageKind.STACK,
    }
)


@dataclass(frozen=True)
class Storage:
    """A visible storage element; sizes are width in bits (+ depth)."""

    name: str
    kind: StorageKind
    width: int
    depth: Optional[int] = None
    location: Optional[SourceLocation] = None

    @property
    def addressed(self) -> bool:
        return self.kind in ADDRESSED_KINDS


@dataclass(frozen=True)
class Alias:
    """An alternative name for an arbitrary sub-part of the state.

    ``C = CCR[0]`` gives bit 0 of CCR the name C; ``LO = ACC[15:0]`` names a
    bit range; an alias of a register-file element (``SP = RF[7]``) is also
    allowed.
    """

    name: str
    storage: str
    index: Optional[int] = None
    hi: Optional[int] = None
    lo: Optional[int] = None
    location: Optional[SourceLocation] = None


# ---------------------------------------------------------------------------
# Encodings (bitfield assignments)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EncConst:
    """A constant right-hand side of a bitfield assignment."""

    value: int


@dataclass(frozen=True)
class EncParam:
    """A parameter right-hand side: the parameter's return-value bits.

    ``hi``/``lo`` select a sub-range of the return value; ``None`` means the
    whole value.  Keeping the right-hand side this simple is what makes the
    assembly function symbolically reversible (paper Axiom 1 and 3.3.2).
    """

    name: str
    hi: Optional[int] = None
    lo: Optional[int] = None


@dataclass(frozen=True)
class BitAssign:
    """``bits[hi:lo] = rhs`` — sets instruction-word (or NT return) bits."""

    hi: int
    lo: int
    rhs: object  # EncConst | EncParam
    location: Optional[SourceLocation] = None

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1


# ---------------------------------------------------------------------------
# Operations, non-terminals, fields
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """A formal parameter of an operation or non-terminal option."""

    name: str
    type_name: str  # a token or non-terminal name


@dataclass(frozen=True)
class Costs:
    """Operation costs (paper 2.1.3, part 5)."""

    cycle: int = 1  # cycles taken in the absence of stalls
    stall: int = 0  # extra cycles during a pipeline stall
    size: int = 1  # instruction words occupied


@dataclass(frozen=True)
class Timing:
    """Operation timing (paper 2.1.3, part 6)."""

    latency: int = 1  # cycles until results become available
    usage: int = 1  # cycles until the functional unit is free again


@dataclass(frozen=True)
class NtOption:
    """One option of a non-terminal — same six parts as an operation.

    Options are unnamed in ISDL proper; we give each a label for reporting.
    The ``encoding`` assigns the non-terminal's *return value* bits.
    """

    label: str
    params: Tuple[Param, ...]
    syntax: Optional[str]  # template with %param placeholders; None = default
    encoding: Tuple[BitAssign, ...]
    action: Tuple[rtl.Stmt, ...]
    side_effect: Tuple[rtl.Stmt, ...] = ()
    costs: Costs = Costs(cycle=0)
    timing: Timing = Timing()
    location: Optional[SourceLocation] = None

    def storage_target(self) -> Optional[rtl.StorageLV]:
        """If this option is *transparent* (action is ``$$ <- location``),
        return that location so the option can be used as a destination."""
        if len(self.action) != 1:
            return None
        stmt = self.action[0]
        if not isinstance(stmt, rtl.Assign):
            return None
        if not isinstance(stmt.dest, rtl.NtLV):
            return None
        expr = stmt.expr
        if isinstance(expr, rtl.StorageRead):
            return rtl.StorageLV(expr.storage, expr.index, expr.hi, expr.lo)
        return None


@dataclass(frozen=True)
class NonTerminal:
    """A non-terminal abstracting a common pattern (e.g. addressing modes).

    The return value behaves like a binary instruction of fixed width
    ``width`` (the paper allows varying width; a fixed per-NT width keeps
    signatures rectangular without losing generality — pad short options
    with constants).
    """

    name: str
    width: int
    options: Tuple[NtOption, ...]
    location: Optional[SourceLocation] = None

    def option(self, label: str) -> NtOption:
        for opt in self.options:
            if opt.label == label:
                return opt
        raise KeyError(label)


@dataclass(frozen=True)
class Operation:
    """An operation definition — the six parts of paper section 2.1.3."""

    name: str
    params: Tuple[Param, ...]
    syntax: Optional[str]  # assembly template; None = "name p1, p2, ..."
    encoding: Tuple[BitAssign, ...]
    action: Tuple[rtl.Stmt, ...]
    side_effect: Tuple[rtl.Stmt, ...] = ()
    costs: Costs = Costs()
    timing: Timing = Timing()
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class Field:
    """A field: the mutually-exclusive operations of one functional unit."""

    name: str
    operations: Tuple[Operation, ...]
    location: Optional[SourceLocation] = None

    def operation(self, name: str) -> Operation:
        for op in self.operations:
            if op.name == name:
                return op
        raise KeyError(name)

    @property
    def operation_names(self) -> List[str]:
        return [op.name for op in self.operations]


# ---------------------------------------------------------------------------
# Constraints
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CExpr:
    """Base class for constraint expressions."""


@dataclass(frozen=True)
class COpRef(CExpr):
    """References an operation: true when ``field.op`` is in the instruction."""

    field: str
    op: str


@dataclass(frozen=True)
class CNot(CExpr):
    operand: CExpr


@dataclass(frozen=True)
class CAnd(CExpr):
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class COr(CExpr):
    left: CExpr
    right: CExpr


@dataclass(frozen=True)
class Constraint:
    """A condition every valid instruction must satisfy (paper 2.1.4).

    The surface syntax ``forbid <expr>`` denotes the constraint ``~<expr>``;
    ``require <expr>`` denotes ``<expr>`` directly.
    """

    expr: CExpr
    text: str = ""
    location: Optional[SourceLocation] = None


def evaluate_constraint(expr: CExpr, selected: Dict[str, str]) -> bool:
    """Evaluate a constraint expression against a field→operation choice."""
    if isinstance(expr, COpRef):
        return selected.get(expr.field) == expr.op
    if isinstance(expr, CNot):
        return not evaluate_constraint(expr.operand, selected)
    if isinstance(expr, CAnd):
        return evaluate_constraint(expr.left, selected) and evaluate_constraint(
            expr.right, selected
        )
    if isinstance(expr, COr):
        return evaluate_constraint(expr.left, selected) or evaluate_constraint(
            expr.right, selected
        )
    raise TypeError(f"not a constraint expression: {expr!r}")


def oprefs_in(expr: CExpr):
    """Yield every :class:`COpRef` in a constraint expression."""
    if isinstance(expr, COpRef):
        yield expr
    elif isinstance(expr, CNot):
        yield from oprefs_in(expr.operand)
    elif isinstance(expr, (CAnd, COr)):
        yield from oprefs_in(expr.left)
        yield from oprefs_in(expr.right)


# ---------------------------------------------------------------------------
# The description
# ---------------------------------------------------------------------------


@dataclass
class Description:
    """A complete ISDL machine description."""

    name: str
    word_width: int
    tokens: Dict[str, TokenDef] = field(default_factory=dict)
    nonterminals: Dict[str, NonTerminal] = field(default_factory=dict)
    storages: Dict[str, Storage] = field(default_factory=dict)
    aliases: Dict[str, Alias] = field(default_factory=dict)
    fields: List[Field] = field(default_factory=list)
    constraints: List[Constraint] = field(default_factory=list)
    attributes: Dict[str, str] = field(default_factory=dict)

    # -- lookups ----------------------------------------------------------

    def field_named(self, name: str) -> Field:
        for fld in self.fields:
            if fld.name == name:
                return fld
        raise KeyError(name)

    def operations(self):
        """Yield ``(field, operation)`` pairs over the whole instruction set."""
        for fld in self.fields:
            for op in fld.operations:
                yield fld, op

    def operation(self, field_name: str, op_name: str) -> Operation:
        return self.field_named(field_name).operation(op_name)

    def param_type(self, param: Param):
        """Resolve a parameter's type to its TokenDef or NonTerminal."""
        if param.type_name in self.tokens:
            return self.tokens[param.type_name]
        if param.type_name in self.nonterminals:
            return self.nonterminals[param.type_name]
        raise IsdlSemanticError(
            f"unknown parameter type {param.type_name!r} for parameter"
            f" {param.name!r}"
        )

    def resolve_alias(self, name: str) -> Optional[Alias]:
        return self.aliases.get(name)

    def storage_or_alias(self, name: str) -> Storage:
        """Return the storage behind *name*, following one alias level."""
        if name in self.storages:
            return self.storages[name]
        alias = self.aliases.get(name)
        if alias is not None:
            return self.storages[alias.storage]
        raise KeyError(name)

    def program_counter(self) -> Storage:
        """Return the (unique) program-counter storage."""
        for storage in self.storages.values():
            if storage.kind is StorageKind.PROGRAM_COUNTER:
                return storage
        raise IsdlSemanticError(f"description {self.name!r} defines no program counter")

    def instruction_memory(self) -> Storage:
        """Return the (unique) instruction-memory storage."""
        for storage in self.storages.values():
            if storage.kind is StorageKind.INSTRUCTION_MEMORY:
                return storage
        raise IsdlSemanticError(
            f"description {self.name!r} defines no instruction memory"
        )

    # -- instruction-level helpers ----------------------------------------

    def instruction_valid(self, selected: Dict[str, str]) -> bool:
        """True iff the field→operation choice satisfies every constraint."""
        return all(
            evaluate_constraint(c.expr, selected) for c in self.constraints
        )

    def violated_constraints(self, selected: Dict[str, str]) -> List[Constraint]:
        """The constraints an instruction violates (empty = valid)."""
        return [
            c
            for c in self.constraints
            if not evaluate_constraint(c.expr, selected)
        ]


def default_syntax(name: str, params: Sequence[Param]) -> str:
    """The default assembly syntax template for an operation or option."""
    if not params:
        return name
    placeholders = ", ".join(f"%{p.name}" for p in params)
    return f"{name} {placeholders}"
