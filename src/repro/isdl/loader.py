"""Convenience entry points for loading ISDL descriptions."""

from __future__ import annotations

import os

from . import ast, parser, semantics


def load_string(source: str, filename: str = "<isdl>",
                validate: bool = True) -> ast.Description:
    """Parse (and by default semantically check) an ISDL description."""
    desc = parser.parse(source, filename)
    if validate:
        semantics.check(desc)
    return desc


def load_file(path: str, validate: bool = True) -> ast.Description:
    """Load an ISDL description from a file."""
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return load_string(source, filename=os.fspath(path), validate=validate)
