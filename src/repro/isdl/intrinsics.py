"""The RTL intrinsic function set shared by GENSIM and HGEN.

Each intrinsic has a fixed arity and a *unit class* used by the HGEN
resource-sharing rules ("nodes performing different tasks cannot be shared";
paper rule 2).  Floating-point intrinsics map to macro cells in the
technology library rather than synthesized gate logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class Intrinsic:
    """Metadata for one RTL intrinsic function."""

    name: str
    arity: int
    unit_class: str  # functional-unit class for resource sharing
    is_macro: bool = False  # True for technology-library macro cells


_DEFS = [
    # flag helpers: carry/borrow/overflow of a width-w add or subtract
    Intrinsic("carry", 3, "adder"),
    Intrinsic("carryc", 4, "adder"),  # carry with carry-in
    Intrinsic("borrow", 3, "adder"),
    Intrinsic("overflow", 3, "adder"),
    # width manipulation — wiring only, no functional unit
    Intrinsic("sext", 2, "wire"),
    Intrinsic("zext", 2, "wire"),
    Intrinsic("bit", 2, "wire"),
    Intrinsic("slice", 3, "wire"),
    # small integer helpers
    Intrinsic("abs", 1, "adder"),
    Intrinsic("min", 2, "comparator"),
    Intrinsic("max", 2, "comparator"),
    # IEEE-754 single-precision macro operations (SPAM datapath)
    Intrinsic("fadd", 2, "fp_adder", is_macro=True),
    Intrinsic("fsub", 2, "fp_adder", is_macro=True),
    Intrinsic("fmul", 2, "fp_multiplier", is_macro=True),
    Intrinsic("fdiv", 2, "fp_divider", is_macro=True),
    Intrinsic("fneg", 1, "wire"),
    Intrinsic("fabs", 1, "wire"),
    Intrinsic("fcmp", 2, "fp_comparator", is_macro=True),
    Intrinsic("itof", 2, "fp_converter", is_macro=True),
    Intrinsic("ftoi", 2, "fp_converter", is_macro=True),
]

INTRINSICS: Dict[str, Intrinsic] = {d.name: d for d in _DEFS}
