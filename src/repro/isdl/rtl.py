"""AST for the RTL mini-language used in ISDL actions and side effects.

ISDL describes the effect of every operation (and of every non-terminal
option) as a set of RTL-type statements that transform the processor state
(paper, section 2.1.3).  This module defines the expression and statement
nodes those RTL blocks parse into.  The same AST is consumed by:

* the GENSIM processing-core generator (``repro.gensim.core``), which
  translates each block into an executable routine, and
* the HGEN node extractor (``repro.hgen.nodes``), which decomposes each block
  into hardware nodes for resource sharing.

Values are modelled as Python integers.  Storage reads produce non-negative
integers of the storage's width; ``sext`` produces (possibly negative) signed
values; every write is masked to the destination width.  This gives bit-true
behaviour without tracking widths on every intermediate node.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple, Union

from ..errors import SourceLocation

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for RTL expressions."""


@dataclass(frozen=True)
class IntLit(Expr):
    """An integer literal."""

    value: int


@dataclass(frozen=True)
class ParamRef(Expr):
    """A reference to an operation/non-terminal parameter by name.

    For a token parameter this evaluates to the token's return value (e.g.
    the register index).  For a non-terminal parameter it evaluates to the
    value computed by the matched option's action (the option's ``$$``).
    """

    name: str


@dataclass(frozen=True)
class NtValue(Expr):
    """``$$`` used as an expression inside a non-terminal option."""


@dataclass(frozen=True)
class StorageRead(Expr):
    """A read of processor state: ``RF[i]``, ``ACC``, ``CCR[3:1]`` ...

    ``index`` is present for addressed storage (register files, memories),
    ``hi``/``lo`` select a bit range of the element when given.
    """

    storage: str
    index: Optional[Expr] = None
    hi: Optional[int] = None
    lo: Optional[int] = None


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operator.

    ``op`` is one of ``+ - * / % & | ^ << >> == != < <= > >= && ||``.
    Division and modulus truncate toward zero on signed values (matching the
    behaviour of hardware divider blocks).
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnOp(Expr):
    """A unary operator: ``~`` (bitwise not), ``-`` (negate), ``!`` (lnot)."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Cond(Expr):
    """The ternary conditional ``c ? a : b``."""

    cond: Expr
    then: Expr
    other: Expr


@dataclass(frozen=True)
class Call(Expr):
    """An intrinsic function call.

    The intrinsic set (see ``repro.gensim.core.INTRINSICS``) covers flag
    computation (``carry``, ``borrow``, ``overflow``), width manipulation
    (``sext``, ``zext``, ``bit``, ``slice``), and the floating-point macro
    operations of the SPAM datapath (``fadd`` .. ``ftoi``).
    """

    func: str
    args: Tuple[Expr, ...]


# ---------------------------------------------------------------------------
# L-values
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LValue:
    """Base class for assignment destinations."""


@dataclass(frozen=True)
class StorageLV(LValue):
    """A writable storage location, optionally indexed / bit-sliced."""

    storage: str
    index: Optional[Expr] = None
    hi: Optional[int] = None
    lo: Optional[int] = None


@dataclass(frozen=True)
class NtLV(LValue):
    """``$$`` as an assignment destination inside a non-terminal option."""


@dataclass(frozen=True)
class ParamLV(LValue):
    """A non-terminal parameter used as a destination (addressing NT).

    Writing through the parameter writes the storage location denoted by the
    matched option, which must be *transparent*: its action is a single
    ``$$ <- <storage location>`` statement.
    """

    name: str


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Stmt:
    """Base class for RTL statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``dest <- expr``"""

    dest: LValue
    expr: Expr
    location: Optional[SourceLocation] = None


@dataclass(frozen=True)
class If(Stmt):
    """``if cond { ... } else { ... }`` — the else branch may be empty."""

    cond: Expr
    then: Tuple[Stmt, ...] = field(default_factory=tuple)
    orelse: Tuple[Stmt, ...] = field(default_factory=tuple)
    location: Optional[SourceLocation] = None


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_exprs(node: Union[Expr, Stmt, LValue]):
    """Yield every :class:`Expr` reachable from *node* (pre-order)."""
    if isinstance(node, Expr):
        yield node
    for child in _children(node):
        yield from walk_exprs(child)


def _children(node):
    if isinstance(node, (IntLit, ParamRef, NtValue)):
        return ()
    if isinstance(node, StorageRead):
        return (node.index,) if node.index is not None else ()
    if isinstance(node, BinOp):
        return (node.left, node.right)
    if isinstance(node, UnOp):
        return (node.operand,)
    if isinstance(node, Cond):
        return (node.cond, node.then, node.other)
    if isinstance(node, Call):
        return node.args
    if isinstance(node, StorageLV):
        return (node.index,) if node.index is not None else ()
    if isinstance(node, (NtLV, ParamLV)):
        return ()
    if isinstance(node, Assign):
        return (node.dest, node.expr)
    if isinstance(node, If):
        return (node.cond,) + node.then + node.orelse
    raise TypeError(f"not an RTL node: {node!r}")


def walk_stmts(stmts):
    """Yield every :class:`Stmt` in *stmts*, recursing into ``if`` bodies."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then)
            yield from walk_stmts(stmt.orelse)


def storages_read(stmts):
    """Return the set of storage names read anywhere in *stmts*."""
    names = set()
    for stmt in walk_stmts(stmts):
        roots = [stmt.expr] if isinstance(stmt, Assign) else [stmt.cond]
        if isinstance(stmt, Assign) and isinstance(stmt.dest, StorageLV):
            if stmt.dest.index is not None:
                roots.append(stmt.dest.index)
        for root in roots:
            for expr in walk_exprs(root):
                if isinstance(expr, StorageRead):
                    names.add(expr.storage)
    return names


def storages_written(stmts):
    """Return the set of storage names written anywhere in *stmts*."""
    names = set()
    for stmt in walk_stmts(stmts):
        if isinstance(stmt, Assign) and isinstance(stmt.dest, StorageLV):
            names.add(stmt.dest.storage)
    return names


def params_used(stmts):
    """Return the set of parameter names referenced anywhere in *stmts*."""
    names = set()
    for stmt in walk_stmts(stmts):
        for expr in walk_exprs(stmt):
            if isinstance(expr, ParamRef):
                names.add(expr.name)
        if isinstance(stmt, Assign) and isinstance(stmt.dest, ParamLV):
            names.add(stmt.dest.name)
    return names


def _trunc_div(a: int, b: int) -> int:
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def try_const_eval(expr, env=None, *, reads=None, intrinsics=None):
    """Evaluate *expr* to an ``int`` when every input is statically known.

    Returns ``None`` whenever any sub-expression cannot be resolved — an
    unbound parameter, a storage read without a *reads* oracle, an
    intrinsic without an implementation, or a division by a zero
    constant.  The arithmetic matches the simulators bit for bit
    (truncating division/modulus, 0/1 booleans, lazy ``?:``), so a
    non-``None`` result is exactly what any backend would compute.

    *env* maps parameter names to values; *reads* is an optional callable
    ``StorageRead -> Optional[int]`` supplying storage contents (e.g. a
    constant-propagation environment, or a burned program counter);
    *intrinsics* maps intrinsic names to implementations (callers pass
    :data:`repro.gensim.core.INTRINSIC_IMPLS` to cover ``sext`` & co.).
    """
    if isinstance(expr, IntLit):
        return expr.value
    if isinstance(expr, ParamRef):
        if env is not None and expr.name in env:
            value = env[expr.name]
            return value if isinstance(value, int) else None
        return None
    if isinstance(expr, StorageRead):
        if reads is None:
            return None
        base = reads(expr)
        if base is None:
            return None
        if expr.hi is None:
            return base
        lo = expr.lo if expr.lo is not None else expr.hi
        return (base >> lo) & ((1 << (expr.hi - lo + 1)) - 1)
    if isinstance(expr, BinOp):
        left = try_const_eval(expr.left, env, reads=reads,
                              intrinsics=intrinsics)
        right = try_const_eval(expr.right, env, reads=reads,
                               intrinsics=intrinsics)
        if left is None or right is None:
            return None
        op = expr.op
        if op == "&&":
            return 1 if left and right else 0
        if op == "||":
            return 1 if left or right else 0
        if op in ("/", "%"):
            if right == 0:
                return None
            quotient = _trunc_div(left, right)
            return quotient if op == "/" else left - quotient * right
        if op in ("==", "!=", "<", "<=", ">", ">="):
            table = {
                "==": left == right, "!=": left != right,
                "<": left < right, "<=": left <= right,
                ">": left > right, ">=": left >= right,
            }
            return 1 if table[op] else 0
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<<":
            return left << right if right >= 0 else None
        if op == ">>":
            return left >> right if right >= 0 else None
        return None
    if isinstance(expr, UnOp):
        operand = try_const_eval(expr.operand, env, reads=reads,
                                 intrinsics=intrinsics)
        if operand is None:
            return None
        if expr.op == "~":
            return ~operand
        if expr.op == "-":
            return -operand
        return 0 if operand else 1
    if isinstance(expr, Cond):
        cond = try_const_eval(expr.cond, env, reads=reads,
                              intrinsics=intrinsics)
        if cond is None:
            return None
        taken = expr.then if cond else expr.other
        return try_const_eval(taken, env, reads=reads, intrinsics=intrinsics)
    if isinstance(expr, Call):
        if intrinsics is None or expr.func not in intrinsics:
            return None
        args = []
        for arg in expr.args:
            value = try_const_eval(arg, env, reads=reads,
                                   intrinsics=intrinsics)
            if value is None:
                return None
            args.append(value)
        try:
            return intrinsics[expr.func](*args)
        except Exception:
            return None
    return None


def format_expr(expr: Expr) -> str:
    """Render an expression back to ISDL RTL surface syntax."""
    if isinstance(expr, IntLit):
        return str(expr.value)
    if isinstance(expr, ParamRef):
        return expr.name
    if isinstance(expr, NtValue):
        return "$$"
    if isinstance(expr, StorageRead):
        return _format_location(expr.storage, expr.index, expr.hi, expr.lo)
    if isinstance(expr, BinOp):
        return f"({format_expr(expr.left)} {expr.op} {format_expr(expr.right)})"
    if isinstance(expr, UnOp):
        return f"({expr.op}{format_expr(expr.operand)})"
    if isinstance(expr, Cond):
        return (
            f"({format_expr(expr.cond)} ? {format_expr(expr.then)}"
            f" : {format_expr(expr.other)})"
        )
    if isinstance(expr, Call):
        args = ", ".join(format_expr(a) for a in expr.args)
        return f"{expr.func}({args})"
    raise TypeError(f"not an expression: {expr!r}")


def format_lvalue(lvalue: LValue) -> str:
    """Render an l-value back to ISDL RTL surface syntax."""
    if isinstance(lvalue, StorageLV):
        return _format_location(lvalue.storage, lvalue.index, lvalue.hi, lvalue.lo)
    if isinstance(lvalue, NtLV):
        return "$$"
    if isinstance(lvalue, ParamLV):
        return lvalue.name
    raise TypeError(f"not an l-value: {lvalue!r}")


def _format_location(storage, index, hi, lo):
    text = storage
    if index is not None:
        text += f"[{format_expr(index)}]"
    if hi is not None:
        text += f"[{hi}]" if hi == lo else f"[{hi}:{lo}]"
    return text


def format_stmt(stmt: Stmt, indent: int = 0) -> str:
    """Render a statement back to ISDL RTL surface syntax."""
    pad = "    " * indent
    if isinstance(stmt, Assign):
        return f"{pad}{format_lvalue(stmt.dest)} <- {format_expr(stmt.expr)};"
    if isinstance(stmt, If):
        lines = [f"{pad}if {format_expr(stmt.cond)} {{"]
        lines += [format_stmt(s, indent + 1) for s in stmt.then]
        if stmt.orelse:
            lines.append(f"{pad}}} else {{")
            lines += [format_stmt(s, indent + 1) for s in stmt.orelse]
        lines.append(pad + "}")
        return "\n".join(lines)
    raise TypeError(f"not a statement: {stmt!r}")
