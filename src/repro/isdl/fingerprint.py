"""Structural fingerprints for ISDL descriptions.

The exploration engine memoizes generated artifacts (signature tables,
simulator cores, assembled binaries, synthesized hardware models) by the
*content* of the machine description that produced them.  The fingerprint is
the SHA-256 of the canonical pretty-printed text: the printer is a pure
function of the AST and round-trips through the parser
(``parse(print(parse(s))) == parse(s)``), so two descriptions that denote
the same machine hash identically regardless of how they were constructed —
parsed from a file, built by :mod:`repro.arch`, or derived by an
exploration transform.
"""

from __future__ import annotations

import hashlib

from . import ast
from .printer import print_description


def fingerprint_text(text: str) -> str:
    """SHA-256 hex digest of canonical ISDL text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint(desc: ast.Description) -> str:
    """Stable structural fingerprint of a description.

    Any change that alters the printed ISDL document — an operation added
    or dropped, a cost or timing annotation, a storage resized — changes
    the fingerprint; descriptions that print identically share one.
    """
    return fingerprint_text(print_description(desc))
