"""Structural fingerprints for ISDL descriptions.

The exploration engine memoizes generated artifacts (signature tables,
simulator cores, assembled binaries, synthesized hardware models) by the
*content* of the machine description that produced them.  The fingerprint is
the SHA-256 of the canonical pretty-printed text: the printer is a pure
function of the AST and round-trips through the parser
(``parse(print(parse(s))) == parse(s)``), so two descriptions that denote
the same machine hash identically regardless of how they were constructed —
parsed from a file, built by :mod:`repro.arch`, or derived by an
exploration transform.

Beyond the whole-document digest (the *root*, which remains the identity
key for cache lookups, serve coalescing, and cluster routing), this module
computes a fingerprint *tree*: one digest per description unit — each
token, non-terminal, storage, alias, and operation, plus the format,
constraint, and attribute sections — taken over the canonical printer's
per-unit fragments.  Two trees diff in one dictionary pass
(:func:`fingerprint_delta`), naming exactly which units a mutation
touched; the delta's predicates are what the incremental builders
(signature-table row carry-over, simulator-core routine adoption,
hardware-synthesis sharing reuse) key their reuse decisions on.

Fingerprints and trees are memoized per AST object: exploration
transforms are functional (they never mutate a description in place, and
untouched sub-objects keep their identity), so a ``Description`` object's
canonical text is immutable for its lifetime.  Callers that mutate a
description in place must treat it as a *new* object (copy it) or the
memo will serve stale digests.
"""

from __future__ import annotations

import hashlib
import weakref
from dataclasses import dataclass
from typing import Dict, FrozenSet, Mapping, Tuple, Union

from . import ast
from .printer import description_units, operation_lines


def fingerprint_text(text: str) -> str:
    """SHA-256 hex digest of canonical ISDL text."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class FingerprintTree:
    """Root digest plus per-unit digests of one description.

    Unit digests hash the unit's canonical text fragment alone, so they
    are position-independent: an operation that moves (because a sibling
    was dropped) keeps its digest.  The root is always the digest of the
    *full* document — never derived from the unit digests — so it stays
    byte-identical to the historical ``fingerprint()`` and to what remote
    peers compute from the wire text.
    """

    root: str
    header: str
    format: str
    tokens: Mapping[str, str]
    nonterminals: Mapping[str, str]
    storages: Mapping[str, str]
    aliases: Mapping[str, str]
    operations: Mapping[Tuple[str, str], str]
    fields: Tuple[str, ...]
    constraints: str
    attributes: str

    @property
    def op_order(self) -> Tuple[Tuple[str, str], ...]:
        """(field, op) pairs in document order."""
        return tuple(self.operations.keys())


_EMPTY = fingerprint_text("")

# Identity-keyed memo: id(obj) -> (weakref to obj, cached value).  The
# weakref callback evicts the entry when the object dies, so a recycled
# id() can never alias a stale digest; the ``ref() is obj`` check guards
# the (impossible under CPython, but cheap to exclude) race where the
# entry outlives its object.
_TREE_MEMO: Dict[int, Tuple["weakref.ref", FingerprintTree]] = {}
_UNIT_MEMO: Dict[int, Tuple["weakref.ref", str]] = {}


def clear_fingerprint_memo() -> None:
    """Drop all memoized trees and unit digests (test isolation hook)."""
    _TREE_MEMO.clear()
    _UNIT_MEMO.clear()


def _memoized(memo, obj, build):
    key = id(obj)
    entry = memo.get(key)
    if entry is not None:
        ref, value = entry
        if ref() is obj:
            return value
    value = build(obj)
    try:
        ref = weakref.ref(obj, lambda _r, _k=key: memo.pop(_k, None))
    except TypeError:
        return value  # not weakref-able: compute without caching
    memo[key] = (ref, value)
    return value


def _build_tree(desc: ast.Description) -> FingerprintTree:
    header = _EMPTY
    fmt = _EMPTY
    tokens: Dict[str, str] = {}
    nonterminals: Dict[str, str] = {}
    storages: Dict[str, str] = {}
    aliases: Dict[str, str] = {}
    operations: Dict[Tuple[str, str], str] = {}
    fields = []
    constraints = _EMPTY
    attributes = _EMPTY
    doc_lines = []
    for kind, key, lines in description_units(desc):
        doc_lines += lines
        if kind == "frame":
            continue
        digest = fingerprint_text("\n".join(lines))
        if kind == "header":
            header = digest
        elif kind == "format":
            fmt = digest
        elif kind == "token":
            tokens[key] = digest
        elif kind == "nonterminal":
            nonterminals[key] = digest
        elif kind == "storage":
            storages[key] = digest
        elif kind == "alias":
            aliases[key] = digest
        elif kind == "field":
            fields.append(key)
        elif kind == "operation":
            operations[key] = digest
        elif kind == "constraints":
            constraints = digest
        elif kind == "attributes":
            attributes = digest
    return FingerprintTree(
        root=fingerprint_text("\n".join(doc_lines) + "\n"),
        header=header,
        format=fmt,
        tokens=tokens,
        nonterminals=nonterminals,
        storages=storages,
        aliases=aliases,
        operations=operations,
        fields=tuple(fields),
        constraints=constraints,
        attributes=attributes,
    )


def fingerprint_tree(desc: ast.Description) -> FingerprintTree:
    """The fingerprint tree of *desc*, memoized per AST object."""
    return _memoized(_TREE_MEMO, desc, _build_tree)


def fingerprint(desc: ast.Description) -> str:
    """Stable structural fingerprint of a description.

    Any change that alters the printed ISDL document — an operation added
    or dropped, a cost or timing annotation, a storage resized — changes
    the fingerprint; descriptions that print identically share one.
    Memoized per AST object (transforms are functional, so an object's
    canonical text never changes).
    """
    return fingerprint_tree(desc).root


def unit_fingerprint(op: ast.Operation) -> str:
    """Digest of one operation's canonical definition, memoized per object.

    Matches the entry the operation would have in any tree's
    ``operations`` mapping: the fragment is position-independent, so the
    digest identifies the definition's *content* across descriptions.
    """
    return _memoized(
        _UNIT_MEMO, op, lambda o: fingerprint_text("\n".join(operation_lines(o)))
    )


@dataclass(frozen=True)
class FingerprintDelta:
    """Which units differ between a parent and a child description.

    ``*_changed`` name sets list every unit *touched* — changed in place,
    added, or removed.  Operations are split three ways because the
    reuse predicates treat them differently (a removed operation's rows
    simply vanish; an added one only needs fresh rows).  The predicates
    are deliberately conservative: they answer "is reuse *provably*
    sound", never "is reuse probably fine".
    """

    parent_root: str
    child_root: str
    header_changed: bool
    format_changed: bool
    fields_changed: bool
    tokens_changed: FrozenSet[str]
    nonterminals_changed: FrozenSet[str]
    storages_changed: FrozenSet[str]
    aliases_changed: FrozenSet[str]
    constraints_changed: bool
    attributes_changed: bool
    changed_ops: FrozenSet[Tuple[str, str]]
    added_ops: FrozenSet[Tuple[str, str]]
    removed_ops: FrozenSet[Tuple[str, str]]
    op_order_changed: bool

    @property
    def identical(self) -> bool:
        return self.parent_root == self.child_root

    def op_unchanged(self, field_name: str, op_name: str) -> bool:
        """True when (field, op) exists in both with an identical digest."""
        key = (field_name, op_name)
        return (
            key not in self.changed_ops
            and key not in self.added_ops
            and key not in self.removed_ops
        )

    @property
    def touched_ops(self) -> FrozenSet[Tuple[str, str]]:
        return self.changed_ops | self.added_ops | self.removed_ops

    @property
    def instruction_set_unchanged(self) -> bool:
        """Same operations, same definitions, same document order."""
        return (
            not self.touched_ops
            and not self.op_order_changed
            and not self.fields_changed
        )

    @property
    def global_env_unchanged(self) -> bool:
        """Word format, tokens, and non-terminals all identical.

        The environment every encoding/decoding artifact reads: signature
        rows, decoders, and compiled simulator routines of an *unchanged*
        operation are identical when this holds.
        """
        return (
            not self.format_changed
            and not self.tokens_changed
            and not self.nonterminals_changed
        )

    @property
    def storage_env_unchanged(self) -> bool:
        """Storages and aliases identical (widths, depths, targets)."""
        return not self.storages_changed and not self.aliases_changed

    @property
    def sim_env_unchanged(self) -> bool:
        """Everything a simulator bakes in besides the operations."""
        return (
            self.global_env_unchanged
            and self.storage_env_unchanged
            and not self.fields_changed
            and not self.attributes_changed
        )

    @property
    def assembly_reusable(self) -> bool:
        """The compiler would provably emit the parent's binary again.

        The compiler reads the whole instruction set (selection), the
        storages (register allocation), and the constraints (bundling),
        so only a header/attribute-level change leaves its output
        untouched by construction.
        """
        return (
            self.instruction_set_unchanged
            and self.global_env_unchanged
            and self.storage_env_unchanged
            and not self.constraints_changed
        )


def _diff_names(parent: Mapping, child: Mapping) -> FrozenSet:
    touched = set(parent.keys() ^ child.keys())
    touched.update(
        k for k in parent.keys() & child.keys() if parent[k] != child[k]
    )
    return frozenset(touched)


def fingerprint_delta(
    parent: Union[ast.Description, FingerprintTree],
    child: Union[ast.Description, FingerprintTree],
) -> FingerprintDelta:
    """Structural diff between two descriptions' fingerprint trees."""
    pt = parent if isinstance(parent, FingerprintTree) else fingerprint_tree(parent)
    ct = child if isinstance(child, FingerprintTree) else fingerprint_tree(child)
    pops, cops = pt.operations, ct.operations
    common = pops.keys() & cops.keys()
    changed = frozenset(k for k in common if pops[k] != cops[k])
    surviving = [k for k in pt.op_order if k in cops]
    child_surviving = [k for k in ct.op_order if k in pops]
    return FingerprintDelta(
        parent_root=pt.root,
        child_root=ct.root,
        header_changed=pt.header != ct.header,
        format_changed=pt.format != ct.format,
        fields_changed=pt.fields != ct.fields,
        tokens_changed=_diff_names(pt.tokens, ct.tokens),
        nonterminals_changed=_diff_names(pt.nonterminals, ct.nonterminals),
        storages_changed=_diff_names(pt.storages, ct.storages),
        aliases_changed=_diff_names(pt.aliases, ct.aliases),
        constraints_changed=pt.constraints != ct.constraints,
        attributes_changed=pt.attributes != ct.attributes,
        changed_ops=changed,
        added_ops=frozenset(cops.keys() - pops.keys()),
        removed_ops=frozenset(pops.keys() - cops.keys()),
        op_order_changed=surviving != child_surviving,
    )
