"""Tokenizer for the ISDL concrete syntax.

The lexer is deliberately simple: identifiers, integer literals (decimal,
``0x`` hex, ``0b`` binary), double-quoted strings, and a fixed set of
punctuation/operator lexemes.  Keywords are not reserved — the parser matches
identifier *values* contextually, which keeps names like ``field`` usable as
storage names.

Comments run from ``#`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import IsdlSyntaxError, SourceLocation

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = [
    "<<",
    ">>",
    "<-",
    "==",
    "!=",
    "<=",
    ">=",
    "&&",
    "||",
    "$$",
    "..",
    "<",
    ">",
    "=",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ":",
    ";",
    ",",
    ".",
    "?",
    "|",
    "&",
    "~",
    "^",
    "+",
    "-",
    "*",
    "/",
    "%",
    "!",
    "@",
]


@dataclass(frozen=True)
class Token:
    """A lexical token: ``kind`` is ID, INT, STRING, OP, or EOF."""

    kind: str
    value: object
    text: str
    location: SourceLocation

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.location})"


def tokenize(source: str, filename: str = "<isdl>") -> List[Token]:
    """Tokenize *source*, returning a list ending in an EOF token."""
    return list(iter_tokens(source, filename))


def iter_tokens(source: str, filename: str = "<isdl>") -> Iterator[Token]:
    line = 1
    col = 1
    i = 0
    n = len(source)

    def loc() -> SourceLocation:
        return SourceLocation(filename, line, col)

    def advance(count: int) -> None:
        nonlocal i, line, col
        for _ in range(count):
            if i < n and source[i] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            i += 1

    while i < n:
        ch = source[i]
        if ch in " \t\r\n":
            advance(1)
            continue
        if ch == "#":
            while i < n and source[i] != "\n":
                advance(1)
            continue
        start = loc()
        if ch == '"':
            text, length = _scan_string(source, i, start)
            yield Token("STRING", text, source[i : i + length], start)
            advance(length)
            continue
        if ch.isdigit():
            value, length = _scan_int(source, i, start)
            yield Token("INT", value, source[i : i + length], start)
            advance(length)
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            yield Token("ID", text, text, start)
            advance(j - i)
            continue
        op = _match_operator(source, i)
        if op is not None:
            yield Token("OP", op, op, start)
            advance(len(op))
            continue
        raise IsdlSyntaxError(f"unexpected character {ch!r}", start)
    yield Token("EOF", None, "", loc())


def _match_operator(source: str, i: int) -> Optional[str]:
    for op in _OPERATORS:
        if source.startswith(op, i):
            return op
    return None


def _scan_string(source: str, i: int, start: SourceLocation):
    j = i + 1
    chars: List[str] = []
    while j < len(source):
        ch = source[j]
        if ch == '"':
            return "".join(chars), j - i + 1
        if ch == "\n":
            break
        if ch == "\\" and j + 1 < len(source):
            chars.append(source[j + 1])
            j += 2
            continue
        chars.append(ch)
        j += 1
    raise IsdlSyntaxError("unterminated string literal", start)


def _scan_int(source: str, i: int, start: SourceLocation):
    n = len(source)
    j = i
    if source.startswith(("0x", "0X"), i):
        j = i + 2
        while j < n and (source[j] in "_" or source[j] in "0123456789abcdefABCDEF"):
            j += 1
        digits = source[i + 2 : j].replace("_", "")
        if not digits:
            raise IsdlSyntaxError("malformed hex literal", start)
        return int(digits, 16), j - i
    if source.startswith(("0b", "0B"), i):
        j = i + 2
        while j < n and source[j] in "01_":
            j += 1
        digits = source[i + 2 : j].replace("_", "")
        if not digits:
            raise IsdlSyntaxError("malformed binary literal", start)
        return int(digits, 2), j - i
    while j < n and (source[j].isdigit() or source[j] == "_"):
        j += 1
    return int(source[i:j].replace("_", "")), j - i
