"""The ISDL machine description language.

Parsing, AST, RTL mini-language, semantic checking, and pretty-printing for
the Instruction Set Description Language of the paper (section 2).
"""

from . import ast, rtl
from .fingerprint import (
    FingerprintDelta,
    FingerprintTree,
    fingerprint,
    fingerprint_delta,
    fingerprint_text,
    fingerprint_tree,
    unit_fingerprint,
)
from .intrinsics import INTRINSICS
from .loader import load_file, load_string
from .parser import parse
from .printer import description_units, print_description
from .semantics import check

__all__ = [
    "ast",
    "rtl",
    "INTRINSICS",
    "FingerprintDelta",
    "FingerprintTree",
    "fingerprint",
    "fingerprint_delta",
    "fingerprint_text",
    "fingerprint_tree",
    "unit_fingerprint",
    "description_units",
    "load_file",
    "load_string",
    "parse",
    "print_description",
    "check",
]
