"""Metric primitives for the observability subsystem.

A :class:`MetricsRegistry` holds named counters, gauges, and fixed-bucket
histograms.  Registries are cheap, thread-safe, and — crucially for the
parallel exploration engine — *snapshotable*: :meth:`MetricsRegistry.snapshot`
produces a plain-data :class:`MetricsSnapshot` that pickles across a process
pool and merges deterministically, so every worker's per-candidate metrics
can be shipped back to the parent and folded into one profile.

Merge semantics:

* counters add,
* histograms add bucket-wise (bucket layouts must agree),
* gauges take the incoming value — merging in submission order therefore
  yields a deterministic result.

Memory model (what the evaluation service's worker threads rely on):

* the registry lock guards only the name → handle maps; every
  :class:`Counter`/:class:`Gauge`/:class:`Histogram` handle carries its
  *own* mutex, so writes to different metrics never contend and an
  increment can never be lost — ``inc``/``add``/``observe`` are
  read-modify-write under the handle lock, not bare ``+=``;
* :meth:`MetricsRegistry.snapshot` is consistent **per handle** (each
  counter value and histogram is internally coherent) but not atomic
  across handles: a snapshot taken mid-flight may show counter A after
  an event and counter B before it.  Derived rates across metrics are
  therefore approximate while writers are running and exact once they
  stop;
* :meth:`MetricsRegistry.merge` folds a snapshot in handle by handle
  under the same per-handle locks, so merging is safe concurrently with
  live writers.

This module depends only on the standard library; every tool-chain layer may
import it without creating a cycle.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets, in seconds — spaced for tool-chain stages that
#: range from sub-millisecond (a cache hit) to tens of seconds (a synthesis).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

#: Prefix under which finished spans record their timing histograms.
STAGE_PREFIX = "stage."


@dataclass
class HistogramData:
    """The plain-data form of one histogram (picklable, mergeable)."""

    buckets: Tuple[float, ...]
    counts: List[int]
    total: float = 0.0
    count: int = 0

    def merge(self, other: "HistogramData") -> None:
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different bucket layouts:"
                f" {self.buckets} vs {other.buckets}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.total += other.total
        self.count += other.count

    def copy(self) -> "HistogramData":
        return HistogramData(
            self.buckets, list(self.counts), self.total, self.count
        )

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "total": self.total,
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HistogramData":
        return cls(
            tuple(data["buckets"]), list(data["counts"]),
            float(data["total"]), int(data["count"]),
        )


class Counter:
    """A monotonically increasing value (float-valued, so it can also
    accumulate seconds).  Each counter owns its mutex, so hot counters
    on different names never serialize against each other."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (pool sizes, queue depths)."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """A fixed-bucket histogram; bucket *i* counts observations ≤
    ``buckets[i]``, with one overflow bucket at the end."""

    __slots__ = ("name", "buckets", "counts", "total", "count", "_lock")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.total += value
            self.count += 1
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[i] += 1
                    return
            self.counts[-1] += 1

    def merge_data(self, data: HistogramData) -> None:
        """Fold plain histogram data in under this handle's lock."""
        if self.buckets != data.buckets:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket layouts"
                f" differ"
            )
        with self._lock:
            self.total += data.total
            self.count += data.count
            for i, n in enumerate(data.counts):
                self.counts[i] += n

    def data(self) -> HistogramData:
        with self._lock:
            return HistogramData(
                self.buckets, list(self.counts), self.total, self.count
            )


@dataclass
class MetricsSnapshot:
    """A frozen, plain-data view of a registry — picklable and mergeable."""

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, HistogramData] = field(default_factory=dict)

    def merge(self, other: "MetricsSnapshot") -> None:
        """Fold *other* into this snapshot (counters add, gauges take the
        incoming value, histograms add bucket-wise)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0.0) + value
        for name, value in other.gauges.items():
            self.gauges[name] = value
        for name, data in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                self.histograms[name] = data.copy()
            else:
                mine.merge(data)

    @classmethod
    def merged(cls, snapshots: Iterable["MetricsSnapshot"]
               ) -> "MetricsSnapshot":
        result = cls()
        for snapshot in snapshots:
            result.merge(snapshot)
        return result

    def copy(self) -> "MetricsSnapshot":
        return MetricsSnapshot(
            dict(self.counters), dict(self.gauges),
            {name: data.copy() for name, data in self.histograms.items()},
        )

    # -- stage views (what the span instrumentation records) ------------

    def stage_names(self) -> List[str]:
        """Tool-chain stages that recorded timing, sorted by name."""
        prefix = STAGE_PREFIX
        return sorted(
            name[len(prefix):] for name in self.histograms
            if name.startswith(prefix)
        )

    def stage_table(self) -> str:
        """A fixed-width per-stage timing table (calls, total, mean)."""
        header = (
            f"{'stage':<24} {'calls':>7} {'total s':>10} {'mean ms':>10}"
            f" {'cpu s':>9}"
        )
        lines = [header, "-" * len(header)]
        rows = []
        for stage in self.stage_names():
            data = self.histograms[STAGE_PREFIX + stage]
            cpu = self.counters.get(f"{STAGE_PREFIX}{stage}.cpu_s", 0.0)
            rows.append((data.total, stage, data, cpu))
        for _, stage, data, cpu in sorted(rows, reverse=True):
            lines.append(
                f"{stage:<24} {data.count:>7} {data.total:>10.3f}"
                f" {data.mean * 1000:>10.3f} {cpu:>9.3f}"
            )
        return "\n".join(lines)

    def report(self) -> str:
        """A human-readable dump of every metric."""
        lines = []
        if self.stage_names():
            lines.append(self.stage_table())
        plain = {
            name: value for name, value in self.counters.items()
            if not name.startswith(STAGE_PREFIX)
        }
        if plain:
            lines.append("counters:")
            for name in sorted(plain):
                value = plain[name]
                text = f"{value:g}" if value != int(value) else f"{int(value)}"
                lines.append(f"  {name:<32} {text:>12}")
        if self.gauges:
            lines.append("gauges:")
            for name in sorted(self.gauges):
                lines.append(f"  {name:<32} {self.gauges[name]:>12g}")
        return "\n".join(lines) if lines else "(no metrics recorded)"

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: data.to_dict()
                for name, data in self.histograms.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "MetricsSnapshot":
        return cls(
            dict(data.get("counters", {})),
            dict(data.get("gauges", {})),
            {
                name: HistogramData.from_dict(hist)
                for name, hist in data.get("histograms", {}).items()
            },
        )


class MetricsRegistry:
    """A thread-safe collection of named counters, gauges, and histograms.

    The registry lock guards only the name → handle maps; recording goes
    through each handle's own lock (see the module docstring for the
    memory model).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- handle accessors (create on first use) --------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            handle = self._counters.get(name)
            if handle is None:
                handle = self._counters[name] = Counter(name)
            return handle

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            handle = self._gauges.get(name)
            if handle is None:
                handle = self._gauges[name] = Gauge(name)
            return handle

    def histogram(self, name: str,
                  buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            handle = self._histograms.get(name)
            if handle is None:
                handle = self._histograms[name] = Histogram(name, buckets)
            return handle

    # -- one-shot conveniences -------------------------------------------

    def add(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def set(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.histogram(name, buckets).observe(value)

    # -- snapshot / merge -------------------------------------------------

    def snapshot(self) -> MetricsSnapshot:
        # Take the handle maps under the registry lock, then read each
        # handle through its own lock (h.data()).  Scalar counter/gauge
        # reads are single attribute loads, atomic under the GIL.
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return MetricsSnapshot(
            {n: c.value for n, c in counters.items()},
            {n: g.value for n, g in gauges.items()},
            {n: h.data() for n, h in histograms.items()},
        )

    def merge(self, snapshot: Optional[MetricsSnapshot]) -> None:
        """Fold a snapshot (e.g. from a pool worker) into this registry.

        Safe concurrently with live writers: every update goes through
        the target handle's own lock.
        """
        if snapshot is None:
            return
        for name, value in snapshot.counters.items():
            self.counter(name).inc(value)
        for name, value in snapshot.gauges.items():
            self.gauge(name).set(value)
        for name, data in snapshot.histograms.items():
            self.histogram(name, data.buckets).merge_data(data)

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def report(self) -> str:
        return self.snapshot().report()
