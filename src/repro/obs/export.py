"""Span exporters built on the GENSIM trace-sink machinery.

:class:`~repro.gensim.trace.TraceSink` already solves the "stream of
records into a file, flushed and closed exactly once" problem for
instruction traces, and every sink is a context manager.
:class:`SpanFileTrace` reuses that lifecycle for observability spans: it is
a :class:`~repro.gensim.trace.FileTrace` whose :meth:`format` renders
:class:`~repro.obs.tracing.SpanRecord` objects instead of instruction
records — the worked example of plugging obs output into an existing sink.

::

    with obs.open_span_trace("spans.txt") as sink:
        for record in obs.tracer().finished():
            sink.emit(record)

This module imports from :mod:`repro.gensim`, so the :mod:`repro.obs`
package loads it lazily (``obs.SpanFileTrace`` works, but nothing here is
imported at package-import time).
"""

from __future__ import annotations

import re
from typing import List, TextIO

from ..gensim.trace import FileTrace
from .metrics import MetricsSnapshot
from .tracing import SpanRecord

__all__ = ["SpanFileTrace", "open_span_trace", "prometheus_text"]


class SpanFileTrace(FileTrace):
    """A file sink for finished spans: one fixed-width line per span."""

    def __init__(self, stream: TextIO, close_stream: bool = False):
        super().__init__(stream, close_stream)
        self._header_written = False

    def format(self, record: SpanRecord) -> str:
        indent = "  " * record.depth
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(record.attrs.items())
        )
        return (
            f"{record.start_us / 1000:12.3f}ms {record.dur_us / 1000:10.3f}ms"
            f" {record.cpu_us / 1000:8.3f}ms  {indent}{record.name}"
            f"{'  ' + attrs if attrs else ''}"
        )

    def emit(self, record: SpanRecord) -> None:  # type: ignore[override]
        if not self._header_written:
            header = (
                f"{'start':>14} {'wall':>12} {'cpu':>10}  span"
            )
            self._stream.write(header + "\n" + "-" * len(header) + "\n")
            self._header_written = True
        super().emit(record)


def open_span_trace(path: str) -> SpanFileTrace:
    """Open *path* for writing and return a :class:`SpanFileTrace` on it."""
    return SpanFileTrace(open(path, "w", encoding="utf-8"),
                         close_stream=True)


# ---------------------------------------------------------------------------
# Prometheus text exposition (what `GET /metrics` on the evaluation
# service serves) — the 0.0.4 text format, standard library only.
# ---------------------------------------------------------------------------

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus grammar."""
    sanitized = _METRIC_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _prom_value(value: float) -> str:
    return f"{int(value)}" if value == int(value) else repr(float(value))


def prometheus_text(snapshot: MetricsSnapshot) -> str:
    """Render a :class:`~repro.obs.metrics.MetricsSnapshot` in the
    Prometheus text exposition format.

    Counters gain a ``_total`` suffix, histograms expand into cumulative
    ``_bucket{le=...}`` series plus ``_sum``/``_count``, and dotted
    registry names map onto underscores (``serve.jobs_accepted`` →
    ``serve_jobs_accepted_total``).  Output is sorted by metric name so
    scrapes diff cleanly.
    """
    lines: List[str] = []
    for name in sorted(snapshot.counters):
        metric = _prom_name(name) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_prom_value(snapshot.counters[name])}")
    for name in sorted(snapshot.gauges):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_prom_value(snapshot.gauges[name])}")
    for name in sorted(snapshot.histograms):
        data = snapshot.histograms[name]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        cumulative = 0
        for bound, count in zip(data.buckets, data.counts):
            cumulative += count
            lines.append(
                f'{metric}_bucket{{le="{bound:g}"}} {cumulative}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {data.count}')
        lines.append(f"{metric}_sum {_prom_value(data.total)}")
        lines.append(f"{metric}_count {data.count}")
    return "\n".join(lines) + "\n"
