"""Span tracing for the observability subsystem.

A :class:`Tracer` produces nested spans — one per tool-chain stage — each
carrying wall-clock and CPU time plus free-form attributes.  Finished spans
export two ways:

* :meth:`Tracer.chrome_trace` — the Chrome trace-event JSON format
  (complete ``"ph": "X"`` events), loadable in ``about:tracing`` /
  `Perfetto <https://ui.perfetto.dev>`_;
* :meth:`Tracer.text_profile` — a fixed-width per-stage aggregate for
  terminals and logs.

Spans nest per thread (the active-span stack is thread-local), so a tracer
shared by the thread-pool evaluation engine stays coherent: every span
records the thread it ran on, which becomes the ``tid`` of its trace event.

When a tracer is given a registry (or a zero-argument registry provider),
every finished span also records its duration into the
``stage.<name>`` histogram and its CPU time into the
``stage.<name>.cpu_s`` counter — that is how per-candidate profiles reach
the :class:`~repro.obs.metrics.MetricsSnapshot` that pool workers ship back.

Standard library only; safe to import from any layer.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Union

from .metrics import STAGE_PREFIX, MetricsRegistry

__all__ = ["Span", "SpanRecord", "Tracer", "validate_chrome_trace"]

RegistrySource = Union[
    MetricsRegistry, Callable[[], Optional[MetricsRegistry]], None
]


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    category: str
    start_us: float  # µs since the tracer's epoch
    dur_us: float  # wall-clock duration, µs
    cpu_us: float  # thread CPU time, µs
    thread_id: int
    depth: int  # nesting depth on its thread (0 = top level)
    attrs: Dict[str, object] = field(default_factory=dict)


class Span:
    """A live span; use as a context manager (via :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "name", "category", "attrs", "depth",
                 "_start", "_cpu0")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 attrs: Dict[str, object]):
        self._tracer = tracer
        self.name = name
        self.category = category
        self.attrs = attrs
        self.depth = 0
        self._start = 0.0
        self._cpu0 = 0.0

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; chainable."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        self._cpu0 = time.thread_time()
        return self

    def __exit__(self, *exc_info) -> bool:
        end = time.perf_counter()
        cpu = time.thread_time()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._finish(
            SpanRecord(
                name=self.name,
                category=self.category,
                start_us=(self._start - self._tracer._t0) * 1e6,
                dur_us=(end - self._start) * 1e6,
                cpu_us=(cpu - self._cpu0) * 1e6,
                thread_id=threading.get_ident(),
                depth=self.depth,
                attrs=self.attrs,
            )
        )
        return False


class Tracer:
    """Collects nested spans; exports Chrome trace JSON and text profiles."""

    def __init__(self, registry: RegistrySource = None):
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._local = threading.local()
        self._records: List[SpanRecord] = []
        self._registry = registry

    # -- span production --------------------------------------------------

    def span(self, name: str, category: str = "toolchain",
             **attrs) -> Span:
        """Open a span; use as ``with tracer.span("hgen.synthesize"): ...``."""
        return Span(self, name, category, attrs)

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            self._records.append(record)
        registry = self._registry
        if callable(registry):
            registry = registry()
        if registry is not None:
            registry.observe(STAGE_PREFIX + record.name,
                             record.dur_us / 1e6)
            registry.add(f"{STAGE_PREFIX}{record.name}.cpu_s",
                         record.cpu_us / 1e6)

    # -- inspection --------------------------------------------------------

    def finished(self) -> List[SpanRecord]:
        """Finished spans, in completion order."""
        with self._lock:
            return list(self._records)

    def stage_names(self) -> List[str]:
        """Distinct span names seen so far, sorted."""
        return sorted({record.name for record in self.finished()})

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    # -- Chrome trace-event export ----------------------------------------

    def chrome_trace(self) -> dict:
        """The finished spans as a Chrome trace-event JSON object."""
        pid = os.getpid()
        events = []
        for record in sorted(self.finished(), key=lambda r: r.start_us):
            args = {str(k): v for k, v in record.attrs.items()}
            args["cpu_ms"] = round(record.cpu_us / 1000.0, 3)
            events.append(
                {
                    "name": record.name,
                    "cat": record.category,
                    "ph": "X",
                    "ts": round(record.start_us, 3),
                    "dur": round(record.dur_us, 3),
                    "pid": pid,
                    "tid": record.thread_id,
                    "args": args,
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> dict:
        """Write :meth:`chrome_trace` to *path*; returns the payload."""
        payload = self.chrome_trace()
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1, default=str)
            handle.write("\n")
        return payload

    # -- text profile ------------------------------------------------------

    def text_profile(self) -> str:
        """A fixed-width per-stage aggregate of the finished spans."""
        totals: Dict[str, List[float]] = {}
        for record in self.finished():
            row = totals.setdefault(record.name, [0, 0.0, 0.0])
            row[0] += 1
            row[1] += record.dur_us
            row[2] += record.cpu_us
        header = (
            f"{'span':<28} {'calls':>7} {'wall ms':>11} {'cpu ms':>10}"
            f" {'mean µs':>10}"
        )
        lines = [header, "-" * len(header)]
        for name, (calls, wall, cpu) in sorted(
            totals.items(), key=lambda item: -item[1][1]
        ):
            lines.append(
                f"{name:<28} {int(calls):>7} {wall / 1000:>11.3f}"
                f" {cpu / 1000:>10.3f} {wall / calls:>10.1f}"
            )
        return "\n".join(lines)


def validate_chrome_trace(payload) -> List[str]:
    """Validate a Chrome trace-event payload; return the distinct span names.

    Accepts the object form (``{"traceEvents": [...]}``) or the bare array
    form; raises :class:`ValueError` with a precise message on the first
    schema violation.  Used by the CI smoke job and the obs tests so the
    emitted traces are guaranteed ``about:tracing``-loadable.
    """
    if isinstance(payload, dict):
        events = payload.get("traceEvents")
        if not isinstance(events, list):
            raise ValueError("trace object must carry a 'traceEvents' list")
    elif isinstance(payload, list):
        events = payload
    else:
        raise ValueError(
            f"trace payload must be an object or array, got"
            f" {type(payload).__name__}"
        )
    names = set()
    for position, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"event #{position} is not an object")
        for key, kinds in (
            ("name", str), ("cat", str), ("ph", str),
            ("ts", (int, float)), ("pid", int), ("tid", int),
        ):
            if not isinstance(event.get(key), kinds):
                raise ValueError(
                    f"event #{position} field {key!r} missing or mistyped"
                )
        if event["ph"] == "X":
            if not isinstance(event.get("dur"), (int, float)):
                raise ValueError(
                    f"event #{position}: complete events require 'dur'"
                )
            if event["dur"] < 0 or event["ts"] < 0:
                raise ValueError(
                    f"event #{position}: negative timestamp or duration"
                )
        names.add(event["name"])
    return sorted(names)
