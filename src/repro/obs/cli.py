"""``repro-obs`` — the observability report entry point.

Runs an instrumented exploration smoke sweep (the Figure-1 loop with
:mod:`repro.obs` enabled) and writes every artifact the subsystem can
produce:

* ``obs_trace.json`` — Chrome trace-event JSON, loadable in
  ``about:tracing`` / Perfetto, validated before it is written;
* ``obs_profile.txt`` — the fixed-width per-stage text profile plus the
  metrics-registry report and the exploration report (cache statistics
  and the merged per-candidate stage table);
* ``BENCH_obs_sweep.json`` — a machine-readable summary (configuration,
  wall time, counters, per-stage aggregates) in the same shape the
  benchmark suite emits.

Usage::

    repro-obs [--arch spam2] [--iterations 2] [--out DIR]

The sweep runs the serial evaluator so every span of every candidate
measurement lands in one tracer (pool workers keep their spans local and
ship only metric snapshots back).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import List, Optional

from . import (
    disable,
    enable,
    registry,
    tracer,
    validate_chrome_trace,
)


def _smoke_kernels():
    """Two small integer workloads (a reduction and a copy loop)."""
    from ..codegen import Cond, KernelBuilder, Opcode

    K = KernelBuilder("sum")
    cnt = K.li(10)
    acc = K.li(0)
    K.label("loop")
    K.binary_into(acc, Opcode.ADD, acc, cnt)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    K.store(K.li(0), acc)
    sum_kernel = K.build()

    K = KernelBuilder("memcpy")
    src = K.li(0)
    dst = K.li(32)
    cnt = K.li(8)
    K.label("loop")
    K.store(dst, K.load(src))
    K.binary_into(src, Opcode.ADD, src, 1)
    K.binary_into(dst, Opcode.ADD, dst, 1)
    K.binary_into(cnt, Opcode.SUB, cnt, 1)
    K.cbr(Cond.NE, cnt, 0, "loop")
    return [sum_kernel, K.build()]


def run_sweep(arch: str = "spam2", iterations: int = 2,
              out_dir: str = ".") -> dict:
    """Run the instrumented sweep and write the three artifacts.

    Returns the ``BENCH_obs_sweep.json`` payload (with artifact paths and
    the distinct stage list) so callers/tests can assert on it.
    """
    from ..arch import description_for
    from ..cache import ArtifactCache
    from ..explore import Explorer
    from ..explore.report import exploration_report

    kernels = _smoke_kernels()
    cache = ArtifactCache()
    enable()
    try:
        start = time.perf_counter()
        explorer = Explorer(kernels, cache=cache, parallel="serial")
        log = explorer.explore(description_for(arch),
                               max_iterations=iterations)
        elapsed = time.perf_counter() - start
        snapshot = registry().snapshot()
        active_tracer = tracer()
        payload = active_tracer.chrome_trace()
        stages = validate_chrome_trace(payload)

        os.makedirs(out_dir, exist_ok=True)
        trace_path = os.path.join(out_dir, "obs_trace.json")
        active_tracer.write_chrome_trace(trace_path)
        profile_path = os.path.join(out_dir, "obs_profile.txt")
        with open(profile_path, "w", encoding="utf-8") as handle:
            handle.write(active_tracer.text_profile() + "\n\n")
            handle.write(snapshot.report() + "\n\n")
            handle.write(exploration_report(log, cache=cache) + "\n")
    finally:
        disable(reset=True)

    summary = {
        "bench": "obs_sweep",
        "config": {"arch": arch, "max_iterations": iterations,
                   "kernels": [k.name for k in kernels]},
        "wall_seconds": elapsed,
        "iterations": log.iterations,
        "candidates_profiled": len(log.profiles),
        "improvement": log.improvement,
        "stages": stages,
        "span_count": len(active_tracer.finished()),
        "counters": {
            name: value for name, value in sorted(snapshot.counters.items())
            if not name.startswith("stage.")
        },
        "cache": {
            "hits": cache.stats.hits,
            "misses": cache.stats.misses,
            "hit_rate": cache.stats.hit_rate,
        },
        "artifacts": {"trace": trace_path, "profile": profile_path},
    }
    bench_path = os.path.join(out_dir, "BENCH_obs_sweep.json")
    with open(bench_path, "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")
    summary["artifacts"]["bench"] = bench_path
    return summary


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="instrumented exploration smoke sweep: Chrome trace,"
                    " text profile, and machine-readable summary",
    )
    parser.add_argument("--arch", default="spam2",
                        help="architecture to explore (default: spam2)")
    parser.add_argument("--iterations", type=int, default=2,
                        help="exploration iterations (default: 2)")
    parser.add_argument("--out", default=".",
                        help="output directory (default: cwd)")
    args = parser.parse_args(argv)
    try:
        summary = run_sweep(args.arch, args.iterations, args.out)
    except KeyError:
        print(f"unknown architecture {args.arch!r}", file=sys.stderr)
        return 2
    print(f"explored {summary['config']['arch']}:"
          f" {summary['iterations']} iteration(s),"
          f" {summary['candidates_profiled']} candidate measurement(s)"
          f" in {summary['wall_seconds']:.2f} s")
    print(f"stages ({len(summary['stages'])}):"
          f" {', '.join(summary['stages'])}")
    for kind, path in sorted(summary["artifacts"].items()):
        print(f"wrote {kind}: {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
