"""repro.obs — the unified observability subsystem.

Every layer of the tool chain (ISDL parsing, signature tables, GENSIM core
builds, assembly, simulation runs, HGEN synthesis, the exploration engine,
the artifact cache) calls into this facade.  Observability is **disabled by
default** and the disabled paths are near-free: one module-global boolean
check and a shared no-op context manager, so benchmarks measure the tool
chain, not its instrumentation.

Typical use::

    from repro import obs

    obs.enable()                       # module-level switch
    log = explorer.explore(desc)       # instrumented sweep
    obs.tracer().write_chrome_trace("trace.json")   # about:tracing-loadable
    print(obs.tracer().text_profile())              # fixed-width profile
    print(obs.registry().report())                  # counters/histograms
    obs.disable()

Instrumented code uses three primitives, all safe to call when disabled:

* ``with obs.span("hgen.synthesize", desc=name): ...`` — a nested span
  with wall/CPU time, exported to Chrome trace JSON;
* ``obs.add("sim.cycles", n)`` / ``obs.gauge_set`` / ``obs.observe`` —
  registry writes;
* ``with obs.capture() as cap: ...`` — scoped measurement: a fresh
  registry is active for the calling thread inside the block, and on exit
  ``cap.snapshot`` holds its :class:`~repro.obs.metrics.MetricsSnapshot`
  (merged back into the enclosing registry, so totals still accumulate).
  This is how the parallel evaluator produces per-candidate profiles.

This package's core (metrics, tracing, this facade) is standard-library
only, so any module in ``repro`` may import it without cycles;
:mod:`repro.obs.export` (which reuses the GENSIM trace sinks) is loaded
lazily.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramData,
    MetricsRegistry,
    MetricsSnapshot,
)
from .tracing import Span, SpanRecord, Tracer, validate_chrome_trace

__all__ = [
    "enable",
    "disable",
    "enabled",
    "registry",
    "tracer",
    "span",
    "add",
    "gauge_set",
    "observe",
    "capture",
    "Capture",
    "merge",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramData",
    "MetricsRegistry",
    "MetricsSnapshot",
    "Span",
    "SpanRecord",
    "Tracer",
    "validate_chrome_trace",
    "SpanFileTrace",
    "open_span_trace",
    "prometheus_text",
    "DEFAULT_BUCKETS",
]

# ----------------------------------------------------------------------
# Module state: one switch, one global registry/tracer pair, and a
# thread-local stack of capture-scoped registries.
# ----------------------------------------------------------------------

_ENABLED = False
_REGISTRY: Optional[MetricsRegistry] = None
_TRACER: Optional[Tracer] = None
_LOCK = threading.Lock()
_LOCAL = threading.local()


def enable(registry: Optional[MetricsRegistry] = None,
           tracer: Optional[Tracer] = None) -> MetricsRegistry:
    """Turn observability on (idempotent); returns the active registry.

    A fresh registry/tracer pair is installed unless one is passed in —
    repeated ``enable()`` calls keep accumulating into the existing pair.
    """
    global _ENABLED, _REGISTRY, _TRACER
    with _LOCK:
        if registry is not None:
            _REGISTRY = registry
        elif _REGISTRY is None:
            _REGISTRY = MetricsRegistry()
        if tracer is not None:
            _TRACER = tracer
        elif _TRACER is None:
            _TRACER = Tracer(registry=_active_registry)
        _ENABLED = True
        return _REGISTRY


def disable(reset: bool = False) -> None:
    """Turn observability off; with ``reset=True`` also drop the state."""
    global _ENABLED, _REGISTRY, _TRACER
    with _LOCK:
        _ENABLED = False
        if reset:
            _REGISTRY = None
            _TRACER = None


def enabled() -> bool:
    """The module-level switch (the disabled path is a boolean check)."""
    return _ENABLED


def registry() -> Optional[MetricsRegistry]:
    """The registry metric writes currently land in (thread-aware)."""
    return _active_registry()


def tracer() -> Optional[Tracer]:
    """The active tracer (None while disabled and never enabled)."""
    return _TRACER


def _active_registry() -> Optional[MetricsRegistry]:
    if not _ENABLED:
        return None
    stack = getattr(_LOCAL, "stack", None)
    if stack:
        return stack[-1]
    return _REGISTRY


# ----------------------------------------------------------------------
# Instrumentation primitives (no-ops while disabled)
# ----------------------------------------------------------------------


class _NullSpan:
    """Shared do-nothing span for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attrs) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


def span(name: str, category: str = "toolchain", **attrs):
    """Open a stage span, or a shared no-op when disabled."""
    if not _ENABLED:
        return _NULL_SPAN
    active = _TRACER
    if active is None:  # pragma: no cover - enable() always sets one
        return _NULL_SPAN
    return active.span(name, category, **attrs)


def add(name: str, amount: float = 1.0) -> None:
    """Increment counter *name* in the active registry (if enabled)."""
    reg = _active_registry()
    if reg is not None:
        reg.add(name, amount)


def gauge_set(name: str, value: float) -> None:
    """Set gauge *name* in the active registry (if enabled)."""
    reg = _active_registry()
    if reg is not None:
        reg.set(name, value)


def observe(name: str, value: float) -> None:
    """Record *value* into histogram *name* in the active registry."""
    reg = _active_registry()
    if reg is not None:
        reg.observe(name, value)


def merge(snapshot: Optional[MetricsSnapshot]) -> None:
    """Fold a snapshot (e.g. shipped back from a pool worker) into the
    active registry; a no-op when disabled or *snapshot* is None."""
    reg = _active_registry()
    if reg is not None and snapshot is not None:
        reg.merge(snapshot)


class Capture:
    """The result handle yielded by :func:`capture`."""

    __slots__ = ("registry", "snapshot")

    def __init__(self) -> None:
        self.registry: Optional[MetricsRegistry] = None
        self.snapshot: Optional[MetricsSnapshot] = None


@contextmanager
def capture() -> Iterator[Capture]:
    """Scope metric writes from this thread into a private registry.

    On exit, ``cap.snapshot`` holds the scoped measurements and they are
    merged into the enclosing registry (another capture on this thread, or
    the global one) so totals keep accumulating.  While disabled, the body
    still runs but ``cap.snapshot`` stays None.
    """
    cap = Capture()
    if not _ENABLED:
        yield cap
        return
    outer = _active_registry()
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    cap.registry = MetricsRegistry()
    stack.append(cap.registry)
    try:
        yield cap
    finally:
        if stack and stack[-1] is cap.registry:
            stack.pop()
        cap.snapshot = cap.registry.snapshot()
        if outer is not None:
            outer.merge(cap.snapshot)


# ----------------------------------------------------------------------
# Lazy exports that depend on other repro layers (avoid import cycles)
# ----------------------------------------------------------------------


def __getattr__(name: str):
    if name in ("SpanFileTrace", "open_span_trace", "prometheus_text"):
        from . import export

        return getattr(export, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
