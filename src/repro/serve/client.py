"""Blocking client for the evaluation service (standard library only).

:class:`ServeClient` wraps the JSON wire protocol of
:mod:`repro.serve.http` behind three calls a driving script needs:
``submit`` (with bounded exponential backoff against 429 backpressure),
``wait`` (poll a job to a terminal state, backing off between polls),
and the introspection pair ``health``/``metrics_text``.

A *rejected* submission is not an exception — the server answers 422
with the full job record, diagnostics included, and ``submit`` returns
it like any other job dict so callers can read the findings.  Transport
failures and 400-level protocol misuse do raise
(:class:`ServeClientError`); exhausted backpressure retries raise
:class:`BackpressureError`.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Tuple

from ..errors import ReproError

__all__ = ["BackpressureError", "ServeClient", "ServeClientError"]

#: job states after which polling stops
TERMINAL_STATES = frozenset(
    {"succeeded", "failed", "rejected", "cancelled"}
)


def _retry_after_s(headers: Dict[str, str]) -> Optional[float]:
    """Seconds from a ``Retry-After`` header, or None (absent/unusable).

    Only the delta-seconds form is parsed; the HTTP-date form (which
    neither the service nor the router emits) is ignored.
    """
    for name, value in headers.items():
        if name.lower() == "retry-after":
            try:
                return max(0.0, float(value))
            except (TypeError, ValueError):
                return None
    return None


class ServeClientError(ReproError):
    """Transport failure or a 4xx/5xx answer without a job record."""

    def __init__(self, message: str, status: Optional[int] = None,
                 payload: Optional[Dict[str, Any]] = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class BackpressureError(ServeClientError):
    """The service kept answering 429 past the retry budget."""


class ServeClient:
    """A blocking HTTP client for one ``repro-serve`` endpoint."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- submission ------------------------------------------------------

    def submit(self, payload: Dict[str, Any], *,
               strategy: Optional[str] = None,
               strategy_params: Optional[Dict[str, Any]] = None,
               tech: Optional[Dict[str, Any]] = None,
               max_retries: int = 6,
               backoff_s: float = 0.05) -> Dict[str, Any]:
        """POST one job; retries 429 answers with exponential backoff.

        *strategy* (a registry name, e.g. ``"pareto"``) with optional
        *strategy_params* turns the job into an exploration run — they
        are injected as the payload's ``"strategy"`` object.  *tech*
        (``{"node": 22, "flavor": "HP", "budget_mw": 8.0}``) pins the
        measurement to a scaled technology point and is injected as the
        payload's ``"tech"`` object — an unknown node/flavor comes back
        as a ``rejected`` record with an SRV402 diagnostic.  Without
        them the payload goes over the wire untouched.

        A ``Retry-After`` header on the answer overrides the local
        backoff schedule (the server knows its own drain rate better
        than our doubling guess).  A **503 that carries Retry-After** —
        a cluster router with every shard down — is retried on the same
        budget; a bare 503 (a single node draining for shutdown) still
        raises immediately, as it always has.

        Returns the job record for accepted, coalesced, *and* rejected
        submissions (check ``record["state"]``).
        """
        if strategy is not None:
            payload = dict(payload)
            payload["strategy"] = {"name": strategy,
                                   "params": dict(strategy_params or {})}
        elif strategy_params:
            raise ServeClientError(
                "strategy_params needs a strategy name"
            )
        if tech is not None:
            payload = dict(payload)
            payload["tech"] = dict(tech)
        delay = backoff_s
        for attempt in range(max_retries + 1):
            status, answer, headers = self._request(
                "POST", "/v1/jobs", body=payload
            )
            if status in (202, 422):
                return answer
            retry_after = _retry_after_s(headers)
            retryable = status == 429 or (status == 503
                                          and retry_after is not None)
            if retryable and attempt < max_retries:
                time.sleep(retry_after if retry_after is not None
                           else delay)
                delay *= 2
                continue
            if status == 429:
                raise BackpressureError(
                    f"service still overloaded after"
                    f" {max_retries} retries: {answer.get('error')}",
                    status=status, payload=answer,
                )
            if retryable:
                raise BackpressureError(
                    f"service still unavailable after"
                    f" {max_retries} retries: {answer.get('error')}",
                    status=status, payload=answer,
                )
            raise ServeClientError(
                f"submit failed ({status}): {answer.get('error', answer)}",
                status=status, payload=answer,
            )
        raise AssertionError("unreachable")  # pragma: no cover

    def submit_and_wait(self, payload: Dict[str, Any], *,
                        strategy: Optional[str] = None,
                        strategy_params: Optional[Dict[str, Any]] = None,
                        tech: Optional[Dict[str, Any]] = None,
                        timeout: float = 120.0) -> Dict[str, Any]:
        """Submit, then poll to a terminal state (rejected short-circuits)."""
        record = self.submit(payload, strategy=strategy,
                             strategy_params=strategy_params, tech=tech)
        if record["state"] in TERMINAL_STATES:
            return record
        return self.wait(record["id"], timeout=timeout)

    # -- polling ---------------------------------------------------------

    def job(self, job_id: str) -> Dict[str, Any]:
        status, answer, _ = self._request("GET", f"/v1/jobs/{job_id}")
        if status != 200:
            raise ServeClientError(
                f"job lookup failed ({status}):"
                f" {answer.get('error', answer)}",
                status=status, payload=answer,
            )
        return answer

    def wait(self, job_id: str, *, timeout: float = 120.0,
             poll_initial_s: float = 0.02,
             poll_max_s: float = 0.5,
             jitter: float = 0.2) -> Dict[str, Any]:
        """Poll ``GET /v1/jobs/<id>`` until terminal, backing off between
        polls; raises :class:`TimeoutError` when *timeout* elapses.

        Each sleep is jittered by ±*jitter* (default 20%) so a burst of
        clients created together — an exploration fan-out, a CI sweep —
        desynchronises instead of polling the service in lockstep.

        A 503 on the status lookup is transient here: a cluster router
        answers 503 for a job whose shard just died, until its monitor
        flips the shard down and requeues the work.  The poll keeps
        going — the deadline already bounds how long that can last.
        """
        deadline = time.monotonic() + timeout
        delay = poll_initial_s
        while True:
            try:
                record = self.job(job_id)
            except ServeClientError as exc:
                if exc.status != 503:
                    raise
                record = None
            if record is not None and record["state"] in TERMINAL_STATES:
                return record
            if time.monotonic() >= deadline:
                state = (record["state"] if record is not None
                         else "unreachable")
                raise TimeoutError(
                    f"job {job_id} still {state!r}"
                    f" after {timeout:.1f}s"
                )
            pause = delay
            if jitter > 0.0:
                pause *= random.uniform(1.0 - jitter, 1.0 + jitter)
            time.sleep(min(pause, max(0.0,
                                      deadline - time.monotonic())))
            delay = min(delay * 2, poll_max_s)

    # -- introspection ---------------------------------------------------

    def health(self) -> Dict[str, Any]:
        status, answer, _ = self._request("GET", "/healthz")
        if status not in (200, 503):
            raise ServeClientError(
                f"health check failed ({status})", status=status,
                payload=answer,
            )
        return answer

    def metrics_text(self) -> str:
        request = urllib.request.Request(self.base_url + "/metrics")
        with urllib.request.urlopen(request,
                                    timeout=self.timeout) as response:
            return response.read().decode("utf-8")

    # -- transport -------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, Any]] = None
                 ) -> "Tuple[int, Dict[str, Any], Dict[str, str]]":
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers,
            method=method,
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout) as response:
                return (response.status, self._decode(response.read()),
                        dict(response.headers))
        except urllib.error.HTTPError as exc:
            return exc.code, self._decode(exc.read()), dict(exc.headers)
        except urllib.error.URLError as exc:
            raise ServeClientError(
                f"cannot reach {self.base_url}: {exc.reason}"
            ) from None

    @staticmethod
    def _decode(raw: bytes) -> Dict[str, Any]:
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return {"error": raw.decode("utf-8", "replace")[:200]}
        if isinstance(payload, dict):
            return payload
        return {"value": payload}
