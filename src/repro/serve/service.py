"""The long-running evaluation service behind the ``repro-serve`` daemon.

:class:`EvaluationService` turns the in-process Figure-1 measurement
pipeline into a shared facility: clients submit candidate ISDL
descriptions (plus workload/backend/weight configuration) as jobs, a
persistent pool of worker threads measures them, and every request is
served from one shared :class:`~repro.cache.ArtifactCache` and a small
LRU of :class:`~repro.explore.ParallelEvaluator` configurations, so the
caches and generated artifacts amortize across *all* clients instead of
per process.

The robustness machinery, in the order a submission meets it:

1. **Admission gate** — :func:`repro.analyze.check_static` runs before a
   job is queued; a description with error-severity findings is recorded
   as a ``rejected`` job carrying the full diagnostic list (same
   ISDLxxx codes ``repro-lint`` prints) and costs no toolchain work.
2. **In-flight coalescing** — submissions are keyed by (description
   fingerprint, workload kernels, backend, weights, max_steps); while a
   twin job is queued or running, a duplicate becomes a *follower* that
   shares the leader's single evaluation.  This is the concurrent dual
   of the artifact cache: the cache dedupes across time, coalescing
   dedupes across simultaneous clients.
3. **Backpressure** — the job queue has a hard depth bound; at the bound
   submissions raise :class:`~repro.serve.jobs.QueueFullError`, which
   the HTTP layer answers with 429 rather than queueing unboundedly.
4. **Timeouts with bounded retry** — each evaluation attempt runs in an
   abandonable thread; an attempt exceeding the job's ``timeout_s`` is
   charged and the job re-queued with exponential backoff until
   ``max_attempts``, after which it fails.  Batch-mates behind a timed
   out job are re-queued without being charged an attempt — an accepted
   job is never lost to a neighbour's timeout or a worker crash.
5. **Graceful drain** — :meth:`EvaluationService.shutdown` stops
   admissions, lets in-flight evaluations finish, and reports every
   still-queued job as ``cancelled``.

Worker threads batch ready jobs that share an evaluator configuration
(same workloads/weights/backend/max_steps, up to ``batch_size``), so a
burst of related candidates reuses one evaluator and its warm caches
back to back.

Service-side metrics land in ``service.metrics`` (its own always-on
:class:`~repro.obs.metrics.MetricsRegistry`, exported by ``GET
/metrics``) and are mirrored into the global :mod:`repro.obs` registry
when that is enabled — counters ``serve.jobs_accepted``,
``serve.jobs_coalesced``, ``serve.jobs_rejected``,
``serve.jobs_throttled``, ``serve.jobs_retried``, ``serve.jobs_timeout``,
``serve.jobs_failed``, ``serve.jobs_completed``, ``serve.jobs_cancelled``,
``serve.evaluations_run``, ``serve.worker_errors``, gauge
``serve.queue_depth``, histogram ``serve.job_seconds``.
"""

from __future__ import annotations

import os
import threading
import time
import traceback
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import obs
from ..analyze.diagnostics import Diagnostic, Severity
from ..cache import ArtifactCache, kernel_fingerprint
from ..codegen.kernels import resolve_kernels
from ..errors import CodegenError, IsdlSyntaxError, ReproError
from ..explore import strategies as strategy_registry
from ..explore.explorer import Explorer
from ..explore.metrics import CostWeights
from ..explore.parallel import EvalRequest, ParallelEvaluator
from ..isdl import fingerprint
from ..obs.metrics import MetricsRegistry, MetricsSnapshot
from ..tech.model import TechSpec, UnknownTechError, parse_tech
from .jobs import (
    Job,
    JobQueue,
    JobState,
    QueueFullError,
    ServiceUnavailableError,
    new_job_id,
)
from .journal import JobJournal

__all__ = [
    "BadRequestError",
    "EvaluationService",
    "ServiceConfig",
    "UnknownJobError",
]

#: backends a job may name (see repro.gensim.simulator_for)
KNOWN_BACKENDS = ("xsim", "block", "compiled")

#: diagnostic code recorded when the submitted ISDL text does not parse
CODE_PARSE_ERROR = "ISDL001"

#: diagnostic code recorded when a job names an unknown exploration
#: strategy or passes parameters its factory rejects
CODE_BAD_STRATEGY = "SRV401"

#: diagnostic code recorded when a job names a technology point the
#: scaling tables do not cover (unknown node or flavor)
CODE_BAD_TECH = "SRV402"

#: strategy params consumed by the exploration driver, not the factory
_DRIVER_PARAMS = ("max_iterations", "seed", "max_evaluations")


class BadRequestError(ReproError):
    """A submission payload the service cannot interpret (HTTP 400)."""


class UnknownJobError(ReproError):
    """A job id the service has no record of (HTTP 404)."""


@dataclass
class ServiceConfig:
    """Tunables of one :class:`EvaluationService` instance."""

    workers: int = 4
    max_queue_depth: int = 64
    batch_size: int = 4
    coalesce: bool = True
    static_check: bool = True
    cache_entries: int = 2048
    disk_path: Optional[str] = None
    default_backend: str = "xsim"
    default_max_steps: int = 500_000
    default_timeout_s: float = 60.0
    max_attempts: int = 3
    retry_backoff_s: float = 0.05  # doubles per charged attempt
    #: False turns off whole-evaluation memoization (and is what the
    #: bench's no-dedup baseline measures); artifact caches stay shared
    share_evaluations: bool = True
    #: bound on distinct evaluator configurations kept warm
    max_evaluators: int = 32
    #: directory for durable state; when set, a job journal
    #: (``journal.jsonl``) records admissions/transitions/results and is
    #: replayed on start so accepted jobs survive a crash
    data_dir: Optional[str] = None
    #: shard identity in a cluster: job ids become ``<shard>-<hex>`` so a
    #: router can route status lookups without shared state
    shard_id: Optional[str] = None
    #: fsync the journal on every append (machine-crash durability)
    journal_fsync: bool = False
    #: terminal records kept across a startup journal compaction
    journal_keep_terminal: int = 512
    #: guard disk-cache builds with a cross-process lock/lease so
    #: co-located shards sharing a disk path never duplicate a build
    cache_lease: bool = False


class EvaluationService:
    """Job queue + persistent worker pool over the shared tool chain.

    *evaluate_fn* is a test seam: when given, it replaces the real
    evaluator call with ``evaluate_fn(job) -> Evaluation`` (it may raise
    or block), so tests can script slow, failing, or instant evaluations
    without running the tool chain.
    """

    def __init__(self, config: Optional[ServiceConfig] = None, *,
                 cache: Optional[ArtifactCache] = None,
                 evaluate_fn: Optional[Callable[[Job], Any]] = None):
        self.config = config or ServiceConfig()
        self.cache = cache if cache is not None else ArtifactCache(
            max_entries=self.config.cache_entries,
            disk_path=self.config.disk_path,
            lease=self.config.cache_lease,
        )
        self.journal: Optional[JobJournal] = None
        if self.config.data_dir:
            os.makedirs(self.config.data_dir, exist_ok=True)
            self.journal = JobJournal(
                os.path.join(self.config.data_dir, "journal.jsonl"),
                fsync=self.config.journal_fsync,
                keep_terminal=self.config.journal_keep_terminal,
            )
        self._replayed = False
        self.metrics = MetricsRegistry()
        self.queue = JobQueue(self.config.max_queue_depth)
        self.started_at = time.time()
        self._evaluate_fn = evaluate_fn
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # submission order, for listings
        self._inflight: Dict[Tuple, Job] = {}
        self._evaluators: "OrderedDict[Tuple, ParallelEvaluator]" = \
            OrderedDict()
        self._lock = threading.RLock()
        self._done_cond = threading.Condition(self._lock)
        self._draining = False
        self._workers: List[threading.Thread] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "EvaluationService":
        """Spawn the worker pool (idempotent).

        With a journal configured, the previous run's log is replayed
        first: terminal records are restored so old job ids still
        resolve, and admitted-but-unfinished jobs re-enter the queue
        with their original ids.
        """
        if self.journal is not None and not self._replayed:
            self._replay_journal()
        with self._lock:
            if self._workers:
                return self
            for i in range(self.config.workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name=f"repro-serve-worker-{i}",
                    daemon=True,
                )
                thread.start()
                self._workers.append(thread)
        return self

    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop accepting jobs; with *drain* let in-flight work finish
        and report every still-queued job as cancelled."""
        with self._lock:
            self._draining = True
        drained = self.queue.drain()
        for job in drained:
            self._cancel(job, "cancelled: service shut down while queued")
        self._gauge("serve.queue_depth", 0)
        if drain:
            deadline = time.monotonic() + timeout
            for thread in self._workers:
                thread.join(max(0.0, deadline - time.monotonic()))
        with self._lock:
            evaluators = list(self._evaluators.values())
            self._evaluators.clear()
        for evaluator in evaluators:
            evaluator.shutdown()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "EvaluationService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # ------------------------------------------------------------------
    # Submission (admission gate → coalescing → queue)
    # ------------------------------------------------------------------

    def submit(self, payload: Dict[str, Any]) -> Job:
        """Admit one submission payload; returns its :class:`Job` record.

        Raises :class:`BadRequestError` for a payload the service cannot
        interpret, :class:`~repro.serve.jobs.QueueFullError` under
        backpressure, and
        :class:`~repro.serve.jobs.ServiceUnavailableError` while
        draining.  A parseable-but-invalid description is *not* an
        error: it becomes a ``rejected`` job whose record carries the
        static-analysis diagnostics.
        """
        return self._admit(payload)

    def _admit(self, payload: Dict[str, Any], *,
               job_id: Optional[str] = None,
               enforce_bound: bool = True) -> Job:
        """Submission body; journal replay re-enters here with the
        original *job_id* and ``enforce_bound=False`` (an accepted job
        must never be dropped because the restart refilled the queue)."""
        if self.draining:
            raise ServiceUnavailableError("service is draining")
        job = self._parse_payload(payload, job_id=job_id)
        job.payload = payload
        if job.diagnostics:
            # did not parse (ISDL001) or named a bad strategy (SRV401):
            # rejected on record, never costs a queue slot
            return self._reject(job)
        if self.config.static_check:
            gate = self._gate_diagnostics(job)
            if gate is not None:
                job.diagnostics = gate
                return self._reject(job)
        with self._lock:
            if self.config.coalesce:
                leader = self._inflight.get(job.key)
                if leader is not None and not leader.done:
                    job.state = leader.state
                    job.coalesced_with = leader.id
                    leader.followers.append(job)
                    self._register(job)
                    self._count("serve.jobs_coalesced")
                    self._journal_admit(job)
                    return job
            try:
                self.queue.push(job, enforce_bound=enforce_bound)
            except QueueFullError:
                self._count("serve.jobs_throttled")
                raise
            self._inflight[job.key] = job
            self._register(job)
            self._count("serve.jobs_accepted")
            self._gauge("serve.queue_depth", len(self.queue))
            self._journal_admit(job)
        return job

    def job(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job

    def jobs(self, limit: int = 200) -> List[Job]:
        """The most recent submissions, oldest first."""
        with self._lock:
            return [self._jobs[i] for i in self._order[-limit:]]

    def wait(self, job_id: str, timeout: float = 60.0) -> Job:
        """Block until the job reaches a terminal state (or *timeout*)."""
        job = self.job(job_id)
        deadline = time.monotonic() + timeout
        with self._done_cond:
            while not job.done:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"job {job_id} still {job.state.value}"
                        f" after {timeout:.1f}s"
                    )
                self._done_cond.wait(remaining)
        return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        snapshot = self.metrics.snapshot()
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state.value] = states.get(job.state.value, 0) + 1
            return {
                "status": "draining" if self._draining else "ok",
                "uptime_s": time.time() - self.started_at,
                "workers": len(self._workers),
                "queue_depth": len(self.queue),
                "jobs": states,
                "counters": {
                    name: value
                    for name, value in sorted(snapshot.counters.items())
                    if name.startswith("serve.")
                },
            }

    def metrics_snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    # ------------------------------------------------------------------
    # Payload parsing and the admission gate
    # ------------------------------------------------------------------

    def _parse_payload(self, payload: Dict[str, Any],
                       job_id: Optional[str] = None) -> Job:
        if not isinstance(payload, dict):
            raise BadRequestError("submission payload must be a JSON object")
        desc = None
        parse_diags: Tuple[Diagnostic, ...] = ()
        arch = payload.get("arch")
        source = payload.get("isdl")
        if (arch is None) == (source is None):
            raise BadRequestError(
                "submission needs exactly one of 'arch' or 'isdl'"
            )
        if arch is not None:
            from ..arch import ARCHITECTURES, description_for

            if arch not in ARCHITECTURES:
                raise BadRequestError(
                    f"unknown architecture {arch!r}"
                    f" (available: {', '.join(sorted(ARCHITECTURES))})"
                )
            desc = description_for(arch)
        else:
            from ..isdl import load_string

            try:
                desc = load_string(str(source), filename="<submitted>",
                                   validate=False)
            except IsdlSyntaxError as exc:
                parse_diags = (Diagnostic(
                    CODE_PARSE_ERROR, Severity.ERROR, exc.message,
                    location=exc.location,
                ),)
        workloads = tuple(payload.get("workloads") or ("sum",))
        try:
            kernels = tuple(resolve_kernels(list(workloads)))
        except CodegenError as exc:
            raise BadRequestError(str(exc)) from None
        weights_spec = payload.get("weights") or {}
        if not isinstance(weights_spec, dict):
            raise BadRequestError("'weights' must be an object")
        try:
            weights = CostWeights(
                runtime=float(weights_spec.get("runtime", 1.0)),
                area=float(weights_spec.get("area", 0.35)),
                power=float(weights_spec.get("power", 0.25)),
            )
        except (TypeError, ValueError):
            raise BadRequestError("'weights' values must be numbers") \
                from None
        backend = str(payload.get("backend",
                                  self.config.default_backend))
        if backend not in KNOWN_BACKENDS:
            raise BadRequestError(
                f"unknown backend {backend!r}"
                f" (available: {', '.join(KNOWN_BACKENDS)})"
            )
        try:
            max_steps = int(payload.get("max_steps",
                                        self.config.default_max_steps))
            priority = int(payload.get("priority", 0))
            timeout_s = float(payload.get("timeout_s",
                                          self.config.default_timeout_s))
        except (TypeError, ValueError):
            raise BadRequestError(
                "'max_steps'/'priority'/'timeout_s' must be numbers"
            ) from None
        if max_steps <= 0 or timeout_s <= 0:
            raise BadRequestError(
                "'max_steps' and 'timeout_s' must be positive"
            )
        label = str(payload.get("label")
                    or getattr(desc, "name", None) or arch or "<candidate>")
        strategy, strategy_params, strategy_diags = \
            self._parse_strategy(payload.get("strategy"))
        tech, tech_diags = self._parse_tech(payload.get("tech"))
        parse_diags = parse_diags + strategy_diags + tech_diags
        key = None
        if desc is not None:
            key = (
                fingerprint(desc),
                tuple(kernel_fingerprint(k) for k in kernels),
                backend,
                (weights.runtime, weights.area, weights.power),
                max_steps,
            )
            if strategy is not None:
                # a search over a description is a different unit of work
                # than measuring it; plain jobs keep the exact seed key
                key = key + (
                    "strategy", strategy,
                    tuple(sorted((k, repr(v))
                                 for k, v in strategy_params.items())),
                )
            if tech is not None:
                # tech-pinned jobs are a distinct unit of work; jobs
                # without the field keep the exact historical key shape
                key = key + (tech.cache_key,)
        return Job(
            id=job_id or new_job_id(self.config.shard_id),
            desc=desc, label=label, workloads=workloads,
            kernels=kernels, weights=weights, backend=backend,
            max_steps=max_steps, priority=priority, timeout_s=timeout_s,
            key=key, diagnostics=parse_diags,
            strategy=strategy, strategy_params=strategy_params,
            tech=tech,
        )

    def _parse_strategy(self, spec: Any) -> Tuple[
            Optional[str], Dict[str, Any], Tuple[Diagnostic, ...]]:
        """Validate the optional ``"strategy"`` object at admission.

        A structurally malformed spec (not an object, missing ``name``)
        is a :class:`BadRequestError` (400).  A well-formed spec naming
        an unknown strategy or passing parameters its factory rejects
        produces an SRV401 diagnostic naming the known strategies — the
        job is rejected on record (422) without costing a queue slot,
        mirroring the static-analysis gate.
        """
        if spec is None:
            return None, {}, ()
        if not isinstance(spec, dict) or not isinstance(
                spec.get("name"), str):
            raise BadRequestError(
                "'strategy' must be an object with a string 'name'"
                " (and optional 'params' object)"
            )
        params = spec.get("params") or {}
        if not isinstance(params, dict):
            raise BadRequestError("'strategy'.'params' must be an object")
        name = spec["name"]
        factory_params = {k: v for k, v in params.items()
                          if k not in _DRIVER_PARAMS}
        try:
            for driver_param in _DRIVER_PARAMS:
                if driver_param in params:
                    int(params[driver_param])
            strategy_registry.get(name, **factory_params)
        except strategy_registry.UnknownStrategyError as exc:
            return None, {}, (Diagnostic(
                CODE_BAD_STRATEGY, Severity.ERROR, str(exc)),)
        except (TypeError, ValueError):
            return None, {}, (Diagnostic(
                CODE_BAD_STRATEGY, Severity.ERROR,
                f"driver parameters {_DRIVER_PARAMS} must be integers;"
                f" known strategies:"
                f" {', '.join(strategy_registry.available())}"),)
        return name, dict(params), ()

    def _parse_tech(self, spec: Any) -> Tuple[
            Optional[TechSpec], Tuple[Diagnostic, ...]]:
        """Validate the optional ``"tech"`` object at admission.

        A structurally malformed spec (not an object, non-integer node,
        non-positive budget) is a :class:`BadRequestError` (400).  A
        well-formed spec naming a node/flavor the scaling tables do not
        cover produces an SRV402 diagnostic naming every known point —
        the job is rejected on record (422) without costing a queue
        slot, mirroring the strategy gate.  Absent spec: byte-for-byte
        unchanged admission.
        """
        if spec is None:
            return None, ()
        try:
            return parse_tech(spec), ()
        except UnknownTechError as exc:
            return None, (Diagnostic(
                CODE_BAD_TECH, Severity.ERROR, str(exc)),)
        except ValueError as exc:
            raise BadRequestError(str(exc)) from None

    def _gate_diagnostics(self, job: Job
                          ) -> Optional[Tuple[Diagnostic, ...]]:
        """Run the repro.analyze validity gate; the full diagnostic list
        when it finds error-severity problems, None when the job may
        proceed (including when the analysis itself crashes — dispatch
        will record that failure the normal way)."""
        from ..analyze import check_static

        try:
            analysis = check_static(job.desc, cache=self.cache)
        except Exception:  # broad by design — gate must not block dispatch
            return None
        if analysis.ok():
            return None
        return tuple(analysis.diagnostics)

    def _reject(self, job: Job) -> Job:
        job.state = JobState.REJECTED
        errors = [d for d in job.diagnostics
                  if d.severity is Severity.ERROR]
        first = errors[0] if errors else job.diagnostics[0]
        more = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        job.error = (f"admission gate rejected description:"
                     f" {first.code}: {first.message}{more}")
        job.finished_at = time.time()
        with self._lock:
            self._register(job)
        self._count("serve.jobs_rejected")
        self._journal_result(job)
        return job

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job
        self._order.append(job.id)

    # ------------------------------------------------------------------
    # Journal hooks and replay
    # ------------------------------------------------------------------

    def _journal_admit(self, job: Job) -> None:
        if self.journal is not None and job.payload is not None:
            self.journal.admit(job.id, job.payload,
                               coalesced_with=job.coalesced_with)

    def _journal_result(self, job: Job) -> None:
        if self.journal is not None and job.restored is None:
            self.journal.result(job.id, job.to_dict(full=True))

    def _replay_journal(self) -> None:
        """Fold the previous run's journal: restore terminal records,
        re-admit live jobs under their original ids, compact the file."""
        self._replayed = True
        terminal, live = self.journal.load()
        self.journal.compact(terminal.values())
        with self._lock:
            for job_id, record in terminal.items():
                self._jobs[job_id] = _restored_job(job_id, record)
                self._order.append(job_id)
                self._count("serve.jobs_restored")
        for job_id, payload in live.items():
            try:
                self._admit(payload, job_id=job_id, enforce_bound=False)
                self._count("serve.jobs_replayed")
            except ReproError as exc:
                # e.g. an architecture that no longer exists: record the
                # failure under the original id so the client learns why
                stub = _restored_job(job_id, {
                    "id": job_id, "state": JobState.FAILED.value,
                    "error": f"journal replay failed: {exc}",
                })
                with self._lock:
                    self._jobs[job_id] = stub
                    self._order.append(job_id)
                self._count("serve.jobs_failed")

    # ------------------------------------------------------------------
    # Worker pool
    # ------------------------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            batch = self.queue.pop_batch(self.config.batch_size)
            if batch is None:
                return
            self._gauge("serve.queue_depth", len(self.queue))
            try:
                self._run_batch(batch)
            except Exception as exc:  # broad by design — pool must survive
                self._count("serve.worker_errors")
                message = f"internal worker error: {_format_error(exc)}"
                for job in batch:
                    if not job.done:
                        self._finish(job, JobState.FAILED, error=message)

    def _run_batch(self, batch: List[Job]) -> None:
        """Evaluate a same-configuration batch with per-job timeouts.

        The attempt thread walks the batch in order; the monitor below
        watches its progress and abandons it the moment the *current*
        job exceeds its deadline.  Unstarted batch-mates go back to the
        queue unchanged, so one stuck evaluation never takes its
        neighbours down with it.
        """
        started: Dict[str, float] = {}
        done: Dict[str, Tuple[str, Any]] = {}
        progressed = threading.Event()
        abandoned = threading.Event()

        def attempt() -> None:
            for job in batch:
                if abandoned.is_set():
                    return
                with self._lock:
                    job.attempts += 1
                    if job.started_at is None:
                        job.started_at = time.time()
                    self._set_state(job, JobState.RUNNING)
                started[job.id] = time.monotonic()
                progressed.set()
                try:
                    done[job.id] = ("ok", self._execute(job))
                except Exception as exc:  # broad by design — failure capture
                    done[job.id] = ("error", _format_error(exc))
                progressed.set()

        thread = threading.Thread(target=attempt, daemon=True,
                                  name="repro-serve-eval")
        thread.start()
        for position, job in enumerate(batch):
            verdict = self._await_job(thread, job, started, done,
                                      progressed)
            if verdict == "timeout":
                abandoned.set()
                self._handle_timeout(job)
                self._requeue_rest(batch[position + 1:], started, done)
                return
            if verdict == "lost":  # attempt thread died without a record
                abandoned.set()
                self._count("serve.worker_errors")
                self._requeue_job(job, delay=0.0)
                self._requeue_rest(batch[position + 1:], started, done)
                return
            self._apply_result(job, done[job.id])

    def _await_job(self, thread: threading.Thread, job: Job,
                   started: Dict[str, float],
                   done: Dict[str, Tuple[str, Any]],
                   progressed: threading.Event) -> str:
        """Wait until *job* has a result ("done"), blew its deadline
        ("timeout"), or the attempt thread died on us ("lost")."""
        while True:
            if job.id in done:
                return "done"
            begun = started.get(job.id)
            now = time.monotonic()
            if begun is not None:
                remaining = begun + job.timeout_s - now
                if remaining <= 0:
                    return "timeout"
                wait = min(remaining, 0.25)
            else:
                if not thread.is_alive():
                    return "lost" if job.id not in done else "done"
                wait = 0.05
            progressed.wait(wait)
            progressed.clear()
            if not thread.is_alive() and job.id not in done \
                    and started.get(job.id) is not None:
                return "lost"

    def _execute(self, job: Job) -> Tuple[Any, Optional[str], bool]:
        """One evaluation attempt → (evaluation, error, cached)."""
        if self._evaluate_fn is not None:
            self._count("serve.evaluations_run")
            return self._evaluate_fn(job), None, False
        evaluator = self._evaluator_for(job)
        if job.strategy is not None:
            return self._explore(job, evaluator)
        request = EvalRequest(job.desc, label=job.label, tech=job.tech)
        result = evaluator.evaluate_many([request])[0]
        if not result.cached:
            self._count("serve.evaluations_run")
        return result.evaluation, result.error, result.cached

    def _explore(self, job: Job, evaluator: ParallelEvaluator
                 ) -> Tuple[Any, Optional[str], bool]:
        """Run a strategy job: a whole exploration over the shared
        evaluator; the result is the best candidate's evaluation plus an
        exploration summary on the job record."""
        params = dict(job.strategy_params)
        max_iterations = int(params.pop("max_iterations", 4))
        seed = int(params.pop("seed", 0))
        raw = params.pop("max_evaluations", None)
        max_evaluations = None if raw is None else int(raw)
        strategy = strategy_registry.get(job.strategy, **params)
        explorer = Explorer(list(job.kernels), job.weights,
                            evaluator=evaluator)
        log = explorer.explore(
            job.desc,
            max_iterations=max_iterations,
            strategy=strategy,
            seed=seed,
            max_evaluations=max_evaluations,
        )
        # the initial measurement plus every non-cached batch member
        self._count("serve.evaluations_run",
                    1 + log.evaluations - log.cache_hits)
        frontier = log.frontier()
        job.exploration = {
            "strategy": log.strategy,
            "iterations": log.iterations,
            "evaluations": log.evaluations,
            "cache_hits": log.cache_hits,
            "improvement": log.improvement,
            "best": {
                "derived_by": log.best.derived_by,
                "cost": log.best.cost(job.weights),
                "fingerprint": fingerprint(log.best.desc),
            },
            "frontier": [
                {
                    "label": candidate.evaluation.name,
                    "derived_by": candidate.derived_by,
                    "cost": candidate.cost(job.weights),
                }
                for candidate in frontier
            ],
            "trajectories": [
                {
                    "label": trajectory.label,
                    "steps": max(0, len(trajectory.accepted) - 1),
                    "cache_hits": trajectory.cache_hits,
                    "cache_misses": trajectory.cache_misses,
                }
                for trajectory in log.trajectories
            ],
        }
        return log.best.evaluation, None, False

    def _evaluator_for(self, job: Job) -> ParallelEvaluator:
        """The shared per-configuration evaluator (bounded LRU)."""
        key = job.config_key
        with self._lock:
            evaluator = self._evaluators.get(key)
            if evaluator is not None:
                self._evaluators.move_to_end(key)
                return evaluator
            evaluator = ParallelEvaluator(
                list(job.kernels),
                weights=job.weights,
                cache=self.cache,
                max_steps=job.max_steps,
                mode="serial",
                sim_backend=job.backend,
                static_check=False,  # the admission gate already ran
                memoize=self.config.share_evaluations,
                tech=job.tech,
            )
            self._evaluators[key] = evaluator
            evicted = []
            while len(self._evaluators) > self.config.max_evaluators:
                _, old = self._evaluators.popitem(last=False)
                evicted.append(old)
        for old in evicted:
            old.shutdown()
        return evaluator

    # ------------------------------------------------------------------
    # Completion, retries, cancellation
    # ------------------------------------------------------------------

    def _apply_result(self, job: Job,
                      outcome: Tuple[str, Any]) -> None:
        kind, value = outcome
        if kind == "error":
            self._finish(job, JobState.FAILED, error=value)
            return
        evaluation, error, cached = value
        if error is not None:
            self._finish(job, JobState.FAILED, error=error)
        else:
            self._finish(job, JobState.SUCCEEDED, evaluation=evaluation,
                         cached=cached)

    def _handle_timeout(self, job: Job) -> None:
        if job.attempts < self.config.max_attempts:
            delay = self.config.retry_backoff_s * (2 ** (job.attempts - 1))
            self._count("serve.jobs_retried")
            self._requeue_job(job, delay=delay)
        else:
            self._count("serve.jobs_timeout")
            self._finish(
                job, JobState.FAILED,
                error=(f"evaluation timed out after {job.timeout_s:.1f}s"
                       f" (attempt {job.attempts}"
                       f"/{self.config.max_attempts})"),
            )

    def _requeue_rest(self, rest: List[Job], started: Dict[str, float],
                      done: Dict[str, Tuple[str, Any]]) -> None:
        """Batch-mates behind a timed-out/lost job: apply any result the
        attempt thread already produced, re-queue the rest unharmed."""
        for job in rest:
            if job.id in done:
                self._apply_result(job, done[job.id])
            else:
                self._requeue_job(job, delay=0.0)

    def _requeue_job(self, job: Job, delay: float) -> None:
        """Put an already-accepted job back on the queue (never dropped
        for depth); a stopped queue cancels it instead."""
        with self._lock:
            self._set_state(job, JobState.QUEUED)
        try:
            self.queue.push(job, not_before=time.monotonic() + delay,
                            enforce_bound=False)
            self._gauge("serve.queue_depth", len(self.queue))
        except ServiceUnavailableError:
            self._cancel(job, "cancelled: service shut down during retry")

    def _cancel(self, job: Job, message: str) -> None:
        self._count("serve.jobs_cancelled")
        self._finish(job, JobState.CANCELLED, error=message)

    def _finish(self, job: Job, state: JobState, *,
                evaluation: Any = None, error: Optional[str] = None,
                cached: bool = False) -> None:
        """Terminal transition: record the outcome, fan it out to the
        followers coalesced onto this job, release the in-flight key."""
        with self._lock:
            if job.done:
                return  # a late write from an abandoned attempt thread
            job.evaluation = evaluation
            job.error = error
            job.cached = cached
            job.finished_at = time.time()
            self._set_state(job, state)
            followers = list(job.followers)
            if job.key is not None and self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            for follower in followers:
                follower.evaluation = evaluation
                follower.error = error
                follower.exploration = job.exploration
                follower.cached = True if evaluation is not None else cached
                follower.started_at = job.started_at
                follower.finished_at = job.finished_at
                self._set_state(follower, state)
            self._journal_result(job)
            for follower in followers:
                self._journal_result(follower)
            self._done_cond.notify_all()
        if state is JobState.SUCCEEDED:
            self._count("serve.jobs_completed", 1 + len(followers))
        elif state is JobState.FAILED:
            self._count("serve.jobs_failed", 1 + len(followers))
        elif state is JobState.CANCELLED and followers:
            self._count("serve.jobs_cancelled", len(followers))
        if job.started_at is not None and job.finished_at is not None:
            self._observe("serve.job_seconds",
                          max(0.0, job.finished_at - job.created_at))

    def _set_state(self, job: Job, state: JobState) -> None:
        previous = job.state
        job.state = state
        if (self.journal is not None and not state.terminal
                and state is not previous and job.restored is None):
            self.journal.state(job.id, state.value, attempts=job.attempts)

    # ------------------------------------------------------------------
    # Metrics plumbing (own registry + the global obs facade)
    # ------------------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.add(name, amount)
        obs.add(name, amount)

    def _gauge(self, name: str, value: float) -> None:
        self.metrics.set(name, value)
        obs.gauge_set(name, value)

    def _observe(self, name: str, value: float) -> None:
        self.metrics.observe(name, value)
        obs.observe(name, value)


def _format_error(exc: BaseException) -> str:
    return traceback.format_exception_only(type(exc), exc)[-1].strip()


def _restored_job(job_id: str, record: Dict[str, Any]) -> Job:
    """A read-only stub serving a journal-restored terminal record."""
    try:
        state = JobState(record.get("state", "failed"))
    except ValueError:
        state = JobState.FAILED
    return Job(
        id=job_id, desc=None,
        label=str(record.get("label", "<restored>")),
        workloads=tuple(record.get("workloads") or ()), kernels=(),
        weights=CostWeights(), backend=str(record.get("backend", "xsim")),
        max_steps=0, state=state, restored=record,
        created_at=record.get("created_at") or time.time(),
        finished_at=record.get("finished_at"),
        error=record.get("error"),
    )
