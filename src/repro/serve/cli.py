"""``repro-serve`` — run and talk to the evaluation service.

Three subcommands::

    repro-serve serve  --port 8651 --workers 4        # run the daemon
    repro-serve submit --url http://127.0.0.1:8651 \\
                 --arch spam2 --workload sum:40 --wait
    repro-serve status --url http://127.0.0.1:8651 [JOB_ID]

``serve`` blocks until SIGINT/SIGTERM, then drains gracefully:
in-flight evaluations finish, queued jobs are reported as cancelled.

``submit`` exit codes: 0 job succeeded (or accepted with ``--no-wait``),
1 failed/cancelled, 2 rejected by the admission gate (the ISDLxxx
diagnostics are printed), 3 backpressure retries exhausted.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from typing import List, Optional

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Long-running ISDL evaluation service.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the evaluation daemon")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8651)
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="backpressure bound on queued jobs")
    serve.add_argument("--batch-size", type=int, default=4)
    serve.add_argument("--cache-entries", type=int, default=2048)
    serve.add_argument("--cache-disk", metavar="PATH", default=None,
                       help="persistent disk layer for the artifact cache")
    serve.add_argument("--max-attempts", type=int, default=3)
    serve.add_argument("--default-timeout", type=float, default=60.0,
                       metavar="SECONDS")
    serve.add_argument("--no-coalesce", action="store_true",
                       help="disable in-flight request coalescing")
    serve.add_argument("--no-static-check", action="store_true",
                       help="disable the repro.analyze admission gate")
    serve.add_argument("--obs", action="store_true",
                       help="also mirror metrics into the global"
                            " repro.obs registry")

    submit = sub.add_parser("submit", help="submit one evaluation job")
    submit.add_argument("--url", default="http://127.0.0.1:8651")
    target = submit.add_mutually_exclusive_group(required=True)
    target.add_argument("--arch", help="built-in architecture name")
    target.add_argument("--isdl", metavar="FILE",
                        help="ISDL description file to submit")
    submit.add_argument("--workload", action="append", default=[],
                        metavar="SPEC",
                        help="workload kernel spec 'name[:size]'"
                             " (repeatable; default sum)")
    submit.add_argument("--weights", default="1.0,0.35,0.25",
                        metavar="RT,AREA,POWER")
    submit.add_argument("--backend", default="xsim",
                        choices=("xsim", "block", "compiled"))
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--timeout", type=float, default=60.0,
                        help="per-job evaluation timeout (seconds)")
    submit.add_argument("--max-steps", type=int, default=500_000)
    submit.add_argument("--label", default=None)
    submit.add_argument("--strategy", default=None, metavar="NAME",
                        help="run an exploration from the description"
                             " instead of one measurement (greedy,"
                             " multistart, population, pareto)")
    submit.add_argument("--strategy-param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="strategy parameter, repeatable (e.g."
                             " max_iterations=4, restarts=3,"
                             " frontier_cap=6)")
    submit.add_argument("--tech-node", type=int, default=None,
                        metavar="NM",
                        help="pin the measurement to a scaled technology"
                             " node (45/32/22/16/10)")
    submit.add_argument("--tech-flavor", default="HP",
                        metavar="FLAVOR",
                        help="technology flavor at --tech-node"
                             " (HP or LP; default HP)")
    submit.add_argument("--power-budget", type=float, default=None,
                        metavar="MW",
                        help="total power budget in mW; the service"
                             " solves the max-frequency operating point"
                             " under it (needs --tech-node)")
    submit.add_argument("--wait", dest="wait", action="store_true",
                        default=True,
                        help="poll until the job finishes (default)")
    submit.add_argument("--no-wait", dest="wait", action="store_false")
    submit.add_argument("--json", action="store_true",
                        help="print the raw job record as JSON")

    status = sub.add_parser("status",
                            help="service health or one job's record")
    status.add_argument("--url", default="http://127.0.0.1:8651")
    status.add_argument("job_id", nargs="?", default=None)
    status.add_argument("--json", action="store_true")
    return parser


# ---------------------------------------------------------------------------
# serve
# ---------------------------------------------------------------------------


def _cmd_serve(args: argparse.Namespace) -> int:
    from .. import obs
    from .http import make_server
    from .service import EvaluationService, ServiceConfig

    if args.obs:
        obs.enable()
    config = ServiceConfig(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        cache_entries=args.cache_entries,
        disk_path=args.cache_disk,
        max_attempts=args.max_attempts,
        default_timeout_s=args.default_timeout,
        coalesce=not args.no_coalesce,
        static_check=not args.no_static_check,
    )
    service = EvaluationService(config)
    server = make_server(service, args.host, args.port)
    stop = threading.Event()

    def _on_signal(signum, frame):  # unused args: signal signature
        stop.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    print(f"repro-serve listening on {server.url} "
          f"({config.workers} workers, queue depth"
          f" {config.max_queue_depth})", flush=True)
    serving = threading.Thread(target=server.serve_forever, daemon=True)
    serving.start()
    stop.wait()
    print("repro-serve: draining (in-flight jobs finish, queued jobs"
          " are cancelled)...", flush=True)
    server.shutdown_service(drain=True)
    serving.join(timeout=10.0)
    health = service.health()
    print(f"repro-serve: stopped; jobs by state: {health['jobs']}",
          flush=True)
    return 0


# ---------------------------------------------------------------------------
# submit / status
# ---------------------------------------------------------------------------


def _parse_weights(text: str) -> dict:
    parts = text.split(",")
    if len(parts) != 3:
        raise SystemExit(
            f"--weights must be RT,AREA,POWER; got {text!r}"
        )
    try:
        runtime, area, power = (float(p) for p in parts)
    except ValueError:
        raise SystemExit(f"--weights values must be numbers: {text!r}") \
            from None
    return {"runtime": runtime, "area": area, "power": power}


def _parse_strategy_params(pairs: List[str]) -> dict:
    params: dict = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise SystemExit(
                f"--strategy-param must be KEY=VALUE; got {pair!r}"
            )
        try:
            params[key] = int(value)
        except ValueError:
            try:
                params[key] = float(value)
            except ValueError:
                params[key] = value
    return params


def _print_job(record: dict, as_json: bool) -> None:
    if as_json:
        print(json.dumps(record, indent=2, sort_keys=True))
        return
    state = record["state"]
    line = f"job {record['id']}: {state}"
    if record.get("coalesced_with"):
        line += f" (coalesced with {record['coalesced_with']})"
    print(line)
    result = record.get("result")
    if result is not None:
        if result.get("feasible"):
            print(f"  {record.get('label', '?')}:"
                  f" {result['cycles']} cycles,"
                  f" {result['runtime_us']:.2f} µs,"
                  f" die {result['die_size']:,.0f} cells,"
                  f" {result['power_mw']:.1f} mW,"
                  f" cost {result['cost']:,.1f}")
            tech = result.get("tech")
            if tech:
                line = (f"  tech: {tech['node']} nm {tech['flavor']},"
                        f" {tech['vdd']:.2f} V")
                if tech.get("budget_mw") is not None:
                    line += f", budget {tech['budget_mw']:g} mW"
                if tech.get("capped"):
                    line += " (capped)"
                print(line)
        else:
            print(f"  infeasible: {result.get('reason')}")
    exploration = record.get("exploration")
    if exploration is not None:
        print(f"  exploration [{exploration['strategy']}]:"
              f" {exploration['iterations']} iteration(s),"
              f" {exploration['evaluations']} evaluation(s)"
              f" ({exploration['cache_hits']} cached),"
              f" {exploration['improvement']:.2f}x improvement")
        best = exploration.get("best") or {}
        if best:
            print(f"  best: [{best.get('derived_by')}]"
                  f" cost {best.get('cost', 0):,.1f}")
        frontier = exploration.get("frontier") or []
        if len(frontier) > 1:
            print(f"  frontier ({len(frontier)} point(s)):")
            for point in frontier:
                print(f"    [{point['derived_by']}]"
                      f" cost {point['cost']:,.1f}")
    if record.get("error"):
        print(f"  error: {record['error']}")
    for diagnostic in record.get("diagnostics", ()):
        print(f"  {diagnostic['severity']} {diagnostic['code']}:"
              f" {diagnostic['message']}")


def _cmd_submit(args: argparse.Namespace) -> int:
    from .client import BackpressureError, ServeClient, ServeClientError

    payload = {
        "workloads": args.workload or ["sum"],
        "weights": _parse_weights(args.weights),
        "backend": args.backend,
        "priority": args.priority,
        "timeout_s": args.timeout,
        "max_steps": args.max_steps,
    }
    if args.label:
        payload["label"] = args.label
    if args.strategy:
        payload["strategy"] = {
            "name": args.strategy,
            "params": _parse_strategy_params(args.strategy_param),
        }
    elif args.strategy_param:
        raise SystemExit("--strategy-param needs --strategy")
    if args.tech_node is not None:
        tech = {"node": args.tech_node, "flavor": args.tech_flavor}
        if args.power_budget is not None:
            tech["budget_mw"] = args.power_budget
        payload["tech"] = tech
    elif args.power_budget is not None:
        raise SystemExit("--power-budget needs --tech-node")
    elif args.tech_flavor != "HP":
        raise SystemExit("--tech-flavor needs --tech-node")
    if args.arch:
        payload["arch"] = args.arch
    else:
        try:
            with open(args.isdl, "r", encoding="utf-8") as handle:
                payload["isdl"] = handle.read()
        except OSError as exc:
            print(f"cannot read {args.isdl}: {exc}", file=sys.stderr)
            return 1
    client = ServeClient(args.url)
    try:
        if args.wait:
            record = client.submit_and_wait(payload)
        else:
            record = client.submit(payload)
    except BackpressureError as exc:
        print(f"backpressure: {exc}", file=sys.stderr)
        return 3
    except (ServeClientError, TimeoutError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    _print_job(record, args.json)
    state = record["state"]
    if state == "rejected":
        return 2
    if state in ("failed", "cancelled"):
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .client import ServeClient, ServeClientError

    client = ServeClient(args.url)
    try:
        if args.job_id:
            record = client.job(args.job_id)
            _print_job(record, args.json)
            return 0
        health = client.health()
    except ServeClientError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(health, indent=2, sort_keys=True))
        return 0
    print(f"status: {health['status']}, uptime {health['uptime_s']:.0f}s,"
          f" {health['workers']} workers,"
          f" queue depth {health['queue_depth']}")
    if health.get("jobs"):
        jobs = ", ".join(f"{state}={count}" for state, count
                         in sorted(health["jobs"].items()))
        print(f"jobs: {jobs}")
    for name, value in health.get("counters", {}).items():
        print(f"  {name:<28} {value:g}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    return _cmd_status(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
