"""Job records and the bounded priority queue of the evaluation service.

A :class:`Job` is the unit of work a client submits: one candidate
description plus the workload/backend/weight configuration to measure it
under.  Jobs move through a small, explicit lifecycle::

    queued ──▶ running ──▶ succeeded
       │          │  └────▶ failed          (error / timeout exhausted)
       │          └─(timeout, retries left)─▶ queued
       ├─▶ cancelled                        (drained while queued)
       └─  rejected                         (admission gate, never queued)

Coalesced followers never enter the queue at all: they reference their
leader job and receive a copy of its terminal state (see
:mod:`repro.serve.service`).

:class:`JobQueue` is a heap-based priority queue with three properties
the service needs and ``queue.PriorityQueue`` does not give us together:
a hard depth bound that *raises* (:class:`QueueFullError` — the HTTP
layer turns it into a 429) instead of blocking the acceptor thread,
per-entry ``not_before`` delays for retry backoff, and a batch pop that
groups ready jobs sharing an evaluator configuration.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analyze.diagnostics import Diagnostic
from ..errors import ReproError
from ..explore.metrics import CostWeights, Evaluation

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "ServiceUnavailableError",
    "new_job_id",
]


class QueueFullError(ReproError):
    """The job queue is at its configured depth bound (HTTP 429)."""


class ServiceUnavailableError(ReproError):
    """The service is draining or stopped and accepts no new jobs (503)."""


class JobState(str, enum.Enum):
    """Lifecycle states of a job record."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    REJECTED = "rejected"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.REJECTED,
     JobState.CANCELLED}
)


def new_job_id() -> str:
    """A short, URL-safe, collision-resistant job identifier."""
    return secrets.token_hex(8)


@dataclass
class Job:
    """One submitted evaluation with its full lifecycle record."""

    id: str
    desc: Any  # ast.Description (kept loose: jobs never pickle)
    label: str
    workloads: Tuple[str, ...]
    kernels: Tuple[Any, ...]  # resolved codegen Kernels, submission order
    weights: CostWeights
    backend: str
    max_steps: int
    priority: int = 0
    timeout_s: float = 60.0
    #: the coalescing key (shared with the service; None when disabled)
    key: Optional[Tuple] = None
    state: JobState = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    diagnostics: Tuple[Diagnostic, ...] = ()
    evaluation: Optional[Evaluation] = None
    #: leader job id when this submission coalesced onto an in-flight twin
    coalesced_with: Optional[str] = None
    #: follower jobs to fan the terminal state out to (leader side)
    followers: List["Job"] = field(default_factory=list)
    #: True when the terminal evaluation came from the warm cache
    cached: bool = False
    #: exploration-strategy name when the job runs a search instead of a
    #: single measurement (validated at admission; None = plain job)
    strategy: Optional[str] = None
    strategy_params: Dict[str, Any] = field(default_factory=dict)
    #: exploration summary attached to a terminal strategy job
    exploration: Optional[Dict[str, Any]] = None

    @property
    def done(self) -> bool:
        return self.state.terminal

    @property
    def config_key(self) -> Tuple:
        """What must match for two jobs to share one evaluator/batch."""
        return (self.workloads, (self.weights.runtime, self.weights.area,
                                 self.weights.power),
                self.backend, self.max_steps)

    def to_dict(self, full: bool = True) -> Dict[str, Any]:
        """The job's wire representation (JSON-serializable)."""
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state.value,
            "label": self.label,
            "workloads": list(self.workloads),
            "backend": self.backend,
            "priority": self.priority,
            "created_at": self.created_at,
        }
        if self.coalesced_with is not None:
            payload["coalesced_with"] = self.coalesced_with
        if self.strategy is not None:
            payload["strategy"] = {"name": self.strategy,
                                   "params": dict(self.strategy_params)}
        if not full:
            return payload
        payload.update(
            max_steps=self.max_steps,
            timeout_s=self.timeout_s,
            attempts=self.attempts,
            started_at=self.started_at,
            finished_at=self.finished_at,
            cached=self.cached,
        )
        if self.error is not None:
            payload["error"] = self.error
        if self.diagnostics:
            payload["diagnostics"] = [d.to_dict() for d in self.diagnostics]
        if self.evaluation is not None:
            payload["result"] = _evaluation_dict(self.evaluation,
                                                 self.weights)
        if self.exploration is not None:
            payload["exploration"] = dict(self.exploration)
        return payload


def _evaluation_dict(evaluation: Evaluation,
                     weights: CostWeights) -> Dict[str, Any]:
    if not evaluation.feasible:
        return {"feasible": False, "reason": evaluation.reason,
                "cost": None}
    return {
        "feasible": True,
        "cycles": evaluation.cycles,
        "stall_cycles": evaluation.stall_cycles,
        "cycle_ns": evaluation.cycle_ns,
        "runtime_us": evaluation.runtime_us,
        "die_size": evaluation.die_size,
        "power_mw": evaluation.power_mw,
        "cost": evaluation.cost(weights),
        "per_kernel_cycles": dict(evaluation.per_kernel_cycles),
        "fingerprint": evaluation.fingerprint,
    }


class JobQueue:
    """Bounded priority queue with retry delays and config-batched pops.

    Entries are ``(not_before, -priority, seq, job)`` heap tuples: higher
    ``priority`` pops first, FIFO within a priority level, and an entry
    whose ``not_before`` lies in the future (a retry backing off) is
    invisible until its time comes.  ``max_depth`` bounds queued — not
    running — jobs; :meth:`push` raises :class:`QueueFullError` at the
    bound so the acceptor can answer 429 instead of blocking.
    """

    def __init__(self, max_depth: int = 64):
        if max_depth < 1:
            raise ValueError("queue depth bound must be >= 1")
        self.max_depth = max_depth
        self._heap: List[Tuple[float, int, int, Job]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._stopped = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._heap)

    def push(self, job: Job, not_before: float = 0.0,
             enforce_bound: bool = True) -> None:
        """Queue *job*; raises :class:`QueueFullError` at the depth bound.

        Retries re-entering the queue pass ``enforce_bound=False``: a job
        the service already accepted must never be dropped because newer
        submissions filled the queue behind it.
        """
        with self._cond:
            if self._stopped:
                raise ServiceUnavailableError("job queue is stopped")
            if enforce_bound and len(self._heap) >= self.max_depth:
                raise QueueFullError(
                    f"job queue is full ({self.max_depth} queued)"
                )
            heapq.heappush(
                self._heap,
                (not_before, -job.priority, next(self._seq), job),
            )
            self._cond.notify()

    def pop_batch(self, batch_size: int = 1,
                  timeout: Optional[float] = None) -> Optional[List[Job]]:
        """Block for the next ready job; greedily add up to
        ``batch_size - 1`` more ready jobs sharing its ``config_key``.

        Returns None when the queue was stopped and nothing ready remains
        (or *timeout* elapsed).  Jobs with a different configuration stay
        queued in order.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            first = self._wait_for_ready(deadline)
            if first is None:
                return None
            batch = [first]
            skipped: List[Tuple[float, int, int, Job]] = []
            while (len(batch) < batch_size and self._heap
                   and self._heap[0][0] <= time.monotonic()):
                entry = heapq.heappop(self._heap)
                if entry[3].config_key == first.config_key:
                    batch.append(entry[3])
                else:
                    skipped.append(entry)
            for entry in skipped:
                heapq.heappush(self._heap, entry)
            return batch

    def _wait_for_ready(self, deadline: Optional[float]) -> Optional[Job]:
        """Pop the first ready entry, waiting out delays and empty spells."""
        while True:
            now = time.monotonic()
            if self._heap and self._heap[0][0] <= now:
                return heapq.heappop(self._heap)[3]
            if self._stopped:
                return None
            if self._heap:
                wait = self._heap[0][0] - now
            elif deadline is not None:
                wait = deadline - now
            else:
                wait = None
            if deadline is not None:
                wait = min(wait, deadline - now) if wait is not None \
                    else deadline - now
                if wait <= 0:
                    return None
            self._cond.wait(wait)

    def drain(self) -> List[Job]:
        """Stop the queue and return every still-queued job (any delay)."""
        with self._cond:
            self._stopped = True
            drained = [entry[3] for entry in sorted(self._heap)]
            self._heap.clear()
            self._cond.notify_all()
            return drained

    @property
    def stopped(self) -> bool:
        with self._cond:
            return self._stopped
