"""Job records and the bounded priority queue of the evaluation service.

A :class:`Job` is the unit of work a client submits: one candidate
description plus the workload/backend/weight configuration to measure it
under.  Jobs move through a small, explicit lifecycle::

    queued ──▶ running ──▶ succeeded
       │          │  └────▶ failed          (error / timeout exhausted)
       │          └─(timeout, retries left)─▶ queued
       ├─▶ cancelled                        (drained while queued)
       └─  rejected                         (admission gate, never queued)

Coalesced followers never enter the queue at all: they reference their
leader job and receive a copy of its terminal state (see
:mod:`repro.serve.service`).

:class:`JobQueue` is a heap-based priority queue with three properties
the service needs and ``queue.PriorityQueue`` does not give us together:
a hard depth bound that *raises* (:class:`QueueFullError` — the HTTP
layer turns it into a 429) instead of blocking the acceptor thread,
per-entry ``not_before`` delays for retry backoff, and a batch pop that
groups ready jobs sharing an evaluator configuration.

Ready ordering is ``(-priority, seq)`` where ``seq`` is assigned on the
*first* push and sticks to the job for life: a job that times out and is
re-queued re-enters ahead of every same-priority submission that arrived
after it, so retries cannot starve behind a steady stream of fresh work.
``not_before`` only controls *visibility* (a retry backing off stays
hidden until its time comes), never ready-order.
"""

from __future__ import annotations

import enum
import heapq
import itertools
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..analyze.diagnostics import Diagnostic
from ..errors import ReproError
from ..explore.metrics import CostWeights, Evaluation
from ..tech.model import TechSpec

__all__ = [
    "Job",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "ServiceUnavailableError",
    "new_job_id",
    "shard_of_job_id",
]


class QueueFullError(ReproError):
    """The job queue is at its configured depth bound (HTTP 429)."""


class ServiceUnavailableError(ReproError):
    """The service is draining or stopped and accepts no new jobs (503)."""


class JobState(str, enum.Enum):
    """Lifecycle states of a job record."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    REJECTED = "rejected"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in _TERMINAL


_TERMINAL = frozenset(
    {JobState.SUCCEEDED, JobState.FAILED, JobState.REJECTED,
     JobState.CANCELLED}
)


def new_job_id(shard: Optional[str] = None) -> str:
    """A short, URL-safe, collision-resistant job identifier.

    With *shard* the id is prefixed ``<shard>-<hex>`` so a cluster router
    can route ``GET /v1/jobs/<id>`` to the shard that owns the record
    without any shared state (see :mod:`repro.cluster`).
    """
    token = secrets.token_hex(8)
    return f"{shard}-{token}" if shard else token


def shard_of_job_id(job_id: str) -> Optional[str]:
    """The shard prefix of a shard-aware job id (None for plain ids)."""
    prefix, sep, rest = job_id.rpartition("-")
    return prefix if sep and rest else None


@dataclass
class Job:
    """One submitted evaluation with its full lifecycle record."""

    id: str
    desc: Any  # ast.Description (kept loose: jobs never pickle)
    label: str
    workloads: Tuple[str, ...]
    kernels: Tuple[Any, ...]  # resolved codegen Kernels, submission order
    weights: CostWeights
    backend: str
    max_steps: int
    priority: int = 0
    timeout_s: float = 60.0
    #: the coalescing key (shared with the service; None when disabled)
    key: Optional[Tuple] = None
    state: JobState = JobState.QUEUED
    created_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: Optional[str] = None
    diagnostics: Tuple[Diagnostic, ...] = ()
    evaluation: Optional[Evaluation] = None
    #: leader job id when this submission coalesced onto an in-flight twin
    coalesced_with: Optional[str] = None
    #: follower jobs to fan the terminal state out to (leader side)
    followers: List["Job"] = field(default_factory=list)
    #: True when the terminal evaluation came from the warm cache
    cached: bool = False
    #: exploration-strategy name when the job runs a search instead of a
    #: single measurement (validated at admission; None = plain job)
    strategy: Optional[str] = None
    strategy_params: Dict[str, Any] = field(default_factory=dict)
    #: exploration summary attached to a terminal strategy job
    exploration: Optional[Dict[str, Any]] = None
    #: technology/budget axis validated at admission (None = baseline)
    tech: Optional[TechSpec] = None
    #: queue sequence number, assigned on first push and preserved across
    #: requeues so a retried job keeps its place in line
    seq: Optional[int] = None
    #: the original submission payload (verbatim JSON object) — what the
    #: journal records so a restarted service can re-admit the job
    payload: Optional[Dict[str, Any]] = None
    #: terminal wire record restored from the journal of a previous run;
    #: when set the job is a read-only stub and to_dict() serves it as-is
    restored: Optional[Dict[str, Any]] = None

    @property
    def done(self) -> bool:
        return self.state.terminal

    @property
    def config_key(self) -> Tuple:
        """What must match for two jobs to share one evaluator/batch."""
        key = (self.workloads, (self.weights.runtime, self.weights.area,
                                self.weights.power),
               self.backend, self.max_steps)
        if self.tech is not None:
            # appended only when set: tech-free jobs keep the exact
            # historical key shape (and batch exactly as before)
            key = key + (self.tech.cache_key,)
        return key

    def to_dict(self, full: bool = True) -> Dict[str, Any]:
        """The job's wire representation (JSON-serializable)."""
        if self.restored is not None:
            record = dict(self.restored)
            record["id"] = self.id
            record["state"] = self.state.value
            record["restored"] = True
            return record
        payload: Dict[str, Any] = {
            "id": self.id,
            "state": self.state.value,
            "label": self.label,
            "workloads": list(self.workloads),
            "backend": self.backend,
            "priority": self.priority,
            "created_at": self.created_at,
        }
        if self.coalesced_with is not None:
            payload["coalesced_with"] = self.coalesced_with
        if self.strategy is not None:
            payload["strategy"] = {"name": self.strategy,
                                   "params": dict(self.strategy_params)}
        if self.tech is not None:
            tech: Dict[str, Any] = {"node": self.tech.node_nm,
                                    "flavor": self.tech.flavor}
            if self.tech.budget_mw is not None:
                tech["budget_mw"] = self.tech.budget_mw
            payload["tech"] = tech
        if not full:
            return payload
        payload.update(
            max_steps=self.max_steps,
            timeout_s=self.timeout_s,
            attempts=self.attempts,
            started_at=self.started_at,
            finished_at=self.finished_at,
            cached=self.cached,
        )
        if self.error is not None:
            payload["error"] = self.error
        if self.diagnostics:
            payload["diagnostics"] = [d.to_dict() for d in self.diagnostics]
        if self.evaluation is not None:
            payload["result"] = _evaluation_dict(self.evaluation,
                                                 self.weights)
        if self.exploration is not None:
            payload["exploration"] = dict(self.exploration)
        return payload


def _evaluation_dict(evaluation: Evaluation,
                     weights: CostWeights) -> Dict[str, Any]:
    if not evaluation.feasible:
        return {"feasible": False, "reason": evaluation.reason,
                "cost": None}
    record = {
        "feasible": True,
        "cycles": evaluation.cycles,
        "stall_cycles": evaluation.stall_cycles,
        "cycle_ns": evaluation.cycle_ns,
        "runtime_us": evaluation.runtime_us,
        "die_size": evaluation.die_size,
        "power_mw": evaluation.power_mw,
        "cost": evaluation.cost(weights),
        "per_kernel_cycles": dict(evaluation.per_kernel_cycles),
        "fingerprint": evaluation.fingerprint,
    }
    # getattr: evaluations unpickled from pre-tech caches lack the fields
    node = getattr(evaluation, "tech_node", None)
    if node is not None:
        record["tech"] = {
            "node": node,
            "flavor": getattr(evaluation, "tech_flavor", None),
            "vdd": getattr(evaluation, "vdd", None),
            "budget_mw": getattr(evaluation, "budget_mw", None),
            "capped": getattr(evaluation, "power_capped", False),
        }
    return record


class JobQueue:
    """Bounded priority queue with retry delays and config-batched pops.

    Two heaps: the *ready* heap is ordered ``(-priority, seq)`` — higher
    ``priority`` pops first, first-assigned ``seq`` first within a level —
    and the *delayed* heap is ordered by ``not_before`` and feeds the
    ready heap as entries mature.  A job's ``seq`` is assigned on its
    first push and preserved across requeues, so a timed-out-and-retried
    job re-enters ahead of later same-priority arrivals instead of
    starving behind them.  ``max_depth`` bounds queued — not running —
    jobs; :meth:`push` raises :class:`QueueFullError` at the bound so the
    acceptor can answer 429 instead of blocking.
    """

    def __init__(self, max_depth: int = 64):
        if max_depth < 1:
            raise ValueError("queue depth bound must be >= 1")
        self.max_depth = max_depth
        self._ready: List[Tuple[int, int, Job]] = []
        self._delayed: List[Tuple[float, int, Job]] = []
        self._seq = itertools.count()
        self._cond = threading.Condition()
        self._stopped = False

    def __len__(self) -> int:
        with self._cond:
            return len(self._ready) + len(self._delayed)

    def push(self, job: Job, not_before: float = 0.0,
             enforce_bound: bool = True) -> None:
        """Queue *job*; raises :class:`QueueFullError` at the depth bound.

        Retries re-entering the queue pass ``enforce_bound=False``: a job
        the service already accepted must never be dropped because newer
        submissions filled the queue behind it.
        """
        with self._cond:
            if self._stopped:
                raise ServiceUnavailableError("job queue is stopped")
            if (enforce_bound
                    and len(self._ready) + len(self._delayed)
                    >= self.max_depth):
                raise QueueFullError(
                    f"job queue is full ({self.max_depth} queued)"
                )
            if job.seq is None:
                job.seq = next(self._seq)
            if not_before <= time.monotonic():
                heapq.heappush(self._ready, (-job.priority, job.seq, job))
            else:
                heapq.heappush(self._delayed, (not_before, job.seq, job))
            self._cond.notify()

    def _promote(self, now: float) -> None:
        """Move matured delayed entries onto the ready heap."""
        while self._delayed and self._delayed[0][0] <= now:
            _, seq, job = heapq.heappop(self._delayed)
            heapq.heappush(self._ready, (-job.priority, seq, job))

    def pop_batch(self, batch_size: int = 1,
                  timeout: Optional[float] = None) -> Optional[List[Job]]:
        """Block for the next ready job; greedily add up to
        ``batch_size - 1`` more ready jobs sharing its ``config_key``.

        Returns None when the queue was stopped and nothing ready remains
        (or *timeout* elapsed).  Jobs with a different configuration stay
        queued in order.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            first = self._wait_for_ready(deadline)
            if first is None:
                return None
            batch = [first]
            skipped: List[Tuple[int, int, Job]] = []
            self._promote(time.monotonic())
            while len(batch) < batch_size and self._ready:
                entry = heapq.heappop(self._ready)
                if entry[2].config_key == first.config_key:
                    batch.append(entry[2])
                else:
                    skipped.append(entry)
            for entry in skipped:
                heapq.heappush(self._ready, entry)
            return batch

    def _wait_for_ready(self, deadline: Optional[float]) -> Optional[Job]:
        """Pop the first ready entry, waiting out delays and empty spells."""
        while True:
            now = time.monotonic()
            self._promote(now)
            if self._ready:
                return heapq.heappop(self._ready)[2]
            if self._stopped:
                return None
            if self._delayed:
                wait: Optional[float] = self._delayed[0][0] - now
            elif deadline is not None:
                wait = deadline - now
            else:
                wait = None
            if deadline is not None:
                wait = min(wait, deadline - now) if wait is not None \
                    else deadline - now
                if wait <= 0:
                    return None
            self._cond.wait(wait)

    def drain(self) -> List[Job]:
        """Stop the queue and return every still-queued job (any delay)."""
        with self._cond:
            self._stopped = True
            entries = ([(seq, job) for _, seq, job in self._ready]
                       + [(seq, job) for _, seq, job in self._delayed])
            drained = [job for _, job in sorted(entries,
                                                key=lambda e: e[0])]
            self._ready.clear()
            self._delayed.clear()
            self._cond.notify_all()
            return drained

    @property
    def stopped(self) -> bool:
        with self._cond:
            return self._stopped
