"""repro.serve — the long-running evaluation service.

The Figure-1 loop as a shared daemon: many concurrent clients submit
candidate ISDL descriptions as jobs over a small JSON HTTP API, and one
persistent worker pool measures them against a single shared
:class:`~repro.cache.ArtifactCache`, with in-flight request coalescing,
a :mod:`repro.analyze` admission gate, bounded-queue backpressure,
per-job timeouts with retry, and graceful drain.  See
:mod:`repro.serve.service` for the design notes and
:mod:`repro.serve.http` for the wire protocol.

Typical in-process use (tests, benchmarks, notebooks)::

    from repro.serve import EvaluationService, ServiceConfig

    with EvaluationService(ServiceConfig(workers=2)) as service:
        job = service.submit({"arch": "spam2", "workloads": ["sum:40"]})
        service.wait(job.id)

and over HTTP::

    from repro.serve import ServeClient, serve_in_thread

    server, _ = serve_in_thread(service)
    client = ServeClient(server.url)
    record = client.submit_and_wait({"arch": "spam2"})

The console script is ``repro-serve`` (:mod:`repro.serve.cli`).
"""

from .client import BackpressureError, ServeClient, ServeClientError
from .http import ServeHTTPServer, make_server, serve_in_thread
from .jobs import (
    Job,
    JobQueue,
    JobState,
    QueueFullError,
    ServiceUnavailableError,
    shard_of_job_id,
)
from .journal import JobJournal
from .service import (
    BadRequestError,
    EvaluationService,
    ServiceConfig,
    UnknownJobError,
)

__all__ = [
    "BackpressureError",
    "BadRequestError",
    "EvaluationService",
    "Job",
    "JobJournal",
    "JobQueue",
    "JobState",
    "QueueFullError",
    "ServeClient",
    "ServeClientError",
    "ServeHTTPServer",
    "ServiceConfig",
    "ServiceUnavailableError",
    "UnknownJobError",
    "make_server",
    "serve_in_thread",
    "shard_of_job_id",
]
