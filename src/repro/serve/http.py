"""The JSON-over-HTTP front of the evaluation service.

Standard library only: a :class:`http.server.ThreadingHTTPServer` whose
handler translates the wire protocol into
:class:`~repro.serve.service.EvaluationService` calls.  Endpoints:

=======  ==================  ===========================================
method   path                meaning
=======  ==================  ===========================================
POST     ``/v1/jobs``        submit a job (202 accepted / 202 coalesced,
                             422 rejected-with-diagnostics, 429 queue
                             full, 400 malformed, 503 draining)
GET      ``/v1/jobs/<id>``   one job's full record (404 unknown)
GET      ``/v1/jobs``        recent submissions, brief records
GET      ``/healthz``        liveness + queue/worker/job-state summary
                             (503 while draining)
GET      ``/metrics``        the service registry in Prometheus text
                             exposition format
=======  ==================  ===========================================

Error responses are JSON objects with an ``"error"`` key.  The handler
threads are I/O only — all evaluation work stays on the service's own
worker pool — so a slow client never blocks a measurement.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..obs.export import prometheus_text
from .jobs import QueueFullError, ServiceUnavailableError
from .service import BadRequestError, EvaluationService, UnknownJobError

__all__ = ["ServeHTTPServer", "make_server", "serve_in_thread"]

#: request bodies above this size are refused outright (413)
MAX_BODY_BYTES = 4 * 1024 * 1024


class ServeHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`EvaluationService`."""

    daemon_threads = True
    allow_reuse_address = True
    # headers and body land in separate writes; without TCP_NODELAY the
    # Nagle/delayed-ACK interaction stalls every response ~40 ms
    disable_nagle_algorithm = True
    # the default listen backlog of 5 drops SYNs when a client burst
    # connects at once, costing each dropped connect a ~1 s retransmit
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int],
                 service: EvaluationService):
        super().__init__(address, _Handler)
        self.service = service

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        if ":" in host:  # bare IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{port}"

    def shutdown_service(self, drain: bool = True,
                         timeout: float = 30.0) -> None:
        """Graceful stop: drain the service, then stop serving HTTP."""
        self.service.shutdown(drain=drain, timeout=timeout)
        self.shutdown()


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    # -- routing ---------------------------------------------------------

    def do_POST(self) -> None:  # http.server's required casing
        if self.path.rstrip("/") == "/v1/jobs":
            self._submit()
        else:
            self._send_error(404, f"no such endpoint: POST {self.path}")

    def do_GET(self) -> None:  # http.server's required casing
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._health()
        elif path == "/metrics":
            self._metrics()
        elif path.rstrip("/") == "/v1/jobs":
            self._list_jobs()
        elif path.startswith("/v1/jobs/"):
            self._job_status(path[len("/v1/jobs/"):].strip("/"))
        else:
            self._send_error(404, f"no such endpoint: GET {path}")

    # -- endpoints -------------------------------------------------------

    def _submit(self) -> None:
        payload = self._read_json()
        if payload is None:
            return
        service: EvaluationService = self.server.service
        try:
            job = service.submit(payload)
        except BadRequestError as exc:
            self._send_error(400, str(exc))
            return
        except QueueFullError as exc:
            self._send_json(
                429,
                {"error": str(exc),
                 "queue_depth": len(service.queue)},
                headers={"Retry-After": "1"},
            )
            return
        except ServiceUnavailableError as exc:
            self._send_error(503, str(exc))
            return
        status = 422 if job.state.value == "rejected" else 202
        self._send_json(status, job.to_dict(full=True))

    def _job_status(self, job_id: str) -> None:
        try:
            job = self.server.service.job(job_id)
        except UnknownJobError as exc:
            self._send_error(404, str(exc))
            return
        self._send_json(200, job.to_dict(full=True))

    def _list_jobs(self) -> None:
        jobs = self.server.service.jobs()
        self._send_json(200, {
            "jobs": [job.to_dict(full=False) for job in jobs],
        })

    def _health(self) -> None:
        health = self.server.service.health()
        status = 503 if health["status"] == "draining" else 200
        self._send_json(status, health)

    def _metrics(self) -> None:
        body = prometheus_text(
            self.server.service.metrics_snapshot()
        ).encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type",
                         "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    # -- plumbing --------------------------------------------------------

    def _read_json(self) -> Optional[Dict[str, Any]]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if length <= 0:
            self._send_error(400, "missing request body")
            return None
        if length > MAX_BODY_BYTES:
            # drain the declared body (bounded) so the client finishes
            # its send and reads the 413 instead of dying on EPIPE,
            # then drop the connection
            remaining = min(length, 4 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = self.rfile.read(min(remaining, 65536))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            self._send_error(413, "request body too large")
            return None
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._send_error(400, f"request body is not valid JSON: {exc}")
            return None
        if not isinstance(payload, dict):
            self._send_error(400, "request body must be a JSON object")
            return None
        return payload

    def _send_json(self, status: int, payload: Dict[str, Any],
                   headers: Optional[Dict[str, str]] = None) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def log_message(self, format: str, *args) -> None:  # base-class name
        pass  # request logging is the service metrics' job, not stderr's


def make_server(service: EvaluationService, host: str = "127.0.0.1",
                port: int = 0) -> ServeHTTPServer:
    """Bind (port 0 picks a free one) and start the service's workers."""
    server = ServeHTTPServer((host, port), service)
    service.start()
    return server


def serve_in_thread(service: EvaluationService, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[ServeHTTPServer,
                                            threading.Thread]:
    """Run the HTTP server on a daemon thread (tests, benchmarks)."""
    server = make_server(service, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-http", daemon=True)
    thread.start()
    return server, thread
