"""Durable job journal: accepted work survives a service crash.

The journal is an append-only JSONL file (one JSON object per line)
under the service's data directory recording three event kinds::

    {"event": "admitted", "id": ..., "ts": ..., "payload": {...}}
    {"event": "state",    "id": ..., "ts": ..., "state": "running", ...}
    {"event": "result",   "id": ..., "ts": ..., "record": {...}}

``admitted`` carries the submission payload verbatim (it arrived as JSON,
so it serializes losslessly); ``record`` is the job's terminal wire
representation (``Job.to_dict``).  On startup :meth:`JobJournal.load`
folds the log: a job with a ``result`` is *terminal* — its record is kept
so clients can still resolve the id — and an ``admitted`` job without one
is *live* and gets re-submitted by the service with its original id, so a
queued or running job survives a SIGKILL mid-evaluation.

Durability model: every append is flushed to the OS (``fsync`` is opt-in
via ``fsync=True`` — the default trades the last few events under a
*machine* crash for not paying a disk sync per transition; a *process*
crash loses nothing).  A truncated final line — the signature of a kill
mid-append — is skipped on load, like the artifact cache treats a
truncated pickle as a miss.

Compaction happens at load time: :meth:`compact` rewrites the file with
only the most recent terminal records (atomic temp-file + ``os.replace``,
same recipe as the cache's disk layer), so the journal stays proportional
to the retained history instead of growing with every transition forever.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterable, Optional, TextIO, Tuple

__all__ = ["JobJournal"]


class JobJournal:
    """Append-only JSONL journal of job admissions, states, and results.

    Thread-safe; all I/O is best-effort — a journal write failure never
    fails the job it describes (the in-memory service keeps working, the
    ``dropped`` counter records the gap).
    """

    def __init__(self, path: str, fsync: bool = False,
                 keep_terminal: int = 512):
        self.path = path
        self.fsync = fsync
        #: terminal records retained across a compaction
        self.keep_terminal = keep_terminal
        #: appends that failed to serialize or reach the file
        self.dropped = 0
        #: lines skipped as corrupt/truncated during the last load
        self.corrupt_lines = 0
        self._lock = threading.Lock()
        self._handle: Optional[TextIO] = None
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------

    def admit(self, job_id: str, payload: Dict[str, Any],
              coalesced_with: Optional[str] = None) -> None:
        event = {"event": "admitted", "id": job_id, "payload": payload}
        if coalesced_with is not None:
            event["coalesced_with"] = coalesced_with
        self._append(event)

    def state(self, job_id: str, state: str, attempts: int = 0) -> None:
        self._append({"event": "state", "id": job_id, "state": state,
                      "attempts": attempts})

    def result(self, job_id: str, record: Dict[str, Any]) -> None:
        self._append({"event": "result", "id": job_id, "record": record})

    def _append(self, event: Dict[str, Any]) -> None:
        event["ts"] = time.time()
        try:
            line = json.dumps(event, sort_keys=True,
                              default=_best_effort_json)
        except (TypeError, ValueError):
            self.dropped += 1
            return
        with self._lock:
            try:
                handle = self._open()
                handle.write(line + "\n")
                handle.flush()
                if self.fsync:
                    os.fsync(handle.fileno())
            except OSError:
                self.dropped += 1

    def _open(self) -> TextIO:
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a", encoding="utf-8")
        return self._handle

    def close(self) -> None:
        with self._lock:
            if self._handle is not None and not self._handle.closed:
                try:
                    self._handle.close()
                except OSError:
                    pass
            self._handle = None

    # ------------------------------------------------------------------
    # Replay
    # ------------------------------------------------------------------

    def load(self) -> Tuple[Dict[str, Dict[str, Any]],
                            Dict[str, Dict[str, Any]]]:
        """Fold the journal into ``(terminal_records, live_payloads)``.

        Both map job id → dict in file (i.e. admission) order: terminal
        records are the ``record`` of the job's last ``result`` event,
        live payloads the ``payload`` of an ``admitted`` job that never
        reached a result.  Corrupt lines (a truncated final append from a
        killed process) are counted in ``corrupt_lines`` and skipped.
        """
        terminal: Dict[str, Dict[str, Any]] = {}
        live: Dict[str, Dict[str, Any]] = {}
        self.corrupt_lines = 0
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return terminal, live
        except OSError:
            self.corrupt_lines += 1
            return terminal, live
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                self.corrupt_lines += 1
                continue
            if not isinstance(event, dict):
                self.corrupt_lines += 1
                continue
            kind = event.get("event")
            job_id = event.get("id")
            if not isinstance(job_id, str):
                continue
            if kind == "admitted" and isinstance(event.get("payload"),
                                                 dict):
                if job_id not in terminal:
                    live[job_id] = event["payload"]
            elif kind == "result" and isinstance(event.get("record"),
                                                 dict):
                terminal[job_id] = event["record"]
                live.pop(job_id, None)
        return terminal, live

    def compact(self, terminal: Iterable[Dict[str, Any]]) -> None:
        """Rewrite the journal keeping only the newest terminal records.

        Atomic (temp file + ``os.replace``); the append handle is
        reopened so subsequent events land in the compacted file.
        """
        records = list(terminal)[-self.keep_terminal:]
        tmp = f"{self.path}.tmp.{os.getpid()}.{threading.get_ident()}"
        with self._lock:
            try:
                with open(tmp, "w", encoding="utf-8") as handle:
                    for record in records:
                        line = json.dumps(
                            {"event": "result", "id": record.get("id"),
                             "ts": time.time(), "record": record},
                            sort_keys=True, default=_best_effort_json,
                        )
                        handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, self.path)
            except OSError:
                self.dropped += 1
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
            finally:
                if self._handle is not None and not self._handle.closed:
                    try:
                        self._handle.close()
                    except OSError:
                        pass
                self._handle = None


def _best_effort_json(value: Any) -> Any:
    """Last-resort serializer so an odd payload value (a tuple-keyed
    dict never, but e.g. a Path or Enum) degrades to its repr instead of
    dropping the whole event."""
    return repr(value)
