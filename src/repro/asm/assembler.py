"""The retargetable assembler (paper Fig. 1 and ref [3]).

The assembler is generated from the machine description: operation syntax
templates define the surface language, the bitfield assignments define the
assembly function.  Nothing here is architecture-specific.

Source format
-------------
* one instruction per line; VLIW operations separated by ``|``;
* ``;`` starts a comment;
* ``label:`` defines a label (optionally followed by an instruction);
* directives: ``.org ADDR`` sets the location counter, ``.equ NAME VALUE``
  defines a symbol;
* immediate operands are expressions over integers, labels, ``.`` (the
  current instruction address), ``+`` and ``-`` — so a PC-relative branch is
  written ``beq loop - .``.

Assembly is two-pass: pass 1 matches every line against the operation
templates and assigns addresses; pass 2 resolves symbols, range-checks token
values, validates the ISDL constraints for every VLIW combination, and runs
the assembly function.
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..encoding.signature import Operand, SignatureTable
from ..errors import (
    AssemblerError,
    ConstraintViolation,
    EncodingError,
    SourceLocation,
)
from ..isdl import ast

# ---------------------------------------------------------------------------
# Assembly-line lexing
# ---------------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<id>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<int>0[xX][0-9a-fA-F_]+|0[bB][01_]+|\d[\d_]*)
  | (?P<punct>[.,()#+\-|:\[\]@*])
    """,
    re.VERBOSE,
)


def _lex_line(text: str, location: SourceLocation) -> List[Tuple[str, str]]:
    """Tokenize one assembly line into (kind, text) pairs."""
    tokens: List[Tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise AssemblerError(
                f"unexpected character {text[pos]!r}", location
            )
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        tokens.append((kind, match.group()))
    return tokens


def _parse_int(text: str) -> int:
    text = text.replace("_", "")
    if text.lower().startswith("0x"):
        return int(text, 16)
    if text.lower().startswith("0b"):
        return int(text, 2)
    return int(text, 10)


# ---------------------------------------------------------------------------
# Deferred immediate expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ImmExpr:
    """``±term ± term ...`` over ints, labels and ``.`` (here-address)."""

    terms: Tuple[Tuple[int, object], ...]  # (sign, int | str | ".")

    def evaluate(self, symbols: Dict[str, int], here: int,
                 location: SourceLocation) -> int:
        total = 0
        for sign, term in self.terms:
            if isinstance(term, int):
                value = term
            elif term == ".":
                value = here
            else:
                if term not in symbols:
                    raise AssemblerError(
                        f"undefined symbol {term!r}", location
                    )
                value = symbols[term]
            total += sign * value
        return total


# ---------------------------------------------------------------------------
# Template compilation
# ---------------------------------------------------------------------------

_PLACEHOLDER_RE = re.compile(r"%([A-Za-z_][A-Za-z_0-9]*)")


def _compile_template(template: str, params: Sequence[ast.Param],
                      where: str) -> List[object]:
    """Split a syntax template into literal tokens and Param slots."""
    by_name = {p.name: p for p in params}
    items: List[object] = []
    pos = 0
    dummy = SourceLocation("<template>", 1, 1)
    for match in _PLACEHOLDER_RE.finditer(template):
        literal = template[pos : match.start()]
        items.extend(("lit", t) for _, t in _lex_line(literal, dummy))
        name = match.group(1)
        if name not in by_name:
            raise AssemblerError(
                f"{where}: syntax template references unknown parameter"
                f" %{name}"
            )
        items.append(by_name[name])
        pos = match.end()
    items.extend(
        ("lit", t) for _, t in _lex_line(template[pos:], dummy)
    )
    return items


# ---------------------------------------------------------------------------
# Assembler
# ---------------------------------------------------------------------------


@dataclass
class AssembledProgram:
    """Assembler output: raw words plus the symbol table and a listing."""

    words: List[int]
    origin: int
    symbols: Dict[str, int]
    listing: List[str] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.words)


@dataclass
class _Line:
    """A pass-1 instruction: matched operations with unresolved operands."""

    address: int
    size: int
    location: SourceLocation
    text: str
    # (field_name, op_name, {param: raw operand}) per VLIW part
    parts: List[Tuple[str, str, Dict[str, object]]] = field(
        default_factory=list
    )


class Assembler:
    """A retargetable assembler bound to one machine description."""

    def __init__(self, desc: ast.Description,
                 table: Optional[SignatureTable] = None):
        self.desc = desc
        self.table = table or SignatureTable(desc)
        self._op_templates: List[Tuple[str, ast.Operation, List[object]]] = []
        for fld in desc.fields:
            for op in fld.operations:
                template = op.syntax or ast.default_syntax(op.name, op.params)
                items = _compile_template(
                    template, op.params, f"{fld.name}.{op.name}"
                )
                self._op_templates.append((fld.name, op, items))
        self._nt_templates: Dict[str, List[Tuple[ast.NtOption, List[object]]]] = {}
        for nt in desc.nonterminals.values():
            entries = []
            for option in nt.options:
                template = option.syntax or ", ".join(
                    f"%{p.name}" for p in option.params
                )
                entries.append(
                    (
                        option,
                        _compile_template(
                            template, option.params, f"{nt.name}.{option.label}"
                        ),
                    )
                )
            self._nt_templates[nt.name] = entries

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def assemble(self, source: str, filename: str = "<asm>") -> AssembledProgram:
        with obs.span("asm.assemble", file=filename):
            lines, symbols, origin, top = self._pass1(source, filename)
            return self._pass2(lines, symbols, origin, top)

    def assemble_file(self, path: str) -> AssembledProgram:
        with open(path, "r", encoding="utf-8") as handle:
            return self.assemble(handle.read(), filename=path)

    # ------------------------------------------------------------------
    # Pass 1 — parse, match templates, lay out addresses
    # ------------------------------------------------------------------

    def _pass1(self, source, filename):
        symbols: Dict[str, int] = {}
        lines: List[_Line] = []
        address = 0
        origin: Optional[int] = None
        top = 0
        for lineno, raw in enumerate(source.splitlines(), start=1):
            location = SourceLocation(filename, lineno, 1)
            text = raw.split(";", 1)[0].strip()
            if not text:
                continue
            tokens = _lex_line(text, location)
            # Labels (possibly several) at line start.
            while (
                len(tokens) >= 2
                and tokens[0][0] == "id"
                and tokens[1] == ("punct", ":")
            ):
                label = tokens[0][1]
                if label in symbols:
                    raise AssemblerError(
                        f"duplicate label {label!r}", location
                    )
                symbols[label] = address
                tokens = tokens[2:]
            if not tokens:
                continue
            if tokens[0] == ("punct", "."):
                address, origin = self._directive(
                    tokens, symbols, address, origin, location
                )
                top = max(top, address)
                continue
            if origin is None:
                origin = address
            line = self._match_instruction(tokens, address, location, text)
            lines.append(line)
            address += line.size
            top = max(top, address)
        if origin is None:
            origin = 0
        return lines, symbols, origin, top

    def _directive(self, tokens, symbols, address, origin, location):
        if len(tokens) < 2 or tokens[1][0] != "id":
            raise AssemblerError("malformed directive", location)
        name = tokens[1][1]
        rest = tokens[2:]
        if name == "org":
            if len(rest) != 1 or rest[0][0] != "int":
                raise AssemblerError(".org needs one integer", location)
            new_address = _parse_int(rest[0][1])
            if origin is None:
                origin = new_address
            return new_address, origin
        if name == "equ":
            if (
                len(rest) != 2
                or rest[0][0] != "id"
                or rest[1][0] != "int"
            ):
                raise AssemblerError(".equ needs NAME VALUE", location)
            symbols[rest[0][1]] = _parse_int(rest[1][1])
            return address, origin
        raise AssemblerError(f"unknown directive .{name}", location)

    def _match_instruction(self, tokens, address, location, text) -> _Line:
        parts_tokens = self._split_parts(tokens)
        line = _Line(address, 1, location, text)
        used_fields = set()
        for part in parts_tokens:
            matched = self._match_part(part, used_fields, location)
            field_name, op, operands = matched
            used_fields.add(field_name)
            line.parts.append((field_name, op.name, operands))
            line.size = max(line.size, op.costs.size)
        return line

    @staticmethod
    def _split_parts(tokens):
        parts: List[List[Tuple[str, str]]] = [[]]
        for token in tokens:
            if token == ("punct", "|"):
                parts.append([])
            else:
                parts[-1].append(token)
        return parts

    def _match_part(self, tokens, used_fields, location):
        failures = []
        for field_name, op, items in self._op_templates:
            if field_name in used_fields:
                continue
            operands: Dict[str, object] = {}
            pos = self._match_items(tokens, 0, items, operands, location)
            if pos is not None and pos == len(tokens):
                return field_name, op, operands
            if pos is not None:
                failures.append(f"{field_name}.{op.name}: trailing operands")
        raise AssemblerError(
            "no operation matches "
            + " ".join(t for _, t in tokens)
            + (f" ({'; '.join(failures)})" if failures else ""),
            location,
        )

    def _match_items(self, tokens, pos, items, operands, location,
                     item_index: int = 0):
        """Match template items against tokens with backtracking.

        Non-terminal options and immediate expressions can match the same
        prefix in several ways (``(X)`` vs ``(X)+``; ``a + b`` as one
        expression or split around a literal ``+``), so every alternative
        is tried until the rest of the template also matches.  Returns the
        end position or None.
        """
        if item_index == len(items):
            return pos
        item = items[item_index]
        if isinstance(item, tuple):  # literal
            if pos >= len(tokens) or not self._literal_matches(
                tokens[pos], item[1]
            ):
                return None
            return self._match_items(
                tokens, pos + 1, items, operands, location, item_index + 1
            )
        for end, value in self._operand_candidates(tokens, pos, item, location):
            operands[item.name] = value
            result = self._match_items(
                tokens, end, items, operands, location, item_index + 1
            )
            if result is not None:
                return result
            operands.pop(item.name, None)
        return None

    @staticmethod
    def _literal_matches(token, literal_text) -> bool:
        kind, text = token
        if kind == "id":
            return text.lower() == literal_text.lower()
        return text == literal_text

    # ------------------------------------------------------------------
    # Operand matching
    # ------------------------------------------------------------------

    def _operand_candidates(self, tokens, pos, param: ast.Param, location):
        """Yield every (end, value) way to read one operand at *pos*."""
        ptype = self.desc.param_type(param)
        if isinstance(ptype, ast.TokenDef):
            if ptype.kind is ast.TokenKind.IMMEDIATE:
                yield from self._imm_candidates(tokens, pos)
                return
            result = self._match_token_operand(tokens, pos, ptype, location)
            if result is not None:
                yield result
            return
        # Non-terminal: each option that matches is a candidate.  Longer
        # matches first so greedy modes like ``(X)+`` beat ``(X)``.
        matches = []
        for option, items in self._nt_templates[ptype.name]:
            sub_operands: Dict[str, object] = {}
            end = self._match_items(tokens, pos, items, sub_operands, location)
            if end is not None:
                matches.append((end, (option.label, sub_operands)))
        matches.sort(key=lambda pair: -pair[0])
        yield from matches

    def _match_token_operand(self, tokens, pos, token_def, location):
        if token_def.kind is ast.TokenKind.PREFIXED:
            if pos >= len(tokens) or tokens[pos][0] != "id":
                return None
            text = tokens[pos][1]
            prefix = token_def.prefix
            if not text.lower().startswith(prefix.lower()):
                return None
            suffix = text[len(prefix) :]
            if not suffix.isdigit():
                return None
            value = int(suffix)
            if not token_def.lo <= value <= token_def.hi:
                return None
            return pos + 1, value
        if token_def.kind is ast.TokenKind.ENUM:
            if pos >= len(tokens) or tokens[pos][0] != "id":
                return None
            for symbol, value in token_def.symbols:
                if tokens[pos][1].lower() == symbol.lower():
                    return pos + 1, value
            return None
        return None  # immediates are handled by _imm_candidates

    def _imm_candidates(self, tokens, pos):
        """Yield (end, ImmExpr) candidates, longest expression first."""
        terms: List[Tuple[int, int, object]] = []  # (end, sign, term)
        sign = 1
        start = pos
        if pos < len(tokens) and tokens[pos] in (("punct", "-"), ("punct", "+")):
            sign = -1 if tokens[pos][1] == "-" else 1
            start = pos + 1
        term = self._match_imm_term(tokens, start)
        if term is None:
            return
        end, value = term
        terms.append((end, sign, value))
        while end < len(tokens) and tokens[end] in (
            ("punct", "+"),
            ("punct", "-"),
        ):
            sign = 1 if tokens[end][1] == "+" else -1
            term = self._match_imm_term(tokens, end + 1)
            if term is None:
                break  # the +/- belongs to surrounding syntax
            end, value = term
            terms.append((end, sign, value))
        # Longest-first: each prefix of the term list is a valid expression.
        for count in range(len(terms), 0, -1):
            expr = ImmExpr(tuple((s, v) for _, s, v in terms[:count]))
            yield terms[count - 1][0], expr

    @staticmethod
    def _match_imm_term(tokens, pos):
        if pos >= len(tokens):
            return None
        kind, text = tokens[pos]
        if kind == "int":
            return pos + 1, _parse_int(text)
        if kind == "id":
            return pos + 1, text
        if (kind, text) == ("punct", "."):
            return pos + 1, "."
        return None

    # ------------------------------------------------------------------
    # Pass 2 — resolve, validate constraints, encode
    # ------------------------------------------------------------------

    def _pass2(self, lines, symbols, origin, top) -> AssembledProgram:
        length = top - origin
        words = [0] * length
        listing: List[str] = []
        for line in lines:
            selection = {fname: opname for fname, opname, _ in line.parts}
            violated = self.desc.violated_constraints(selection)
            if violated:
                raise ConstraintViolation(
                    f"instruction {line.text!r} violates"
                    f" {len(violated)} constraint(s)",
                    line.location,
                )
            word = 0
            for field_name, op_name, raw_operands in line.parts:
                op = self.desc.operation(field_name, op_name)
                operands = {
                    name: self._resolve_operand(value, symbols, line)
                    for name, value in raw_operands.items()
                }
                try:
                    word |= self.table.encode_operation(
                        field_name, op_name, operands
                    )
                except EncodingError as exc:
                    raise AssemblerError(str(exc), line.location) from exc
            offset = line.address - origin
            words[offset] = word
            listing.append(f"0x{line.address:04x}: 0x{word:0x}  {line.text}")
        return AssembledProgram(words, origin, symbols, listing)

    def _resolve_operand(self, value, symbols, line):
        if isinstance(value, ImmExpr):
            return value.evaluate(symbols, line.address, line.location)
        if isinstance(value, tuple) and len(value) == 2:
            label, sub = value
            return (
                label,
                {
                    name: self._resolve_operand(child, symbols, line)
                    for name, child in sub.items()
                },
            )
        return value


def assemble(desc: ast.Description, source: str,
             filename: str = "<asm>") -> AssembledProgram:
    """One-shot helper: assemble *source* for *desc*."""
    return Assembler(desc).assemble(source, filename)


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point: ``isdl-asm <description.isdl> <source.s>``."""
    from ..isdl import load_file

    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) < 2:
        print("usage: isdl-asm <description.isdl> <source.s> [out.hex]")
        return 2
    desc = load_file(argv[0])
    program = Assembler(desc).assemble_file(argv[1])
    out_lines = [f"{word:x}" for word in program.words]
    if len(argv) > 2:
        with open(argv[2], "w", encoding="utf-8") as handle:
            handle.write("\n".join(out_lines) + "\n")
    else:
        print("\n".join(out_lines))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
