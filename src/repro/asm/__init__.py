"""The retargetable assembler (paper Fig. 1, ref [3])."""

from .assembler import AssembledProgram, Assembler, assemble

__all__ = ["AssembledProgram", "Assembler", "assemble"]
