"""repro — ISDL-driven architecture exploration.

A reproduction of "A Methodology for Accurate Performance Evaluation in
Architecture Exploration" (Hadjiyiannis, Russo, Devadas; DAC 1999):
the ISDL machine description language, the GENSIM generator of
cycle-accurate bit-true instruction-level simulators (XSIM), the HGEN
hardware-synthesis system, and the surrounding exploration methodology.

Quickstart::

    from repro import load_string, generate_simulator, assemble
    desc = load_string(open("machine.isdl").read())
    sim = generate_simulator(desc)
    program = assemble(desc, open("program.s").read())
    sim.load_words(program.words, program.origin)
    sim.run_to_completion()
    print(sim.stats.report(desc))
"""

from .asm import AssembledProgram, Assembler, assemble
from .cache import ArtifactCache, CacheStats
from .gensim import Simulator, XSim, generate_simulator
from .hgen import HardwareModel, synthesize
from .isdl import (
    check,
    fingerprint,
    load_file,
    load_string,
    parse,
    print_description,
)
from .vsim import NetlistSimulator, cosimulate

__version__ = "1.1.0"

__all__ = [
    "AssembledProgram",
    "Assembler",
    "assemble",
    "ArtifactCache",
    "CacheStats",
    "Simulator",
    "XSim",
    "generate_simulator",
    "fingerprint",
    "HardwareModel",
    "synthesize",
    "check",
    "load_file",
    "load_string",
    "parse",
    "print_description",
    "NetlistSimulator",
    "cosimulate",
    "__version__",
]
