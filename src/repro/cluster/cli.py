"""``repro-cluster`` — run the sharded evaluation fleet.

Two subcommands::

    # a router over two externally-managed shards
    repro-cluster route --port 8650 \\
        --shard s0=http://127.0.0.1:8651 --shard s1=http://127.0.0.1:8652

    # or let the router spawn and supervise its own local fleet
    repro-cluster route --port 8650 --spawn 2 --data-dir /var/lib/repro

    # one worker shard (what --spawn runs under the hood)
    repro-cluster worker --shard-id s0 --port 8651 \\
        --data-dir /var/lib/repro

The router speaks the plain ``repro-serve`` wire protocol, so
``repro-serve submit --url http://127.0.0.1:8650 ...`` works unchanged.
Both subcommands block until SIGINT/SIGTERM and then drain gracefully.

Each worker keeps its state under ``<data-dir>/<shard-id>/``: the
job journal (``journal.jsonl``, replayed on restart), the shard's disk
artifact cache (``cache/``, lease-guarded), and ``worker.pid``.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
import threading
from typing import List, Optional

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="Fingerprint-sharded evaluation fleet.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser("route", help="run the cluster router")
    route.add_argument("--host", default="127.0.0.1")
    route.add_argument("--port", type=int, default=8650)
    route.add_argument("--shard", action="append", default=[],
                       metavar="[ID=]URL",
                       help="worker shard endpoint, repeatable; a bare"
                            " URL gets the id s<index>")
    route.add_argument("--spawn", type=int, default=0, metavar="N",
                       help="spawn and supervise N local worker shards"
                            " instead of joining existing ones")
    route.add_argument("--data-dir", default=None, metavar="PATH",
                       help="fleet state root (required with --spawn):"
                            " each shard keeps journal + cache under"
                            " PATH/<shard-id>/")
    route.add_argument("--probe-interval", type=float, default=1.0,
                       metavar="SECONDS")
    route.add_argument("--fail-threshold", type=int, default=2,
                       help="consecutive failed probes before a shard"
                            " is declared down and its jobs requeued")
    route.add_argument("--forward-timeout", type=float, default=60.0,
                       metavar="SECONDS")
    route.add_argument("--restart-workers", action="store_true",
                       help="with --spawn: resurrect workers that die"
                            " (their journal replays accepted jobs)")
    route.add_argument("--worker-workers", type=int, default=4,
                       metavar="N", help="threads per spawned worker")
    route.add_argument("--worker-queue-depth", type=int, default=64)

    worker = sub.add_parser("worker", help="run one worker shard")
    worker.add_argument("--shard-id", required=True,
                        help="this shard's stable identity (job-id"
                             " prefix and rendezvous label)")
    worker.add_argument("--host", default="127.0.0.1")
    worker.add_argument("--port", type=int, required=True)
    worker.add_argument("--data-dir", required=True, metavar="PATH",
                        help="state root; this shard uses"
                             " PATH/<shard-id>/")
    worker.add_argument("--workers", type=int, default=4)
    worker.add_argument("--queue-depth", type=int, default=64)
    worker.add_argument("--batch-size", type=int, default=4)
    worker.add_argument("--cache-entries", type=int, default=2048)
    worker.add_argument("--max-attempts", type=int, default=3)
    worker.add_argument("--default-timeout", type=float, default=60.0,
                        metavar="SECONDS")
    worker.add_argument("--journal-fsync", action="store_true",
                        help="fsync every journal append (durable"
                             " against power loss, slower)")
    worker.add_argument("--no-static-check", action="store_true")
    return parser


def _wait_for_signals() -> None:
    stop = threading.Event()

    def _on_signal(signum, frame):  # noqa: ARG001 — signal signature
        stop.set()

    signal.signal(signal.SIGINT, _on_signal)
    signal.signal(signal.SIGTERM, _on_signal)
    stop.wait()


# ---------------------------------------------------------------------------
# worker
# ---------------------------------------------------------------------------


def _cmd_worker(args: argparse.Namespace) -> int:
    from ..serve.http import make_server
    from ..serve.service import EvaluationService, ServiceConfig

    shard_dir = os.path.join(args.data_dir, args.shard_id)
    os.makedirs(shard_dir, exist_ok=True)
    config = ServiceConfig(
        workers=args.workers,
        max_queue_depth=args.queue_depth,
        batch_size=args.batch_size,
        cache_entries=args.cache_entries,
        disk_path=os.path.join(shard_dir, "cache"),
        max_attempts=args.max_attempts,
        default_timeout_s=args.default_timeout,
        static_check=not args.no_static_check,
        data_dir=shard_dir,
        shard_id=args.shard_id,
        journal_fsync=args.journal_fsync,
        cache_lease=True,
    )
    service = EvaluationService(config)
    server = make_server(service, args.host, args.port)
    pidfile = os.path.join(shard_dir, "worker.pid")
    with open(pidfile, "w", encoding="utf-8") as handle:
        handle.write(str(os.getpid()))
    print(f"repro-cluster worker {args.shard_id} listening on"
          f" {server.url} (journal: {shard_dir}/journal.jsonl)",
          flush=True)
    serving = threading.Thread(target=server.serve_forever, daemon=True)
    serving.start()
    _wait_for_signals()
    print(f"repro-cluster worker {args.shard_id}: draining...",
          flush=True)
    server.shutdown_service(drain=True)
    serving.join(timeout=10.0)
    try:
        os.unlink(pidfile)
    except OSError:
        pass
    return 0


# ---------------------------------------------------------------------------
# route
# ---------------------------------------------------------------------------


def _parse_shards(specs: List[str]) -> List["tuple[str, str]"]:
    shards = []
    for index, spec in enumerate(specs):
        shard_id, sep, url = spec.partition("=")
        if not sep:
            shard_id, url = f"s{index}", spec
        if not url.startswith(("http://", "https://")):
            raise SystemExit(f"--shard needs an http(s) URL: {spec!r}")
        shards.append((shard_id, url))
    return shards


def _cmd_route(args: argparse.Namespace) -> int:
    from .router import ClusterRouter, make_router_server
    from .shards import ShardTable

    if bool(args.spawn) == bool(args.shard):
        raise SystemExit("route needs --spawn N or --shard URL"
                         " (exactly one of them)")
    supervisor = None
    if args.spawn:
        if not args.data_dir:
            raise SystemExit("--spawn needs --data-dir")
        from .supervisor import Supervisor

        supervisor = Supervisor(
            count=args.spawn, data_dir=args.data_dir, host=args.host,
            worker_args=["--workers", str(args.worker_workers),
                         "--queue-depth",
                         str(args.worker_queue_depth)],
            restart=args.restart_workers,
        )
        supervisor.start()
        try:
            supervisor.wait_healthy()
        except Exception:
            supervisor.stop()
            raise
        shards = supervisor.shard_specs()
    else:
        shards = _parse_shards(args.shard)

    router = ClusterRouter(
        ShardTable(shards),
        probe_interval_s=args.probe_interval,
        fail_threshold=args.fail_threshold,
        forward_timeout_s=args.forward_timeout,
    )
    server = make_router_server(router, args.host, args.port)
    roster = ", ".join(f"{sid}={url}" for sid, url in shards)
    print(f"repro-cluster router listening on {server.url}"
          f" over {len(shards)} shard(s): {roster}", flush=True)

    tender: Optional[threading.Timer] = None
    if supervisor is not None and supervisor.restart:
        def _tend() -> None:
            nonlocal tender
            supervisor.tend()
            tender = threading.Timer(max(0.5, args.probe_interval),
                                     _tend)
            tender.daemon = True
            tender.start()

        _tend()

    serving = threading.Thread(target=server.serve_forever, daemon=True)
    serving.start()
    _wait_for_signals()
    print("repro-cluster router: shutting down...", flush=True)
    if tender is not None:
        tender.cancel()
    server.shutdown_router()
    serving.join(timeout=10.0)
    if supervisor is not None:
        supervisor.stop()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "worker":
        return _cmd_worker(args)
    return _cmd_route(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
