"""Local fleet supervisor: spawn and tend N worker-shard processes.

``repro-cluster route --spawn N`` uses this to own a whole local fleet:
each worker is a real OS process (its own GIL, its own toolchain) running
``repro-cluster worker`` with a shard id ``s0..sN-1``, a per-shard data
directory (journal + disk cache, leases on), and a port of its own.  The
supervisor knows how to wait for the fleet to come up, SIGTERM it down
(workers drain gracefully), and — with ``restart=True`` — resurrect a
worker that died, whose journal then replays its accepted jobs.

Also importable on its own: tests and benchmarks use it to stand up
multi-process fleets without the CLI.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import time
import urllib.error
import urllib.request
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Supervisor", "WorkerHandle", "free_ports"]


def free_ports(count: int, host: str = "127.0.0.1") -> List[int]:
    """*count* currently-free TCP ports.

    Best-effort (another process could grab one between here and the
    worker's bind); the sockets are held open until all are chosen so
    the ports are at least distinct.
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            sock.bind((host, 0))
            sockets.append(sock)
        return [sock.getsockname()[1] for sock in sockets]
    finally:
        for sock in sockets:
            sock.close()


@dataclass
class WorkerHandle:
    """One spawned worker shard."""

    shard_id: str
    port: int
    url: str
    data_dir: str
    process: Optional[subprocess.Popen] = None
    restarts: int = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None


@dataclass
class Supervisor:
    """Spawn/stop/restart a fleet of local worker shards."""

    count: int
    data_dir: str
    host: str = "127.0.0.1"
    #: extra repro-cluster worker arguments (e.g. ["--workers", "2"])
    worker_args: Sequence[str] = ()
    python: str = sys.executable
    env: Optional[Dict[str, str]] = None
    #: resurrect workers that die (their journal replays on restart)
    restart: bool = False
    workers: List[WorkerHandle] = field(default_factory=list)

    def start(self) -> List[WorkerHandle]:
        """Spawn the fleet; returns the handles (also in ``workers``)."""
        os.makedirs(self.data_dir, exist_ok=True)
        ports = free_ports(self.count, self.host)
        for index, port in enumerate(ports):
            handle = WorkerHandle(
                shard_id=f"s{index}", port=port,
                url=f"http://{self.host}:{port}",
                data_dir=self.data_dir,
            )
            self._spawn(handle)
            self.workers.append(handle)
        return self.workers

    def _spawn(self, handle: WorkerHandle) -> None:
        command = [
            self.python, "-m", "repro.cluster.cli", "worker",
            "--shard-id", handle.shard_id,
            "--host", self.host,
            "--port", str(handle.port),
            "--data-dir", handle.data_dir,
            *self.worker_args,
        ]
        handle.process = subprocess.Popen(
            command,
            env=self.env if self.env is not None else os.environ.copy(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def shard_specs(self) -> List[Tuple[str, str]]:
        """(shard id, url) pairs for a :class:`~repro.cluster.ShardTable`."""
        return [(w.shard_id, w.url) for w in self.workers]

    def wait_healthy(self, timeout_s: float = 60.0) -> None:
        """Block until every worker answers /healthz (or raise)."""
        deadline = time.monotonic() + timeout_s
        for handle in self.workers:
            while True:
                if self._healthy(handle.url):
                    break
                if not handle.alive():
                    raise RuntimeError(
                        f"worker {handle.shard_id} exited with"
                        f" {handle.process.returncode} before becoming"
                        f" healthy"
                    )
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"worker {handle.shard_id} ({handle.url}) not"
                        f" healthy after {timeout_s:.0f}s"
                    )
                time.sleep(0.1)

    @staticmethod
    def _healthy(url: str) -> bool:
        try:
            with urllib.request.urlopen(url + "/healthz",
                                        timeout=2.0) as response:
                json.loads(response.read().decode("utf-8"))
                return True
        except (urllib.error.URLError, OSError, ValueError):
            return False

    def tend(self) -> int:
        """One supervision pass: restart dead workers (when enabled);
        returns how many were restarted."""
        if not self.restart:
            return 0
        restarted = 0
        for handle in self.workers:
            if not handle.alive():
                self._spawn(handle)
                handle.restarts += 1
                restarted += 1
        return restarted

    def kill(self, shard_id: str,
             sig: int = signal.SIGKILL) -> Optional[int]:
        """Send *sig* to one worker (tests/chaos); its pid or None."""
        for handle in self.workers:
            if handle.shard_id == shard_id and handle.alive():
                handle.process.send_signal(sig)
                return handle.pid
        return None

    def stop(self, timeout_s: float = 15.0) -> None:
        """SIGTERM the fleet (graceful drain), SIGKILL stragglers."""
        for handle in self.workers:
            if handle.alive():
                handle.process.terminate()
        deadline = time.monotonic() + timeout_s
        for handle in self.workers:
            if handle.process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                handle.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait(timeout=5.0)

    def __enter__(self) -> "Supervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()
