"""The cluster router: the ``/v1/jobs`` API, fanned over worker shards.

The router speaks exactly the wire protocol of :mod:`repro.serve.http` —
clients and the ``repro-serve`` CLI work against it unchanged — but owns
no evaluation machinery.  Each submission is mapped to a shard by the
**description fingerprint** (the same key every cache layer uses), so
all work on one candidate lands on the worker whose artifact cache is
already warm for it; coalescing and memoization then dedupe *within*
the shard exactly as in the single-node service.

Life of a submission:

1. Compute the shard key: the structural fingerprint of the submitted
   description (an unparseable one hashes its raw text — the shard will
   produce the proper ISDL001 rejection record; the router never
   second-guesses the worker's admission gate).
2. Pick the highest-ranked *healthy* shard (rendezvous order, see
   :mod:`repro.cluster.shards`) and forward the POST body verbatim.
   A transport failure fails over to the next-ranked shard; with no
   healthy shard left the router answers **503 + Retry-After** itself.
3. Pass the shard's answer through **verbatim** — status, body, and the
   ``Retry-After`` header of a 429/503 included — and remember
   ``job id → (payload, key, shard)`` for status routing and requeue.

``GET /v1/jobs/<id>`` routes by the id's shard prefix (ids are
``<shard>-<hex>``, minted by the worker).  When the health monitor
declares a shard dead, the router re-submits that shard's non-terminal
jobs to their next-ranked healthy shard and records an id alias, so the
client's original job id keeps resolving — the answer carries
``"requeued_to"`` with the new id for transparency.  Jobs stranded with
no healthy shard are retried when one recovers.

Router metrics (own registry, ``GET /metrics``): counters
``cluster.jobs_forwarded``, ``cluster.forward_errors``,
``cluster.jobs_requeued``, ``cluster.requeue_failed``,
``cluster.unavailable`` (503s the router itself answered), histogram
``cluster.forward_seconds``, gauges ``cluster.shards_healthy``,
``cluster.shard_up.<id>`` and ``cluster.shard_depth.<id>``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from ..obs.export import prometheus_text
from ..obs.metrics import MetricsRegistry, MetricsSnapshot
from ..serve.jobs import shard_of_job_id
from .health import HealthMonitor
from .shards import ShardInfo, ShardTable

__all__ = [
    "ClusterRouter",
    "ForwardResult",
    "RouterHTTPServer",
    "make_router_server",
    "router_in_thread",
]

#: response headers forwarded verbatim from shard to client
_PASS_HEADERS = ("Content-Type", "Retry-After")

#: id-alias chains are bounded (a job can only be requeued so often)
_MAX_ALIAS_HOPS = 8


@dataclass
class ForwardResult:
    """One answer on its way back to the client."""

    status: int
    body: bytes
    headers: Dict[str, str]

    @classmethod
    def json(cls, status: int, payload: Dict[str, Any],
             retry_after: Optional[float] = None) -> "ForwardResult":
        headers = {"Content-Type": "application/json; charset=utf-8"}
        if retry_after is not None:
            headers["Retry-After"] = str(int(max(1, round(retry_after))))
        return cls(status,
                   json.dumps(payload, sort_keys=True).encode("utf-8"),
                   headers)


@dataclass
class _RoutedJob:
    """What the router remembers about a forwarded submission."""

    payload: Dict[str, Any]
    key: str
    shard: str
    terminal: bool = False


class ClusterRouter:
    """Fingerprint-sharded front over N worker shards."""

    def __init__(self, table: ShardTable, *,
                 probe_interval_s: float = 1.0,
                 fail_threshold: int = 2,
                 probe_timeout_s: float = 2.0,
                 forward_timeout_s: float = 60.0,
                 retry_after_s: float = 2.0,
                 max_routed: int = 4096):
        self.table = table
        self.forward_timeout_s = forward_timeout_s
        self.retry_after_s = retry_after_s
        self.max_routed = max_routed
        self.metrics = MetricsRegistry()
        self.started_at = time.time()
        self.monitor = HealthMonitor(
            table, interval_s=probe_interval_s,
            fail_threshold=fail_threshold, timeout_s=probe_timeout_s,
            on_down=self._on_shard_down, on_up=self._on_shard_up,
            on_probe=self._refresh_shard_gauges,
        )
        self._routed: "OrderedDict[str, _RoutedJob]" = OrderedDict()
        self._aliases: Dict[str, str] = {}
        self._arch_keys: Dict[str, str] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "ClusterRouter":
        self.monitor.start()
        return self

    def shutdown(self) -> None:
        self.monitor.stop()

    def __enter__(self) -> "ClusterRouter":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def submit(self, raw_body: bytes) -> ForwardResult:
        """Route one POST /v1/jobs body; the shard's answer verbatim."""
        try:
            payload = json.loads(raw_body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return ForwardResult.json(
                400, {"error": f"request body is not valid JSON: {exc}"}
            )
        if not isinstance(payload, dict):
            return ForwardResult.json(
                400, {"error": "request body must be a JSON object"}
            )
        key = self._shard_key(payload)
        return self._submit_routed(payload, raw_body, key)

    def _submit_routed(self, payload: Dict[str, Any], raw_body: bytes,
                       key: str,
                       exclude: Tuple[str, ...] = ()) -> ForwardResult:
        tried = set(exclude)
        while True:
            shard = self.table.pick(key, exclude=tried)
            if shard is None:
                self._count("cluster.unavailable")
                return ForwardResult.json(
                    503,
                    {"error": "no healthy shard available; retry later",
                     "shards": [s.to_dict() for s in self.table.all()]},
                    retry_after=self.retry_after_s,
                )
            begun = time.monotonic()
            try:
                result = self._forward(shard, "POST", "/v1/jobs",
                                       body=raw_body)
            except _TransportError:
                tried.add(shard.id)
                self._count("cluster.forward_errors")
                self.monitor.note_transport_failure(shard.id)
                continue
            self.metrics.observe("cluster.forward_seconds",
                                 time.monotonic() - begun)
            self._count("cluster.jobs_forwarded")
            if result.status in (202, 422):
                self._record_routed(result, payload, key, shard)
            return result

    def _record_routed(self, result: ForwardResult,
                       payload: Dict[str, Any], key: str,
                       shard: ShardInfo) -> None:
        record = _parse_json(result.body)
        job_id = record.get("id") if isinstance(record, dict) else None
        if not isinstance(job_id, str):
            return
        terminal = (isinstance(record, dict)
                    and record.get("state") in _TERMINAL_STATES)
        with self._lock:
            self._routed[job_id] = _RoutedJob(
                payload=payload, key=key, shard=shard.id,
                terminal=terminal,
            )
            self._prune_routed()

    def _prune_routed(self) -> None:
        """Cap the routed-jobs table, shedding oldest terminal first."""
        if len(self._routed) <= self.max_routed:
            return
        for job_id in [j for j, r in self._routed.items() if r.terminal]:
            del self._routed[job_id]
            self._aliases.pop(job_id, None)
            if len(self._routed) <= self.max_routed:
                return
        while len(self._routed) > self.max_routed:
            self._routed.popitem(last=False)

    # ------------------------------------------------------------------
    # Status routing
    # ------------------------------------------------------------------

    def job_record(self, job_id: str) -> ForwardResult:
        """Route GET /v1/jobs/<id>, following requeue aliases."""
        canonical = self._resolve_alias(job_id)
        shard = self._shard_for_job(canonical)
        if shard is None:
            return ForwardResult.json(
                404, {"error": f"unknown job {job_id!r}"}
            )
        if not shard.healthy:
            requeued = self._try_inline_requeue(canonical, shard)
            if requeued is not None:
                canonical, shard = requeued
            else:
                return ForwardResult.json(
                    503,
                    {"error": f"shard {shard.id!r} for job {job_id!r}"
                              f" is down; retry later"},
                    retry_after=self.retry_after_s,
                )
        try:
            result = self._forward(shard, "GET",
                                   f"/v1/jobs/{canonical}")
        except _TransportError:
            self.monitor.note_transport_failure(shard.id)
            return ForwardResult.json(
                503,
                {"error": f"shard {shard.id!r} unreachable; retry later"},
                retry_after=self.retry_after_s,
            )
        if result.status == 200:
            self._note_terminal(canonical, result)
            if canonical != job_id:
                result = _rewrite_id(result, job_id, canonical)
        return result

    def list_jobs(self) -> ForwardResult:
        """Merged recent submissions across all healthy shards."""
        merged: List[Dict[str, Any]] = []
        for shard in self.table.healthy():
            try:
                result = self._forward(shard, "GET", "/v1/jobs")
            except _TransportError:
                self.monitor.note_transport_failure(shard.id)
                continue
            record = _parse_json(result.body)
            if isinstance(record, dict) \
                    and isinstance(record.get("jobs"), list):
                for job in record["jobs"]:
                    if isinstance(job, dict):
                        job = dict(job)
                        job["shard"] = shard.id
                        merged.append(job)
        merged.sort(key=lambda j: j.get("created_at") or 0.0)
        return ForwardResult.json(200, {"jobs": merged})

    def _resolve_alias(self, job_id: str) -> str:
        with self._lock:
            seen = 0
            while job_id in self._aliases and seen < _MAX_ALIAS_HOPS:
                job_id = self._aliases[job_id]
                seen += 1
            return job_id

    def _shard_for_job(self, job_id: str) -> Optional[ShardInfo]:
        prefix = shard_of_job_id(job_id)
        if prefix is not None:
            info = self.table.get(prefix)
            if info is not None:
                return info
        with self._lock:
            routed = self._routed.get(job_id)
        if routed is not None:
            return self.table.get(routed.shard)
        return None

    def _note_terminal(self, job_id: str, result: ForwardResult) -> None:
        record = _parse_json(result.body)
        if isinstance(record, dict) \
                and record.get("state") in _TERMINAL_STATES:
            with self._lock:
                routed = self._routed.get(job_id)
                if routed is not None:
                    routed.terminal = True

    # ------------------------------------------------------------------
    # Dead-shard requeue
    # ------------------------------------------------------------------

    def _on_shard_down(self, shard_id: str) -> None:
        self._count("cluster.shards_down_events")
        self._requeue_from(shard_id)
        self._refresh_shard_gauges()

    def _on_shard_up(self, shard_id: str) -> None:
        self._count("cluster.shards_up_events")
        # a recovering shard may unstrand jobs that had nowhere to go
        self._requeue_stranded()
        self._refresh_shard_gauges()

    def _requeue_from(self, shard_id: str) -> None:
        """Re-submit the dead shard's non-terminal jobs elsewhere."""
        with self._lock:
            pending = [(job_id, routed)
                       for job_id, routed in self._routed.items()
                       if routed.shard == shard_id
                       and not routed.terminal
                       and job_id not in self._aliases]
        for job_id, routed in pending:
            self._requeue_job(job_id, routed, exclude=(shard_id,))

    def _requeue_stranded(self) -> None:
        with self._lock:
            down = {s.id for s in self.table.all() if not s.healthy}
            pending = [(job_id, routed)
                       for job_id, routed in self._routed.items()
                       if routed.shard in down
                       and not routed.terminal
                       and job_id not in self._aliases]
        for job_id, routed in pending:
            self._requeue_job(job_id, routed, exclude=(routed.shard,))

    def _requeue_job(self, job_id: str, routed: _RoutedJob,
                     exclude: Tuple[str, ...]) -> bool:
        raw = json.dumps(routed.payload, sort_keys=True).encode("utf-8")
        result = self._submit_routed(routed.payload, raw, routed.key,
                                     exclude=exclude)
        if result.status not in (202, 422):
            self._count("cluster.requeue_failed")
            return False
        record = _parse_json(result.body)
        new_id = record.get("id") if isinstance(record, dict) else None
        if not isinstance(new_id, str) or new_id == job_id:
            self._count("cluster.requeue_failed")
            return False
        with self._lock:
            self._aliases[job_id] = new_id
        self._count("cluster.jobs_requeued")
        return True

    def _try_inline_requeue(self, job_id: str, dead: ShardInfo
                            ) -> Optional[Tuple[str, ShardInfo]]:
        """A status lookup hit a down shard before the monitor requeued
        it: requeue right now so the client gets an answer this poll."""
        with self._lock:
            routed = self._routed.get(job_id)
            already = self._aliases.get(job_id)
        if already is not None:
            canonical = self._resolve_alias(job_id)
            shard = self._shard_for_job(canonical)
            if shard is not None and shard.healthy:
                return canonical, shard
            return None
        if routed is None or routed.terminal:
            return None
        if not self._requeue_job(job_id, routed, exclude=(dead.id,)):
            return None
        canonical = self._resolve_alias(job_id)
        shard = self._shard_for_job(canonical)
        if shard is None or not shard.healthy:
            return None
        return canonical, shard

    # ------------------------------------------------------------------
    # Shard keys
    # ------------------------------------------------------------------

    def _shard_key(self, payload: Dict[str, Any]) -> str:
        """The placement key: the description's structural fingerprint.

        The same digest every cache layer keys on, so a candidate's
        traffic — duplicates, retries, exploration revisits — all lands
        where its artifacts already live.  Unparseable or malformed
        submissions hash what they can; they still route somewhere
        deterministic and the worker's admission gate does the judging.
        """
        arch = payload.get("arch")
        if isinstance(arch, str):
            cached = self._arch_keys.get(arch)
            if cached is not None:
                return cached
            try:
                from ..arch import description_for
                from ..isdl import fingerprint

                key = fingerprint(description_for(arch))
            except Exception:  # noqa: BLE001 — unknown arch still routes
                key = f"arch:{arch}"
            self._arch_keys[arch] = key
            return key
        source = payload.get("isdl")
        if isinstance(source, str):
            from ..isdl import fingerprint, fingerprint_text, load_string

            try:
                return fingerprint(load_string(source,
                                               filename="<submitted>",
                                               validate=False))
            except Exception:  # noqa: BLE001 — parse errors still route
                return fingerprint_text(source)
        return "malformed"

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        shards = self.table.all()
        healthy = [s for s in shards if s.healthy]
        if not shards or not healthy:
            status = "down"
        elif len(healthy) < len(shards):
            status = "degraded"
        else:
            status = "ok"
        jobs: Dict[str, int] = {}
        for shard in shards:
            for state, count in shard.job_states.items():
                jobs[state] = jobs.get(state, 0) + count
        snapshot = self.metrics.snapshot()
        return {
            "status": status,
            "role": "router",
            "uptime_s": time.time() - self.started_at,
            "workers": len(healthy),
            "queue_depth": sum(s.queue_depth for s in healthy),
            "jobs": jobs,
            "shards": [s.to_dict() for s in shards],
            "counters": {
                name: value
                for name, value in sorted(snapshot.counters.items())
                if name.startswith("cluster.")
            },
        }

    def metrics_snapshot(self) -> MetricsSnapshot:
        return self.metrics.snapshot()

    def _refresh_shard_gauges(self) -> None:
        healthy = 0
        for shard in self.table.all():
            healthy += 1 if shard.healthy else 0
            self.metrics.set(f"cluster.shard_up.{shard.id}",
                             1.0 if shard.healthy else 0.0)
            self.metrics.set(f"cluster.shard_depth.{shard.id}",
                             float(shard.queue_depth))
        self.metrics.set("cluster.shards_healthy", float(healthy))

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.add(name, amount)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _forward(self, shard: ShardInfo, method: str, path: str,
                 body: Optional[bytes] = None) -> ForwardResult:
        headers = {"Accept": "application/json"}
        if body is not None:
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            shard.url + path, data=body, headers=headers, method=method,
        )
        try:
            with urllib.request.urlopen(
                    request, timeout=self.forward_timeout_s) as response:
                return ForwardResult(
                    response.status, response.read(),
                    _pass_headers(response.headers),
                )
        except urllib.error.HTTPError as exc:
            # a real answer (429/503/422/...): body + headers verbatim
            return ForwardResult(exc.code, exc.read(),
                                 _pass_headers(exc.headers))
        except (urllib.error.URLError, OSError) as exc:
            raise _TransportError(str(exc)) from None


class _TransportError(Exception):
    """The shard never answered (connect/read failure)."""


_TERMINAL_STATES = frozenset(
    {"succeeded", "failed", "rejected", "cancelled"}
)


def _pass_headers(source) -> Dict[str, str]:
    passed = {}
    for name in _PASS_HEADERS:
        value = source.get(name) if source is not None else None
        if value is not None:
            passed[name] = value
    return passed


def _parse_json(raw: bytes) -> Any:
    try:
        return json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None


def _rewrite_id(result: ForwardResult, requested_id: str,
                canonical_id: str) -> ForwardResult:
    """Serve a requeued job's record under the id the client knows."""
    record = _parse_json(result.body)
    if not isinstance(record, dict):
        return result
    record["id"] = requested_id
    record["requeued_to"] = canonical_id
    body = json.dumps(record, sort_keys=True).encode("utf-8")
    return ForwardResult(result.status, body, dict(result.headers))


# ---------------------------------------------------------------------------
# HTTP front
# ---------------------------------------------------------------------------


class RouterHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`ClusterRouter`."""

    daemon_threads = True
    allow_reuse_address = True
    disable_nagle_algorithm = True
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], router: ClusterRouter):
        super().__init__(address, _RouterHandler)
        self.router = router

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        if ":" in host:  # bare IPv6 literal
            host = f"[{host}]"
        return f"http://{host}:{port}"

    def shutdown_router(self) -> None:
        self.router.shutdown()
        self.shutdown()


class _RouterHandler(BaseHTTPRequestHandler):
    server_version = "repro-cluster/1.0"
    protocol_version = "HTTP/1.1"

    #: request bodies above this size are refused outright (413)
    MAX_BODY_BYTES = 4 * 1024 * 1024

    def do_POST(self) -> None:  # noqa: N802 — http.server naming
        if self.path.rstrip("/") == "/v1/jobs":
            raw = self._read_body()
            if raw is None:
                return
            self._send(self.server.router.submit(raw))
        else:
            self._send(ForwardResult.json(
                404, {"error": f"no such endpoint: POST {self.path}"}
            ))

    def do_GET(self) -> None:  # noqa: N802 — http.server naming
        path = self.path.split("?", 1)[0]
        router: ClusterRouter = self.server.router
        if path == "/healthz":
            health = router.health()
            status = 200 if health["status"] == "ok" else 503 \
                if health["status"] == "down" else 200
            self._send(ForwardResult.json(status, health))
        elif path == "/metrics":
            body = prometheus_text(router.metrics_snapshot())
            self._send(ForwardResult(
                200, body.encode("utf-8"),
                {"Content-Type":
                 "text/plain; version=0.0.4; charset=utf-8"},
            ))
        elif path.rstrip("/") == "/v1/jobs":
            self._send(router.list_jobs())
        elif path.startswith("/v1/jobs/"):
            job_id = path[len("/v1/jobs/"):].strip("/")
            self._send(router.job_record(job_id))
        else:
            self._send(ForwardResult.json(
                404, {"error": f"no such endpoint: GET {path}"}
            ))

    def _read_body(self) -> Optional[bytes]:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except (TypeError, ValueError):
            length = 0
        if length <= 0:
            self._send(ForwardResult.json(
                400, {"error": "missing request body"}
            ))
            return None
        if length > self.MAX_BODY_BYTES:
            self.close_connection = True
            self._send(ForwardResult.json(
                413, {"error": "request body too large"}
            ))
            return None
        return self.rfile.read(length)

    def _send(self, result: ForwardResult) -> None:
        self.send_response(result.status)
        headers = dict(result.headers)
        headers.setdefault("Content-Type",
                           "application/json; charset=utf-8")
        headers["Content-Length"] = str(len(result.body))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(result.body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # routing metrics live in the registry, not stderr


def make_router_server(router: ClusterRouter, host: str = "127.0.0.1",
                       port: int = 0) -> RouterHTTPServer:
    """Bind (port 0 picks a free one) and start the health monitor."""
    server = RouterHTTPServer((host, port), router)
    router.start()
    return server


def router_in_thread(router: ClusterRouter, host: str = "127.0.0.1",
                     port: int = 0) -> Tuple[RouterHTTPServer,
                                             threading.Thread]:
    """Run the router HTTP server on a daemon thread (tests, benches)."""
    server = make_router_server(router, host, port)
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-cluster-http", daemon=True)
    thread.start()
    return server, thread
