"""repro.cluster — fingerprint-sharded evaluation fleet.

A :class:`ClusterRouter` speaks the exact ``repro-serve`` wire protocol
(:mod:`repro.serve.http`) but fans submissions over N worker-shard
processes.  Placement is rendezvous hashing on the **description
fingerprint** — the same key every cache layer uses — so each shard's
artifact cache stays hot for its slice of the design space
(:mod:`repro.cluster.shards`).  A :class:`HealthMonitor` probes shard
``/healthz`` endpoints and the router requeues a dead shard's in-flight
jobs to survivors, aliasing the original job ids.  Workers run the
ordinary :class:`~repro.serve.service.EvaluationService` with a durable
job journal (:mod:`repro.serve.journal`) and a lease-guarded disk cache,
so accepted jobs survive a worker crash.  :class:`Supervisor` spawns
and tends a local fleet of worker subprocesses (``repro-cluster route
--spawn N``).
"""

from .health import HealthMonitor
from .router import (
    ClusterRouter,
    ForwardResult,
    RouterHTTPServer,
    make_router_server,
    router_in_thread,
)
from .shards import ShardInfo, ShardTable, rendezvous_rank
from .supervisor import Supervisor, WorkerHandle, free_ports

__all__ = [
    "ClusterRouter",
    "ForwardResult",
    "HealthMonitor",
    "RouterHTTPServer",
    "ShardInfo",
    "ShardTable",
    "Supervisor",
    "WorkerHandle",
    "free_ports",
    "make_router_server",
    "rendezvous_rank",
    "router_in_thread",
]
