"""Shard liveness: periodic ``/healthz`` probes with flap damping.

The monitor probes every shard on a fixed interval from one daemon
thread.  A shard is marked **down** after ``fail_threshold`` consecutive
failed probes (one lost packet should not trigger a fleet-wide requeue)
and **up** again on the first success.  Transitions invoke the router's
callbacks *outside* the table lock, because the down-callback does real
work (requeueing the dead shard's in-flight jobs).

``probe_once`` is public so tests drive detection deterministically
instead of sleeping against a timer.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from typing import Callable, Optional

from .shards import ShardTable

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Background ``/healthz`` prober for a :class:`ShardTable`."""

    def __init__(self, table: ShardTable, *, interval_s: float = 1.0,
                 fail_threshold: int = 2, timeout_s: float = 2.0,
                 on_down: Optional[Callable[[str], None]] = None,
                 on_up: Optional[Callable[[str], None]] = None,
                 on_probe: Optional[Callable[[], None]] = None):
        self.table = table
        self.interval_s = interval_s
        self.fail_threshold = max(1, fail_threshold)
        self.timeout_s = timeout_s
        self.on_down = on_down
        self.on_up = on_up
        #: called after every full probe sweep (metrics refresh)
        self.on_probe = on_probe
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> "HealthMonitor":
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="repro-cluster-health",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.timeout_s + 1.0)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self.probe_once()
            except Exception:  # noqa: BLE001 — the prober must survive
                pass

    def probe_once(self) -> None:
        """Probe every shard once; fire up/down transition callbacks."""
        for info in self.table.all():
            health = self._probe(info.url)
            if health is not None:
                revived = self.table.note_success(
                    info.id,
                    queue_depth=int(health.get("queue_depth") or 0),
                    job_states=health.get("jobs")
                    if isinstance(health.get("jobs"), dict) else None,
                )
                if revived and self.on_up is not None:
                    self.on_up(info.id)
            else:
                died = self.table.note_failure(info.id,
                                               self.fail_threshold)
                if died and self.on_down is not None:
                    self.on_down(info.id)
        if self.on_probe is not None:
            self.on_probe()

    def note_transport_failure(self, shard_id: str) -> None:
        """A forward attempt failed at the socket: counts as a probe
        failure so repeated submit errors take a shard down between
        probe ticks."""
        died = self.table.note_failure(shard_id, self.fail_threshold)
        if died and self.on_down is not None:
            self.on_down(shard_id)

    def _probe(self, url: str) -> Optional[dict]:
        """The shard's health document, or None when unreachable.

        A 503 (draining) answer still carries a body, but a draining
        shard should not receive new work — treat it as down for
        placement while keeping its reported depth.
        """
        request = urllib.request.Request(url + "/healthz",
                                         headers={"Accept":
                                                  "application/json"})
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError:
            return None  # reachable but unhealthy/draining
        except (urllib.error.URLError, OSError, ValueError):
            return None
