"""The shard table: rendezvous-hashed ownership of the design space.

Each worker shard owns a slice of description-fingerprint space.  The
assignment uses rendezvous (highest-random-weight) hashing: for a key
``k`` every shard ``s`` gets the weight ``sha256(s "|" k)`` and the
highest-weight *healthy* shard owns the key.  Two properties make this
the right choice over ``hash(k) % N``:

* **Minimal remapping.**  Adding or removing a shard only moves the keys
  whose top-ranked shard changed — exactly the departed shard's keys (or
  the arrivals the new shard now wins).  Modulo hashing reshuffles
  ~``(N-1)/N`` of *all* keys on any membership change, which would turn
  every shard's carefully warmed :class:`~repro.cache.ArtifactCache`
  cold each time a worker joins or dies.
* **Deterministic failover.**  The full ranking (not just the winner) is
  meaningful: when a shard is down, its keys fall to their second-ranked
  shard — the same one every router instance computes, with no
  coordination state to persist or replicate.

The table itself is a small thread-safe registry of
:class:`ShardInfo` records that the health monitor mutates and the
router reads.
"""

from __future__ import annotations

import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["ShardInfo", "ShardTable", "rendezvous_rank"]


def _weight(shard_id: str, key: str) -> int:
    digest = hashlib.sha256(f"{shard_id}|{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def rendezvous_rank(key: str, shard_ids: Iterable[str]) -> List[str]:
    """Shard ids ordered by descending rendezvous weight for *key*.

    Pure and stateless: every caller computes the same ranking, and
    dropping a shard from *shard_ids* leaves the relative order of the
    rest untouched (the minimal-remapping property).
    """
    return sorted(shard_ids, key=lambda s: _weight(s, key), reverse=True)


@dataclass
class ShardInfo:
    """One worker shard as the router sees it."""

    id: str
    url: str
    healthy: bool = True
    #: consecutive failed probes (reset on success)
    failures: int = 0
    #: queue depth reported by the last successful /healthz probe
    queue_depth: int = 0
    #: job-state counts from the last successful probe
    job_states: Dict[str, int] = field(default_factory=dict)
    last_probe_at: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "url": self.url,
            "healthy": self.healthy,
            "queue_depth": self.queue_depth,
            "last_probe_at": self.last_probe_at,
        }


class ShardTable:
    """Thread-safe registry of shards with rendezvous key placement."""

    def __init__(self, shards: Iterable[Tuple[str, str]] = ()):
        self._shards: "Dict[str, ShardInfo]" = {}
        self._lock = threading.Lock()
        for shard_id, url in shards:
            self.add(shard_id, url)

    def add(self, shard_id: str, url: str) -> ShardInfo:
        info = ShardInfo(id=shard_id, url=url.rstrip("/"))
        with self._lock:
            self._shards[shard_id] = info
        return info

    def remove(self, shard_id: str) -> None:
        with self._lock:
            self._shards.pop(shard_id, None)

    def get(self, shard_id: str) -> Optional[ShardInfo]:
        with self._lock:
            return self._shards.get(shard_id)

    def ids(self) -> List[str]:
        with self._lock:
            return list(self._shards)

    def all(self) -> List[ShardInfo]:
        with self._lock:
            return list(self._shards.values())

    def healthy(self) -> List[ShardInfo]:
        with self._lock:
            return [s for s in self._shards.values() if s.healthy]

    def __len__(self) -> int:
        with self._lock:
            return len(self._shards)

    # -- placement -------------------------------------------------------

    def rank(self, key: str) -> List[str]:
        """All shard ids in rendezvous order for *key* (health-blind)."""
        return rendezvous_rank(key, self.ids())

    def pick(self, key: str,
             exclude: Iterable[str] = ()) -> Optional[ShardInfo]:
        """The highest-ranked healthy shard for *key*, or None.

        A down shard is skipped, so its keys deterministically fall to
        their next-ranked shard; *exclude* lets a requeue avoid the
        shard that just died even before the monitor marks it.
        """
        banned = set(exclude)
        with self._lock:
            candidates = {s.id: s for s in self._shards.values()
                          if s.healthy and s.id not in banned}
        for shard_id in rendezvous_rank(key, candidates):
            return candidates[shard_id]
        return None

    # -- health bookkeeping (driven by the monitor) ----------------------

    def note_success(self, shard_id: str, queue_depth: int = 0,
                     job_states: Optional[Dict[str, int]] = None) -> bool:
        """Record a good probe; True when this flipped the shard up."""
        with self._lock:
            info = self._shards.get(shard_id)
            if info is None:
                return False
            revived = not info.healthy
            info.healthy = True
            info.failures = 0
            info.queue_depth = queue_depth
            info.job_states = dict(job_states or {})
            info.last_probe_at = time.time()
            return revived

    def note_failure(self, shard_id: str, threshold: int) -> bool:
        """Record a failed probe; True when this flipped the shard down
        (``threshold`` consecutive failures)."""
        with self._lock:
            info = self._shards.get(shard_id)
            if info is None:
                return False
            info.failures += 1
            info.last_probe_at = time.time()
            if info.healthy and info.failures >= threshold:
                info.healthy = False
                return True
            return False
