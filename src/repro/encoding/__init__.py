"""Assembly-function encodings and operation signatures (paper Fig. 3)."""

from .bits import (
    fits_signed,
    fits_unsigned,
    get_bits,
    mask,
    set_bits,
    sign_extend,
    to_unsigned,
)
from .signature import Operand, Signature, SignatureTable

__all__ = [
    "fits_signed",
    "fits_unsigned",
    "get_bits",
    "mask",
    "set_bits",
    "sign_extend",
    "to_unsigned",
    "Operand",
    "Signature",
    "SignatureTable",
]
