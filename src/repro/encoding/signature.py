"""Operation signatures and the assembly function (paper Fig. 3, §3.3.2).

A *signature* is an image of the instruction word with a symbol in each bit:

* ``None`` — don't-care: the assembly function never sets this bit,
* ``0`` / ``1`` — a constant set by the operation's opcode bits,
* ``(param_name, bit_index)`` — a function of bit *bit_index* of one
  parameter's return value.

Axiom 1 of the paper (each parameter symbol depends on a single parameter
only) holds by construction of our encoding AST and is validated by the
semantic checker, so every signature can be inverted symbolically: constants
identify the operation, parameter symbols are gathered back into parameter
values.  The same signature model drives the GENSIM disassembler and the
HGEN decode-logic generator (paper §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import obs
from ..errors import EncodingError, IsdlSemanticError
from ..isdl import ast

#: A decoded operand: token parameters bind to an integer value; non-terminal
#: parameters bind to ``(option_label, {sub_param: operand, ...})``.
Operand = Union[int, Tuple[str, Dict[str, "Operand"]]]


@dataclass(frozen=True)
class Signature:
    """The per-bit symbol image of one operation or non-terminal option."""

    width: int
    symbols: Tuple[object, ...]  # length == width, indexed by bit position

    # -- construction ------------------------------------------------------

    @staticmethod
    def from_encoding(encoding: Sequence[ast.BitAssign], width: int,
                      value_widths: Dict[str, int]) -> "Signature":
        """Build a signature from bitfield assignments.

        *value_widths* maps parameter names to their return-value widths
        (used to expand whole-parameter references into per-bit symbols).
        """
        symbols: List[object] = [None] * width
        for assign in encoding:
            rhs = assign.rhs
            for offset in range(assign.width):
                position = assign.lo + offset
                if isinstance(rhs, ast.EncConst):
                    symbols[position] = (rhs.value >> offset) & 1
                elif isinstance(rhs, ast.EncParam):
                    lo = rhs.lo if rhs.lo is not None else 0
                    symbols[position] = (rhs.name, lo + offset)
                else:
                    raise IsdlSemanticError(
                        f"unknown encoding right-hand side {rhs!r}"
                    )
        return Signature(width, tuple(symbols))

    # -- views -------------------------------------------------------------

    @property
    def constant_mask(self) -> int:
        """Mask of bits carrying a 0/1 constant."""
        result = 0
        for position, symbol in enumerate(self.symbols):
            if symbol in (0, 1):
                result |= 1 << position
        return result

    @property
    def constant_value(self) -> int:
        """The constant bits' values (within :attr:`constant_mask`)."""
        result = 0
        for position, symbol in enumerate(self.symbols):
            if symbol == 1:
                result |= 1 << position
        return result

    @property
    def defined_mask(self) -> int:
        """Mask of every bit the assembly function sets (non-don't-care)."""
        result = 0
        for position, symbol in enumerate(self.symbols):
            if symbol is not None:
                result |= 1 << position
        return result

    def param_positions(self, name: str) -> List[Tuple[int, int]]:
        """``(word_bit, value_bit)`` pairs for parameter *name*."""
        return [
            (position, symbol[1])
            for position, symbol in enumerate(self.symbols)
            if isinstance(symbol, tuple) and symbol[0] == name
        ]

    def param_names(self) -> List[str]:
        """Parameter names appearing in the signature, in bit order."""
        seen: List[str] = []
        for symbol in self.symbols:
            if isinstance(symbol, tuple) and symbol[0] not in seen:
                seen.append(symbol[0])
        return seen

    # -- the assembly function and its inverse ------------------------------

    def matches(self, word: int) -> bool:
        """True if the constant part of the signature matches *word*."""
        return (word & self.constant_mask) == self.constant_value

    def assemble(self, param_bits: Dict[str, int]) -> int:
        """Apply the assembly function: constants + encoded parameter bits.

        *param_bits* maps each parameter to its (unsigned) return-value bit
        pattern.  Don't-care bits are left zero.
        """
        word = self.constant_value
        for position, symbol in enumerate(self.symbols):
            if isinstance(symbol, tuple):
                name, value_bit = symbol
                if name not in param_bits:
                    raise EncodingError(
                        f"missing value for parameter {name!r}"
                    )
                if (param_bits[name] >> value_bit) & 1:
                    word |= 1 << position
        return word

    def extract(self, word: int, name: str) -> int:
        """Invert the encoding of parameter *name* from *word*."""
        value = 0
        for position, value_bit in self.param_positions(name):
            if (word >> position) & 1:
                value |= 1 << value_bit
        return value


# ---------------------------------------------------------------------------
# Signature tables for a whole description
# ---------------------------------------------------------------------------


class SignatureTable:
    """All signatures of a description, for operations and NT options.

    Built once per description; shared by the assembler, the disassembler
    generator, and the decode-logic generator.
    """

    def __init__(self, desc: ast.Description,
                 reuse_from: Optional[Tuple["SignatureTable", object]] = None):
        self.desc = desc
        self.operation_signatures: Dict[Tuple[str, str], Signature] = {}
        self.option_signatures: Dict[Tuple[str, str], Signature] = {}
        #: (rows carried over, rows built) when built incrementally.
        self.reuse_counts: Dict[str, int] = {}
        carry: Dict[Tuple[str, str], Signature] = {}
        if reuse_from is not None:
            # A row is a pure function of the operation's encoding, the
            # word width, and its parameters' value widths — so with the
            # format/token/NT environment identical, an unchanged
            # operation's row is byte-identical and carries over.
            parent, delta = reuse_from
            if delta.global_env_unchanged:
                carry = parent.operation_signatures
        with obs.span("encoding.sigtable", desc=desc.name):
            reused = built = 0
            for fld, op in desc.operations():
                key = (fld.name, op.name)
                if carry and delta.op_unchanged(*key):
                    self.operation_signatures[key] = carry[key]
                    reused += 1
                    continue
                widths = self._value_widths(op.params)
                self.operation_signatures[key] = (
                    Signature.from_encoding(
                        op.encoding, desc.word_width, widths
                    )
                )
                built += 1
            if carry:
                # NT options were proved identical by the environment
                # check; adopt the parent's table wholesale.
                self.option_signatures = dict(parent.option_signatures)
            else:
                for nt in desc.nonterminals.values():
                    for opt in nt.options:
                        widths = self._value_widths(opt.params)
                        self.option_signatures[(nt.name, opt.label)] = (
                            Signature.from_encoding(opt.encoding, nt.width,
                                                    widths)
                        )
            if reuse_from is not None:
                self.reuse_counts = {"reused": reused, "rebuilt": built}
            obs.add("sigtable.builds")

    def _value_widths(self, params) -> Dict[str, int]:
        widths = {}
        for param in params:
            ptype = self.desc.param_type(param)
            if isinstance(ptype, ast.TokenDef):
                widths[param.name] = ptype.value_width
            else:
                widths[param.name] = ptype.width
        return widths

    def operation(self, field_name: str, op_name: str) -> Signature:
        return self.operation_signatures[(field_name, op_name)]

    def option(self, nt_name: str, label: str) -> Signature:
        return self.option_signatures[(nt_name, label)]

    # -- recursive operand encoding -----------------------------------------

    def encode_param(self, param: ast.Param, operand: Operand) -> int:
        """Encode one operand to its return-value bit pattern."""
        ptype = self.desc.param_type(param)
        if isinstance(ptype, ast.TokenDef):
            if not isinstance(operand, int):
                raise EncodingError(
                    f"parameter {param.name!r} expects a token value,"
                    f" got {operand!r}"
                )
            if operand not in ptype.valid_values():
                raise EncodingError(
                    f"value {operand} out of range for token {ptype.name}"
                )
            return ptype.encode_value(operand)
        if not (isinstance(operand, tuple) and len(operand) == 2):
            raise EncodingError(
                f"parameter {param.name!r} expects a non-terminal operand"
                f" (label, sub-operands), got {operand!r}"
            )
        label, sub_operands = operand
        option = ptype.option(label)
        signature = self.option(ptype.name, label)
        bits = {}
        for sub_param in option.params:
            if sub_param.name not in sub_operands:
                raise EncodingError(
                    f"missing operand {sub_param.name!r} for"
                    f" {ptype.name}.{label}"
                )
            bits[sub_param.name] = self.encode_param(
                sub_param, sub_operands[sub_param.name]
            )
        return signature.assemble(bits)

    def encode_operation(self, field_name: str, op_name: str,
                         operands: Dict[str, Operand]) -> int:
        """Encode a full operation into its instruction-word contribution."""
        op = self.desc.operation(field_name, op_name)
        signature = self.operation(field_name, op_name)
        bits = {}
        for param in op.params:
            if param.name not in operands:
                raise EncodingError(
                    f"missing operand {param.name!r} for"
                    f" {field_name}.{op_name}"
                )
            bits[param.name] = self.encode_param(param, operands[param.name])
        return signature.assemble(bits)

    def encode_instruction(
        self, selections: Dict[str, Tuple[str, Dict[str, Operand]]]
    ) -> int:
        """Encode a whole (VLIW) instruction.

        *selections* maps field name → ``(op_name, operands)``.  Fields not
        mentioned contribute nothing (their bits stay don't-care/zero) —
        descriptions model explicit NOP encodings where the hardware needs
        them.
        """
        word = 0
        for field_name, (op_name, operands) in selections.items():
            word |= self.encode_operation(field_name, op_name, operands)
        return word


def decode_preserved(table: SignatureTable, desc: ast.Description,
                     words: Sequence[int], delta) -> bool:
    """True when *words* provably decode identically under parent and child.

    *table* is the **child** description's signature table and *delta* the
    parent→child :class:`~repro.isdl.fingerprint.FingerprintDelta`.  The
    disassembler requires exactly one constant-signature match per field
    (ambiguity and illegal words are load-time errors), which makes the
    proof local: if a word's unique match in the child is a delta-unchanged
    operation, that operation's signature is byte-identical in the parent,
    so it matched there too — and since the parent decoded the program
    without error, its unique match was the same operation with the same
    operand bits.  Conservative on every other outcome (changed/added
    unique match, no match, ambiguity): returns False and the caller
    decodes cold.
    """
    if not delta.global_env_unchanged:
        return False
    if not (delta.changed_ops or delta.added_ops or delta.removed_ops):
        return True
    for word in set(words):
        for fld in desc.fields:
            matched = None
            for op in fld.operations:
                if table.operation(fld.name, op.name).matches(word):
                    if matched is not None:
                        return False  # ambiguous: no proof
                    matched = op
            if matched is None:
                return False  # illegal in the child: let the load raise
            if not delta.op_unchanged(fld.name, matched.name):
                return False
    return True
