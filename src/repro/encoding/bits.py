"""Low-level bit-manipulation helpers shared by the encoding layer."""

from __future__ import annotations


def mask(width: int) -> int:
    """An all-ones mask of *width* bits."""
    return (1 << width) - 1


def get_bits(value: int, hi: int, lo: int) -> int:
    """Extract bits ``[hi:lo]`` (inclusive) from *value*."""
    return (value >> lo) & mask(hi - lo + 1)


def set_bits(value: int, hi: int, lo: int, bits: int) -> int:
    """Return *value* with bits ``[hi:lo]`` replaced by *bits*."""
    field_mask = mask(hi - lo + 1) << lo
    return (value & ~field_mask) | ((bits << lo) & field_mask)


def sign_extend(value: int, width: int) -> int:
    """Interpret the low *width* bits of *value* as two's complement."""
    value &= mask(width)
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_unsigned(value: int, width: int) -> int:
    """Truncate a (possibly negative) value to *width* unsigned bits."""
    return value & mask(width)


def fits_unsigned(value: int, width: int) -> bool:
    """True if *value* is representable as an unsigned *width*-bit number."""
    return 0 <= value < (1 << width)


def fits_signed(value: int, width: int) -> bool:
    """True if *value* is representable as a signed *width*-bit number."""
    half = 1 << (width - 1)
    return -half <= value < half
