"""Example architectures (ISDL descriptions) and their workloads."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ..asm import Assembler
from ..errors import SimulationError
from ..gensim.xsim import XSim
from ..isdl import ast
from . import acc8, risc16, spam, spam2, workloads
from .workloads import Workload, all_workloads, workloads_for

#: architecture name -> cached description loader
ARCHITECTURES: Dict[str, Callable[[], ast.Description]] = {
    "risc16": risc16.description,
    "spam": spam.description,
    "spam2": spam2.description,
    "acc8": acc8.description,
}


def description_for(arch: str) -> ast.Description:
    """Load the named architecture's (checked) description."""
    return ARCHITECTURES[arch]()


def prepare(workload: Workload,
            sim: Optional[XSim] = None) -> Tuple[XSim, int]:
    """Assemble a workload, preload memory, and load it into a simulator.

    Returns ``(simulator, program_length)``; the simulator is ready to run.
    """
    desc = description_for(workload.arch)
    if sim is None:
        sim = XSim(desc)
    for storage, contents in workload.preload.items():
        for index, value in contents.items():
            sim.write(storage, value, index)
    program = Assembler(desc).assemble(workload.source,
                                       filename=f"{workload.name}.s")
    sim.load_words(program.words, program.origin)
    return sim, len(program.words)


def run_workload(workload: Workload, sim: Optional[XSim] = None,
                 max_steps: int = 500_000) -> XSim:
    """Run a workload to completion and verify its expected results."""
    sim, _ = prepare(workload, sim)
    sim.run_to_completion(max_steps)
    failures: List[str] = []
    for storage, contents in workload.expected.items():
        for index, value in contents.items():
            actual = sim.read(storage, index)
            if actual != value:
                failures.append(
                    f"{storage}[{index}] = 0x{actual:x},"
                    f" expected 0x{value:x}"
                )
    if failures:
        raise SimulationError(
            f"workload {workload.name!r} produced wrong results: "
            + "; ".join(failures)
        )
    return sim


__all__ = [
    "ARCHITECTURES",
    "description_for",
    "prepare",
    "run_workload",
    "Workload",
    "all_workloads",
    "workloads_for",
    "acc8",
    "risc16",
    "spam",
    "spam2",
    "workloads",
]
