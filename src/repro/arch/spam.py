"""SPAM — the paper's 4-way floating-point VLIW target (paper §6.1).

"The target architecture is a 4-way floating-point VLIW processor we
designed (SPAM), that can do 4 operations and 3 parallel moves at the same
time."  Re-created from that description: a 96-bit instruction word with
seven ISDL fields — two FP units (add-class and multiply-class), an integer
ALU with branches, a load/store unit, and three parallel register-move
buses.  FP operations are IEEE-754 single precision via the FP intrinsics
(macro datapath blocks in HGEN).

The constraints mirror the paper's §4.1.1 resource-sharing example: the
load/store unit borrows the third move bus, so ``st``/``ld`` may not issue
together with ``MV3.mov`` — which in turn lets HGEN share that bus.
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, load_string

ISDL_SOURCE = r'''
processor "SPAM"

section format
    word 96
end

section global_definitions
    token REG prefix "R" range 0 .. 15
    token UIMM8 immediate unsigned width 8
    token SIMM9 immediate signed width 9
    token UIMM10 immediate unsigned width 10

    nonterminal ISRC width 9
        option reg(r: REG)
            syntax "%r"
            encoding { bits[8] = 0b0; bits[3:0] = r }
            action { $$ <- RF[r]; }
        option imm(v: UIMM8)
            syntax "#%v"
            encoding { bits[8] = 0b1; bits[7:0] = v }
            action { $$ <- v; }
    end
end

section storage
    instruction_memory IM width 96 depth 4096
    data_memory DM width 32 depth 1024
    register_file RF width 32 depth 16
    control_register FEQ width 1
    control_register FLT width 1
    control_register ZF width 1
    control_register HALTED width 1
    program_counter PC width 12
end

section instruction_set
    field FP1
        operation fnop()
            encoding { bits[95:92] = 0b0000 }

        operation fadd(d: REG, a: REG, b: REG)
            encoding { bits[95:92] = 0b0001; bits[91:88] = d;
                       bits[87:84] = a; bits[83:80] = b }
            action { RF[d] <- fadd(RF[a], RF[b]); }
            cost cycle 1 stall 1
            timing latency 2 usage 1

        operation fsub(d: REG, a: REG, b: REG)
            encoding { bits[95:92] = 0b0010; bits[91:88] = d;
                       bits[87:84] = a; bits[83:80] = b }
            action { RF[d] <- fsub(RF[a], RF[b]); }
            cost cycle 1 stall 1
            timing latency 2 usage 1

        operation fcmp(a: REG, b: REG)
            encoding { bits[95:92] = 0b0011; bits[87:84] = a;
                       bits[83:80] = b }
            side_effect {
                FEQ <- fcmp(RF[a], RF[b]) == 0;
                FLT <- fcmp(RF[a], RF[b]) == -1;
            }
            cost cycle 1 stall 0

        operation fneg(d: REG, a: REG)
            encoding { bits[95:92] = 0b0100; bits[91:88] = d;
                       bits[87:84] = a }
            action { RF[d] <- fneg(RF[a]); }

        operation fabs(d: REG, a: REG)
            encoding { bits[95:92] = 0b0101; bits[91:88] = d;
                       bits[87:84] = a }
            action { RF[d] <- fabs(RF[a]); }
    end

    field FP2
        operation mnop()
            syntax "fnop2"
            encoding { bits[79:76] = 0b0000 }

        operation fmul(d: REG, a: REG, b: REG)
            encoding { bits[79:76] = 0b0001; bits[75:72] = d;
                       bits[71:68] = a; bits[67:64] = b }
            action { RF[d] <- fmul(RF[a], RF[b]); }
            cost cycle 1 stall 2
            timing latency 3 usage 1

        operation fdiv(d: REG, a: REG, b: REG)
            encoding { bits[79:76] = 0b0010; bits[75:72] = d;
                       bits[71:68] = a; bits[67:64] = b }
            action { RF[d] <- fdiv(RF[a], RF[b]); }
            cost cycle 8 stall 0
            timing latency 8 usage 8

        operation itof(d: REG, a: REG)
            encoding { bits[79:76] = 0b0011; bits[75:72] = d;
                       bits[71:68] = a }
            action { RF[d] <- itof(RF[a], 32); }
            cost cycle 1 stall 1
            timing latency 2 usage 1

        operation ftoi(d: REG, a: REG)
            encoding { bits[79:76] = 0b0100; bits[75:72] = d;
                       bits[71:68] = a }
            action { RF[d] <- ftoi(RF[a], 32); }
            cost cycle 1 stall 1
            timing latency 2 usage 1
    end

    field INT
        operation inop()
            encoding { bits[63:59] = 0b00000 }

        operation add(d: REG, a: REG, b: ISRC)
            encoding { bits[63:59] = 0b00001; bits[58:55] = d;
                       bits[54:51] = a; bits[50:42] = b }
            action { RF[d] <- RF[a] + b; }
            side_effect { ZF <- ((RF[a] + b) & 0xFFFFFFFF) == 0; }

        operation sub(d: REG, a: REG, b: ISRC)
            encoding { bits[63:59] = 0b00010; bits[58:55] = d;
                       bits[54:51] = a; bits[50:42] = b }
            action { RF[d] <- RF[a] - b; }
            side_effect { ZF <- ((RF[a] - b) & 0xFFFFFFFF) == 0; }

        operation and_(d: REG, a: REG, b: ISRC)
            syntax "and %d, %a, %b"
            encoding { bits[63:59] = 0b00011; bits[58:55] = d;
                       bits[54:51] = a; bits[50:42] = b }
            action { RF[d] <- RF[a] & b; }

        operation or_(d: REG, a: REG, b: ISRC)
            syntax "or %d, %a, %b"
            encoding { bits[63:59] = 0b00100; bits[58:55] = d;
                       bits[54:51] = a; bits[50:42] = b }
            action { RF[d] <- RF[a] | b; }

        operation xor_(d: REG, a: REG, b: ISRC)
            syntax "xor %d, %a, %b"
            encoding { bits[63:59] = 0b00101; bits[58:55] = d;
                       bits[54:51] = a; bits[50:42] = b }
            action { RF[d] <- RF[a] ^ b; }

        operation shl(d: REG, a: REG, b: ISRC)
            encoding { bits[63:59] = 0b00110; bits[58:55] = d;
                       bits[54:51] = a; bits[50:42] = b }
            action { RF[d] <- RF[a] << (b & 0x1F); }

        operation shr(d: REG, a: REG, b: ISRC)
            encoding { bits[63:59] = 0b00111; bits[58:55] = d;
                       bits[54:51] = a; bits[50:42] = b }
            action { RF[d] <- RF[a] >> (b & 0x1F); }

        operation ldi(d: REG, v: UIMM8)
            syntax "ldi %d, #%v"
            encoding { bits[63:59] = 0b01000; bits[58:55] = d;
                       bits[49:42] = v }
            action { RF[d] <- v; }

        operation bnez(a: REG, t: SIMM9)
            encoding { bits[63:59] = 0b01001; bits[54:51] = a;
                       bits[50:42] = t }
            action { if RF[a] != 0 { PC <- PC + t; } }

        operation beqz(a: REG, t: SIMM9)
            encoding { bits[63:59] = 0b01010; bits[54:51] = a;
                       bits[50:42] = t }
            action { if RF[a] == 0 { PC <- PC + t; } }

        operation bfeq(t: SIMM9)
            encoding { bits[63:59] = 0b01011; bits[50:42] = t }
            action { if FEQ == 1 { PC <- PC + t; } }

        operation bflt(t: SIMM9)
            encoding { bits[63:59] = 0b01100; bits[50:42] = t }
            action { if FLT == 1 { PC <- PC + t; } }

        operation jmp(t: UIMM10)
            encoding { bits[63:59] = 0b01101; bits[51:42] = t }
            action { PC <- t; }

        operation halt()
            encoding { bits[63:59] = 0b11111 }
            action { HALTED <- 1; }
    end

    field LSU
        operation lnop()
            encoding { bits[41:40] = 0b00 }

        operation ld(d: REG, a: REG)
            syntax "ld %d, (%a)"
            encoding { bits[41:40] = 0b01; bits[39:36] = d;
                       bits[35:32] = a }
            action { RF[d] <- DM[RF[a] & 0x3FF]; }
            cost cycle 1 stall 1
            timing latency 2 usage 1

        operation st(s: REG, a: REG)
            syntax "st (%a), %s"
            encoding { bits[41:40] = 0b10; bits[39:36] = s;
                       bits[35:32] = a }
            action { DM[RF[a] & 0x3FF] <- RF[s]; }
    end

    field MV1
        operation mnop()
            syntax "mnop1"
            encoding { bits[27] = 0b0 }
        operation mov(d: REG, s: REG)
            encoding { bits[27] = 0b1; bits[26:23] = d; bits[22:19] = s }
            action { RF[d] <- RF[s]; }
    end

    field MV2
        operation mnop()
            syntax "mnop2"
            encoding { bits[18] = 0b0 }
        operation mov(d: REG, s: REG)
            encoding { bits[18] = 0b1; bits[17:14] = d; bits[13:10] = s }
            action { RF[d] <- RF[s]; }
    end

    field MV3
        operation mnop()
            syntax "mnop3"
            encoding { bits[9] = 0b0 }
        operation mov(d: REG, s: REG)
            encoding { bits[9] = 0b1; bits[8:5] = d; bits[4:1] = s }
            action { RF[d] <- RF[s]; }
    end
end

section constraints
    # The load/store unit borrows the third move bus (paper 4.1.1): memory
    # operations and MV3 moves are mutually exclusive, which lets HGEN
    # implement them on one set of data paths.
    forbid LSU.ld & MV3.mov
    forbid LSU.st & MV3.mov
    # The iterative divider blocks the branch adder's result bus.
    forbid FP2.fdiv & INT.jmp
end

section optional
    attribute halt_flag "HALTED"
    attribute technology "lsi10k"
end
'''


@lru_cache(maxsize=None)
def description() -> ast.Description:
    """Parse and check the SPAM description (cached)."""
    return load_string(ISDL_SOURCE, filename="spam.isdl")
