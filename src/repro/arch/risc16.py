"""RISC16 — a small 16-bit load/store RISC described in ISDL.

This is the "simple architecture" used throughout the tests and the
quickstart example.  One functional unit (a single ISDL field), eight
general-purpose registers, a flags register with C/Z/N aliases, PC-relative
conditional branches, and a halt flag surfaced through the optional section
so generated simulators know when a program is done.
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, load_string

ISDL_SOURCE = r'''
processor "RISC16"

section format
    word 24
end

section global_definitions
    token REG prefix "R" range 0 .. 7
    token UIMM8 immediate unsigned width 8
    token SIMM8 immediate signed width 8
    token UIMM10 immediate unsigned width 10

    nonterminal SRC width 9
        option reg(r: REG)
            syntax "%r"
            encoding { bits[8] = 0b0; bits[2:0] = r }
            action { $$ <- RF[r]; }
        option imm(v: UIMM8)
            syntax "#%v"
            encoding { bits[8] = 0b1; bits[7:0] = v }
            action { $$ <- v; }
    end
end

section storage
    instruction_memory IM width 24 depth 1024
    data_memory DM width 16 depth 256
    register_file RF width 16 depth 8
    control_register CCR width 4
    control_register HALTED width 1
    program_counter PC width 10

    alias C = CCR[0]
    alias Z = CCR[1]
    alias N = CCR[2]
end

section instruction_set
    field EX
        operation nop()
            encoding { bits[23:19] = 0b00000 }

        operation add(d: REG, a: REG, b: SRC)
            encoding { bits[23:19] = 0b00001; bits[18:16] = d;
                       bits[15:13] = a; bits[12:4] = b }
            action { RF[d] <- RF[a] + b; }
            side_effect {
                C <- carry(RF[a], b, 16);
                Z <- ((RF[a] + b) & 0xFFFF) == 0;
                N <- bit(RF[a] + b, 15);
            }

        operation sub(d: REG, a: REG, b: SRC)
            encoding { bits[23:19] = 0b00010; bits[18:16] = d;
                       bits[15:13] = a; bits[12:4] = b }
            action { RF[d] <- RF[a] - b; }
            side_effect {
                C <- borrow(RF[a], b, 16);
                Z <- ((RF[a] - b) & 0xFFFF) == 0;
                N <- bit(RF[a] - b, 15);
            }

        operation and_(d: REG, a: REG, b: SRC)
            syntax "and %d, %a, %b"
            encoding { bits[23:19] = 0b00011; bits[18:16] = d;
                       bits[15:13] = a; bits[12:4] = b }
            action { RF[d] <- RF[a] & b; }
            side_effect { Z <- (RF[a] & b) == 0; }

        operation or_(d: REG, a: REG, b: SRC)
            syntax "or %d, %a, %b"
            encoding { bits[23:19] = 0b00100; bits[18:16] = d;
                       bits[15:13] = a; bits[12:4] = b }
            action { RF[d] <- RF[a] | b; }
            side_effect { Z <- (RF[a] | b) == 0; }

        operation xor_(d: REG, a: REG, b: SRC)
            syntax "xor %d, %a, %b"
            encoding { bits[23:19] = 0b00101; bits[18:16] = d;
                       bits[15:13] = a; bits[12:4] = b }
            action { RF[d] <- RF[a] ^ b; }
            side_effect { Z <- (RF[a] ^ b) == 0; }

        operation shl(d: REG, a: REG, b: SRC)
            encoding { bits[23:19] = 0b00110; bits[18:16] = d;
                       bits[15:13] = a; bits[12:4] = b }
            action { RF[d] <- RF[a] << (b & 0xF); }

        operation shr(d: REG, a: REG, b: SRC)
            encoding { bits[23:19] = 0b00111; bits[18:16] = d;
                       bits[15:13] = a; bits[12:4] = b }
            action { RF[d] <- RF[a] >> (b & 0xF); }

        operation mov(d: REG, b: SRC)
            encoding { bits[23:19] = 0b01001; bits[18:16] = d;
                       bits[12:4] = b }
            action { RF[d] <- b; }

        operation ldi(d: REG, v: UIMM8)
            syntax "ldi %d, #%v"
            encoding { bits[23:19] = 0b01010; bits[18:16] = d;
                       bits[12:5] = v }
            action { RF[d] <- v; }

        operation ld(d: REG, a: REG)
            syntax "ld %d, (%a)"
            encoding { bits[23:19] = 0b01011; bits[18:16] = d;
                       bits[15:13] = a }
            action { RF[d] <- DM[RF[a] & 0xFF]; }
            cost cycle 2

        operation st(a: REG, b: REG)
            syntax "st (%a), %b"
            encoding { bits[23:19] = 0b01100; bits[15:13] = a;
                       bits[12:10] = b }
            action { DM[RF[a] & 0xFF] <- RF[b]; }
            cost cycle 2

        operation cmp(a: REG, b: SRC)
            encoding { bits[23:19] = 0b01101; bits[15:13] = a;
                       bits[12:4] = b }
            side_effect {
                C <- borrow(RF[a], b, 16);
                Z <- ((RF[a] - b) & 0xFFFF) == 0;
                N <- bit(RF[a] - b, 15);
            }

        operation beq(t: SIMM8)
            encoding { bits[23:19] = 0b01110; bits[12:5] = t }
            action { if Z == 1 { PC <- PC + t; } }

        operation bne(t: SIMM8)
            encoding { bits[23:19] = 0b01111; bits[12:5] = t }
            action { if Z == 0 { PC <- PC + t; } }

        operation blt(t: SIMM8)
            encoding { bits[23:19] = 0b10000; bits[12:5] = t }
            action { if N == 1 { PC <- PC + t; } }

        operation jmp(t: UIMM10)
            encoding { bits[23:19] = 0b10001; bits[12:3] = t }
            action { PC <- t; }

        operation jal(t: UIMM10)
            encoding { bits[23:19] = 0b10010; bits[12:3] = t }
            action { RF[7] <- PC + 1; PC <- t; }

        operation halt()
            encoding { bits[23:19] = 0b11111 }
            action { HALTED <- 1; }
    end
end

section optional
    attribute halt_flag "HALTED"
    attribute technology "lsi10k"
end
'''


@lru_cache(maxsize=None)
def description() -> ast.Description:
    """Parse and check the RISC16 description (cached)."""
    return load_string(ISDL_SOURCE, filename="risc16.isdl")
