"""Benchmark kernels for the example architectures.

The paper does not name its workloads; these are the embedded-DSP kernels
its introduction motivates (filters, dot products, block moves) plus control
code, written as hand-scheduled assembly the way a mid-90s VLIW programmer
(or the AVIV code generator) would emit it.  Every workload carries its data
preload and the expected architectural results, so the same object drives
correctness tests, co-simulation, and the Table 1 speed measurements.

All kernels are scheduled hazard-free (no stall cycles) so they may run on
both the ILS and the interlock-less hardware model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .. import fp

#: preload/expect maps: storage name -> {index: value}
MemMap = Dict[str, Dict[int, int]]


@dataclass(frozen=True)
class Workload:
    """One runnable kernel: source, initial memory, expected results."""

    name: str
    arch: str
    source: str
    preload: MemMap = field(default_factory=dict)
    expected: MemMap = field(default_factory=dict)
    description: str = ""


# ---------------------------------------------------------------------------
# RISC16 kernels
# ---------------------------------------------------------------------------


def risc16_sum_loop(n: int = 10) -> Workload:
    """Sum the integers 1..n into R1 and store at DM[0]."""
    expected = n * (n + 1) // 2
    source = f"""
; sum 1..{n}
        ldi r0, #{n}
        ldi r1, #0
        ldi r2, #0
loop:   add r1, r1, r0
        sub r0, r0, #1
        bne loop - .
        st (r2), r1
        halt
"""
    return Workload(
        "sum_loop", "risc16", source,
        expected={"DM": {0: expected & 0xFFFF}},
        description=f"control-flow loop summing 1..{n}",
    )


def risc16_dot_product(vec_a: Tuple[int, ...] = (3, 1, 4, 1, 5, 9, 2, 6),
                       vec_b: Tuple[int, ...] = (2, 7, 1, 8, 2, 8, 1, 8)
                       ) -> Workload:
    """Integer dot product via shift-and-add multiplication."""
    n = len(vec_a)
    assert len(vec_b) == n
    dot = sum(a * b for a, b in zip(vec_a, vec_b)) & 0xFFFF
    preload = {"DM": {i: v for i, v in enumerate(vec_a)}}
    preload["DM"].update({n + i: v for i, v in enumerate(vec_b)})
    # R0 = &a, R1 = &b, R2 = count, R3 = acc, R4/R5 operands, R6 = bit count
    source = f"""
; integer dot product, software multiply (8x8)
        ldi r0, #0
        ldi r1, #{n}
        ldi r2, #{n}
        ldi r3, #0
loop:   ld r4, (r0)
        ld r5, (r1)
        ldi r6, #8          ; 8-bit multiplier loop
mul:    and r7, r5, #1
        cmp r7, #0
        beq skip - .
        add r3, r3, r4
skip:   shl r4, r4, #1
        shr r5, r5, #1
        sub r6, r6, #1
        bne mul - .
        add r0, r0, #1
        add r1, r1, #1
        sub r2, r2, #1
        bne loop - .
        ldi r0, #{2 * n}
        st (r0), r3
        halt
"""
    return Workload(
        "dot_product", "risc16", source, preload,
        expected={"DM": {2 * n: dot}},
        description=f"{n}-element integer dot product",
    )


def risc16_fir(taps: Tuple[int, ...] = (1, 2, 3, 2),
               samples: Tuple[int, ...] = (5, 0, 3, 7, 1, 4, 2, 6, 8, 1)
               ) -> Workload:
    """FIR filter via repeated addition (coefficient-many adds).

    Output y[i] = sum_k taps[k] * x[i+k] for the valid range; taps are small
    so multiplication unrolls into adds at assembly-generation time.
    """
    n_out = len(samples) - len(taps) + 1
    outputs = [
        sum(t * samples[i + k] for k, t in enumerate(taps)) & 0xFFFF
        for i in range(n_out)
    ]
    x_base, y_base = 0, 64
    preload = {"DM": {x_base + i: v for i, v in enumerate(samples)}}
    lines: List[str] = [
        "; FIR filter, coefficients unrolled into adds",
        f"        ldi r0, #{x_base}      ; x pointer",
        f"        ldi r1, #{y_base}      ; y pointer",
        f"        ldi r2, #{n_out}       ; output count",
        "outer:  ldi r3, #0",
        "        mov r4, r0",
    ]
    for tap_index, tap in enumerate(taps):
        lines.append(f"        ld r5, (r4)        ; x[i+{tap_index}]")
        for _ in range(tap):
            lines.append("        add r3, r3, r5")
        if tap_index != len(taps) - 1:
            lines.append("        add r4, r4, #1")
    lines += [
        "        st (r1), r3",
        "        add r0, r0, #1",
        "        add r1, r1, #1",
        "        sub r2, r2, #1",
        "        bne outer - .",
        "        halt",
    ]
    return Workload(
        "fir", "risc16", "\n".join(lines) + "\n", preload,
        expected={"DM": {y_base + i: v for i, v in enumerate(outputs)}},
        description=f"{len(taps)}-tap FIR over {len(samples)} samples",
    )


def risc16_memcpy(n: int = 16) -> Workload:
    """Block move of n words from DM[0..] to DM[32..]."""
    data = [(i * 37 + 11) & 0xFFFF for i in range(n)]
    source = f"""
; block move
        ldi r0, #0
        ldi r1, #32
        ldi r2, #{n}
loop:   ld r3, (r0)
        st (r1), r3
        add r0, r0, #1
        add r1, r1, #1
        sub r2, r2, #1
        bne loop - .
        halt
"""
    return Workload(
        "memcpy", "risc16", source,
        preload={"DM": {i: v for i, v in enumerate(data)}},
        expected={"DM": {32 + i: v for i, v in enumerate(data)}},
        description=f"{n}-word block move",
    )


# ---------------------------------------------------------------------------
# SPAM kernels (floating point, VLIW-parallel, hand-scheduled)
# ---------------------------------------------------------------------------


def spam_dot_product(vec_a: Tuple[float, ...] = (1.5, -2.25, 3.0, 0.5,
                                                 4.75, -1.0, 2.5, 8.0),
                     vec_b: Tuple[float, ...] = (2.0, 3.5, -1.25, 4.0,
                                                 0.5, 6.0, -2.0, 0.25)
                     ) -> Workload:
    """Single-precision dot product with parallel address updates."""
    n = len(vec_a)
    assert len(vec_b) == n
    # Bit-true expected accumulation (sequential fadd of fmul results).
    acc = fp.float_to_bits(0.0)
    for a, b in zip(vec_a, vec_b):
        prod = fp.fmul(fp.float_to_bits(a), fp.float_to_bits(b))
        acc = fp.fadd(acc, prod)
    preload = {
        "DM": {i: fp.float_to_bits(v) for i, v in enumerate(vec_a)},
    }
    preload["DM"].update(
        {n + i: fp.float_to_bits(v) for i, v in enumerate(vec_b)}
    )
    result_addr = 2 * n
    source = f"""
; FP dot product: loads paired with pointer updates in one VLIW line
        ldi r0, #0          ; &a
        ldi r1, #{n}        ; &b
        ldi r2, #{n}        ; count
        ldi r3, #0          ; acc = 0.0f
        ldi r7, #{result_addr}
loop:   ld r4, (r0) | add r0, r0, #1
        ld r5, (r1) | add r1, r1, #1
        sub r2, r2, #1
        fmul r6, r4, r5
        inop
        inop
        fadd r3, r3, r6
        bnez r2, loop - .
        st (r7), r3
        halt
"""
    return Workload(
        "fp_dot_product", "spam", source, preload,
        expected={"DM": {result_addr: acc}},
        description=f"{n}-element single-precision dot product",
    )


def spam_vector_scale(scale: float = 2.5,
                      values: Tuple[float, ...] = (1.0, -2.0, 3.5, 0.25,
                                                   -4.75, 6.0, 7.125, -0.5)
                      ) -> Workload:
    """out[i] = scale * x[i], with the store overlapped with the next load."""
    n = len(values)
    scale_bits = fp.float_to_bits(scale)
    out = [fp.fmul(scale_bits, fp.float_to_bits(v)) for v in values]
    x_base, y_base = 0, 32
    preload = {"DM": {x_base + i: fp.float_to_bits(v)
                      for i, v in enumerate(values)}}
    preload["DM"].update({100: scale_bits})
    source = f"""
; vector scale by a loaded coefficient
        ldi r7, #100
        ld r8, (r7)          ; scale
        ldi r0, #{x_base}
        ldi r1, #{y_base}
        ldi r2, #{n}
loop:   ld r4, (r0) | add r0, r0, #1
        sub r2, r2, #1
        fmul r5, r8, r4
        inop
        inop
        st (r1), r5 | add r1, r1, #1
        bnez r2, loop - .
        halt
"""
    return Workload(
        "fp_vector_scale", "spam", source, preload,
        expected={"DM": {y_base + i: v for i, v in enumerate(out)}},
        description=f"scale {n} floats by {scale}",
    )


def spam_parallel_moves() -> Workload:
    """Exercise all three move buses plus two FP units in one instruction."""
    a, b = fp.float_to_bits(1.5), fp.float_to_bits(2.5)
    total = fp.fadd(a, b)  # 4.0
    prod = fp.fmul(a, b)  # 3.75
    source = """
; 4 operations + 3 parallel moves in single instructions
        ldi r0, #0
        ldi r1, #1
        ld r2, (r0)
        ld r3, (r1)
        inop
        fadd r4, r2, r3 | fmul r5, r2, r3 | add r6, r6, #7 | mov r8, r2 | mov r9, r3 | mov r10, r6
        inop
        inop
        st (r1), r4
        ldi r7, #2
        st (r7), r5
        halt
"""
    return Workload(
        "parallel_moves", "spam", source,
        preload={"DM": {0: a, 1: b}},
        expected={"DM": {1: total, 2: prod}},
        description="max-width VLIW issue: 4 ops + 3 moves",
    )


# ---------------------------------------------------------------------------
# SPAM2 kernels
# ---------------------------------------------------------------------------


def spam2_sum_loop(n: int = 12) -> Workload:
    """Sum 1..n on the 3-way machine (the ALU's ZF drives the branch)."""
    expected = (n * (n + 1) // 2) & 0xFFFF
    source = f"""
; sum 1..{n}
        ldi r0, #{n}
        ldi r1, #0
        ldi r2, #0
loop:   add r1, r1, r0
        sub r0, r0, #1
        bnz loop - .
        st (r2), r1
        halt
"""
    return Workload(
        "sum_loop2", "spam2", source,
        expected={"DM": {0: expected}},
        description=f"control-flow loop summing 1..{n}",
    )


def spam2_vector_add(vec_a: Tuple[int, ...] = (10, 20, 30, 40, 50, 60, 7, 9),
                     vec_b: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
                     ) -> Workload:
    """out[i] = a[i] + b[i], software-pipelined over all three fields.

    The move bus carries the output pointer while the memory unit streams
    — and the single flag register forces the schedule to keep the
    loop-count subtract as the last flag writer before the branch.
    """
    n = len(vec_a)
    out = [(a + b) & 0xFFFF for a, b in zip(vec_a, vec_b)]
    a_base, b_base, out_base = 0, 16, 32
    preload = {"DM": {a_base + i: v for i, v in enumerate(vec_a)}}
    preload["DM"].update({b_base + i: v for i, v in enumerate(vec_b)})
    source = f"""
; element-wise vector add
        ldi r0, #{a_base}
        ldi r1, #{b_base}
        ldi r2, #{out_base}
        ldi r3, #{n}
loop:   ld r4, (r0) | add r0, r0, #1
        ld r5, (r1) | add r1, r1, #1 | mov r7, r2
        add r2, r2, #1
        add r6, r4, r5
        st (r7), r6 | sub r3, r3, #1
        bnz loop - .
        halt
"""
    return Workload(
        "vector_add", "spam2", source, preload,
        expected={"DM": {out_base + i: v for i, v in enumerate(out)}},
        description=f"{n}-element vector add on 3 issue slots",
    )


# ---------------------------------------------------------------------------
# ACC8 kernels
# ---------------------------------------------------------------------------


def acc8_sum_array(values: Tuple[int, ...] = (10, 20, 30, 40, 7)) -> Workload:
    """Sum an array using the (X)+ auto-increment addressing mode."""
    n = len(values)
    total = sum(values) & 0xFF
    lines = [
        "; sum via post-increment addressing",
        "        ldx #0",
        "        ldi #0",
    ]
    lines += ["        add (X)+"] * n
    lines += [
        f"        sta {n}",
        "        halt",
    ]
    return Workload(
        "sum_array", "acc8", "\n".join(lines) + "\n",
        preload={"DM": {i: v for i, v in enumerate(values)}},
        expected={"DM": {n: total}},
        description=f"sum of {n} bytes with auto-increment",
    )


def acc8_stack_reverse() -> Workload:
    """Push three values, pop them back in reverse order."""
    source = """
; stack discipline
        ldi #1
        push
        ldi #2
        push
        ldi #3
        push
        pop
        sta 10
        pop
        sta 11
        pop
        sta 12
        halt
"""
    return Workload(
        "stack_reverse", "acc8", source,
        expected={"DM": {10: 3, 11: 2, 12: 1}},
        description="hardware stack push/pop",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


def all_workloads() -> List[Workload]:
    """Every kernel with default parameters."""
    return [
        risc16_sum_loop(),
        risc16_dot_product(),
        risc16_fir(),
        risc16_memcpy(),
        spam_dot_product(),
        spam_vector_scale(),
        spam_parallel_moves(),
        spam2_sum_loop(),
        spam2_vector_add(),
        acc8_sum_array(),
        acc8_stack_reverse(),
    ]


def workloads_for(arch: str) -> List[Workload]:
    """Kernels targeting one architecture."""
    return [w for w in all_workloads() if w.arch == arch]
