"""SPAM2 — the paper's simpler 3-way VLIW (paper §6.1, Table 2).

"A simpler 3-way VLIW architecture with a limited number of operations":
re-created as a 48-bit-word, 16-bit-integer machine with an ALU field
(including control flow), a memory field, and a single parallel-move bus.
No floating point — the contrast with SPAM in Table 2 (die size, cycle
length) comes largely from dropping the FP macro datapaths and narrowing
the machine.
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, load_string

ISDL_SOURCE = r'''
processor "SPAM2"

section format
    word 48
end

section global_definitions
    token REG prefix "R" range 0 .. 7
    token UIMM8 immediate unsigned width 8
    token SIMM8 immediate signed width 8
    token UIMM9 immediate unsigned width 9

    nonterminal ISRC width 9
        option reg(r: REG)
            syntax "%r"
            encoding { bits[8] = 0b0; bits[2:0] = r }
            action { $$ <- RF[r]; }
        option imm(v: UIMM8)
            syntax "#%v"
            encoding { bits[8] = 0b1; bits[7:0] = v }
            action { $$ <- v; }
    end
end

section storage
    instruction_memory IM width 48 depth 512
    data_memory DM width 16 depth 256
    register_file RF width 16 depth 8
    control_register ZF width 1
    control_register HALTED width 1
    program_counter PC width 9
end

section instruction_set
    field ALU
        operation anop()
            encoding { bits[47:44] = 0b0000 }

        operation add(d: REG, a: REG, b: ISRC)
            encoding { bits[47:44] = 0b0001; bits[43:41] = d;
                       bits[40:38] = a; bits[37:29] = b }
            action { RF[d] <- RF[a] + b; }
            side_effect { ZF <- ((RF[a] + b) & 0xFFFF) == 0; }

        operation sub(d: REG, a: REG, b: ISRC)
            encoding { bits[47:44] = 0b0010; bits[43:41] = d;
                       bits[40:38] = a; bits[37:29] = b }
            action { RF[d] <- RF[a] - b; }
            side_effect { ZF <- ((RF[a] - b) & 0xFFFF) == 0; }

        operation and_(d: REG, a: REG, b: ISRC)
            syntax "and %d, %a, %b"
            encoding { bits[47:44] = 0b0011; bits[43:41] = d;
                       bits[40:38] = a; bits[37:29] = b }
            action { RF[d] <- RF[a] & b; }

        operation shl(d: REG, a: REG, b: ISRC)
            encoding { bits[47:44] = 0b0100; bits[43:41] = d;
                       bits[40:38] = a; bits[37:29] = b }
            action { RF[d] <- RF[a] << (b & 0xF); }

        operation ldi(d: REG, v: UIMM8)
            syntax "ldi %d, #%v"
            encoding { bits[47:44] = 0b0101; bits[43:41] = d;
                       bits[36:29] = v }
            action { RF[d] <- v; }

        operation bnz(t: SIMM8)
            encoding { bits[47:44] = 0b0110; bits[36:29] = t }
            action { if ZF == 0 { PC <- PC + t; } }

        operation bz(t: SIMM8)
            encoding { bits[47:44] = 0b0111; bits[36:29] = t }
            action { if ZF == 1 { PC <- PC + t; } }

        operation jmp(t: UIMM9)
            encoding { bits[47:44] = 0b1000; bits[37:29] = t }
            action { PC <- t; }

        operation halt()
            encoding { bits[47:44] = 0b1111 }
            action { HALTED <- 1; }
    end

    field MEM
        operation mnop()
            syntax "memnop"
            encoding { bits[28:27] = 0b00 }

        operation ld(d: REG, a: REG)
            syntax "ld %d, (%a)"
            encoding { bits[28:27] = 0b01; bits[26:24] = d;
                       bits[23:21] = a }
            action { RF[d] <- DM[RF[a] & 0xFF]; }
            cost cycle 1 stall 1
            timing latency 2 usage 1

        operation st(s: REG, a: REG)
            syntax "st (%a), %s"
            encoding { bits[28:27] = 0b10; bits[26:24] = s;
                       bits[23:21] = a }
            action { DM[RF[a] & 0xFF] <- RF[s]; }
    end

    field MV
        operation mvnop()
            encoding { bits[20] = 0b0 }
        operation mov(d: REG, s: REG)
            encoding { bits[20] = 0b1; bits[19:17] = d; bits[16:14] = s }
            action { RF[d] <- RF[s]; }
    end
end

section constraints
    # The single move bus doubles as the store data path.
    forbid MEM.st & MV.mov
end

section optional
    attribute halt_flag "HALTED"
    attribute technology "lsi10k"
end
'''


@lru_cache(maxsize=None)
def description() -> ast.Description:
    """Parse and check the SPAM2 description (cached)."""
    return load_string(ISDL_SOURCE, filename="spam2.isdl")
