"""ACC8 — a tiny 8-bit accumulator machine.

Exists to demonstrate the breadth of architectures ISDL covers (paper §2:
"designed to cover as wide a range of architectures as possible"): a single
accumulator, memory-operand addressing modes through a non-terminal with
direct and register-indexed options — including an auto-increment option
whose *side effect* updates the index register — and a hardware stack
addressed by a stack-pointer register.
"""

from __future__ import annotations

from functools import lru_cache

from ..isdl import ast, load_string

ISDL_SOURCE = r'''
processor "ACC8"

section format
    word 16
end

section global_definitions
    token ADDR immediate unsigned width 8
    token IMM8 immediate unsigned width 8

    nonterminal MEMOP width 10
        option direct(addr: ADDR)
            syntax "%addr"
            encoding { bits[9:8] = 0b00; bits[7:0] = addr }
            action { $$ <- DM[addr]; }
        option indexed()
            syntax "(X)"
            encoding { bits[9:8] = 0b01 }
            action { $$ <- DM[X]; }
        option postinc()
            syntax "(X)+"
            encoding { bits[9:8] = 0b10 }
            action { $$ <- DM[X]; }
            side_effect { X <- X + 1; }
            cost cycle 1
    end
end

section storage
    instruction_memory IM width 16 depth 256
    data_memory DM width 8 depth 256
    register ACC width 8
    register X width 8
    stack STK width 8 depth 16
    register SP width 4
    control_register Z width 1
    control_register HALTED width 1
    program_counter PC width 8
end

section instruction_set
    field OP
        operation nop()
            encoding { bits[15:12] = 0b0000 }

        operation lda(m: MEMOP)
            encoding { bits[15:12] = 0b0001; bits[9:0] = m }
            action { ACC <- m; }
            side_effect { Z <- m == 0; }

        operation sta(addr: ADDR)
            encoding { bits[15:12] = 0b0010; bits[7:0] = addr }
            action { DM[addr] <- ACC; }

        operation ldi(v: IMM8)
            syntax "ldi #%v"
            encoding { bits[15:12] = 0b0011; bits[7:0] = v }
            action { ACC <- v; }

        operation add(m: MEMOP)
            encoding { bits[15:12] = 0b0100; bits[9:0] = m }
            action { ACC <- ACC + m; }
            side_effect { Z <- ((ACC + m) & 0xFF) == 0; }

        operation sub(m: MEMOP)
            encoding { bits[15:12] = 0b0101; bits[9:0] = m }
            action { ACC <- ACC - m; }
            side_effect { Z <- ((ACC - m) & 0xFF) == 0; }

        operation ldx(v: IMM8)
            syntax "ldx #%v"
            encoding { bits[15:12] = 0b0110; bits[7:0] = v }
            action { X <- v; }

        operation inx()
            encoding { bits[15:12] = 0b0111 }
            action { X <- X + 1; }

        operation push()
            encoding { bits[15:12] = 0b1000 }
            action { STK[SP] <- ACC; SP <- SP + 1; }

        operation pop()
            encoding { bits[15:12] = 0b1001 }
            action { ACC <- STK[SP - 1]; SP <- SP - 1; }

        operation jmp(t: ADDR)
            encoding { bits[15:12] = 0b1010; bits[7:0] = t }
            action { PC <- t; }

        operation bz(t: ADDR)
            encoding { bits[15:12] = 0b1011; bits[7:0] = t }
            action { if Z == 1 { PC <- t; } }

        operation bnz(t: ADDR)
            encoding { bits[15:12] = 0b1100; bits[7:0] = t }
            action { if Z == 0 { PC <- t; } }

        operation halt()
            encoding { bits[15:12] = 0b1111 }
            action { HALTED <- 1; }
    end
end

section optional
    attribute halt_flag "HALTED"
    attribute technology "lsi10k"
end
'''


@lru_cache(maxsize=None)
def description() -> ast.Description:
    """Parse and check the ACC8 description (cached)."""
    return load_string(ISDL_SOURCE, filename="acc8.isdl")
