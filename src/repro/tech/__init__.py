"""repro.tech — CMOS technology-scaling models and DVFS operating points.

The paper's hardware estimators (:mod:`repro.hgen`) are calibrated to one
mid-90s gate-array process, so every exploration verdict is a point at a
single implicit node and supply voltage.  This package turns that point
into a family: :class:`TechModel` carries per-node (45/32/22/16/10 nm),
per-flavor (HP/LP) scaling tables for area, delay, dynamic energy, and
leakage — the Lumos-style dark-silicon model shape — plus a monotone
piecewise-linear V/f curve, and :func:`solve_operating_point` finds the
max-frequency point under a power budget (flagging *dark silicon* when
even the minimum-voltage point leaks past it).

The default everywhere stays ``tech=None``: the legacy estimators route
through :data:`BASELINE` (the same constants ``hgen.techlib`` always
used), so results without a tech spec are bit-for-bit unchanged.

Typical use::

    from repro.tech import TechSpec, dvfs_sweep, tech_model

    model = synthesize(desc)                    # one baseline synthesis
    points = dvfs_sweep(model, tech_model(22, "HP"),
                        budgets=[None, 8.0, 4.0])   # N cheap re-estimates
    scaled = evaluate(desc, kernels, tech=TechSpec(22, "HP", 8.0))
"""

from .dvfs import OperatingPoint, dvfs_sweep, solve_operating_point
from .model import (
    BASELINE,
    KNOWN_FLAVORS,
    KNOWN_NODES,
    TechModel,
    TechSpec,
    UnknownTechError,
    parse_tech,
    tech_model,
)
from .vf import interpolate, validate_curve

__all__ = [
    "BASELINE",
    "KNOWN_FLAVORS",
    "KNOWN_NODES",
    "OperatingPoint",
    "TechModel",
    "TechSpec",
    "UnknownTechError",
    "dvfs_sweep",
    "interpolate",
    "parse_tech",
    "solve_operating_point",
    "tech_model",
    "validate_curve",
]
