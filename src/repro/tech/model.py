"""Technology models: per-node, per-flavor CMOS scaling tables.

One :class:`TechModel` describes a process point relative to the repo's
calibrated mid-90s gate-array baseline (:data:`BASELINE` — the LSI-10K
stand-in every estimate in :mod:`repro.hgen` was built against):

* ``area_scale`` / ``delay_scale`` multiply the baseline area and
  critical-path estimates (cell counts and logic depth are technology
  independent, the per-cell physicals are not);
* ``dynamic_energy_per_cell_pj`` / ``static_power_per_cell_uw`` replace
  the baseline per-cell power constants — they are *per baseline grid
  cell*, so the node's area shrink is already folded in;
* the V/f curve (see :mod:`repro.tech.vf`) says how much frequency
  survives a supply droop, which is what the operating-point solver
  trades against a power budget.

Table provenance: the *shape* follows the Lumos dark-silicon model
(per-node HP/LP tables derived from ITRS projections): roughly 0.5×
area per full node step, a much flatter delay improvement, dynamic
energy falling with C·V², HP leakage per (baseline) cell nearly flat
across nodes while LP trades ~40 % of HP's frequency for ~8× lower
leakage.  The absolute values are calibrated to this repo's baseline
process, not to any foundry — like every estimator here, what matters
for exploration is that candidates *rank* correctly and monotonically,
and the invariants (area/energy non-increasing with shrink, frequency
non-decreasing, leakage HP > LP) are pinned by tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ReproError
from .vf import Knot, interpolate, validate_curve

__all__ = [
    "BASELINE",
    "KNOWN_FLAVORS",
    "KNOWN_NODES",
    "TechModel",
    "TechSpec",
    "UnknownTechError",
    "parse_tech",
    "tech_model",
]


class UnknownTechError(ReproError):
    """A (node, flavor) pair the scaling tables do not cover."""


@dataclass(frozen=True)
class TechModel:
    """One process point: scaling factors plus its V/f curve."""

    name: str
    node_nm: int
    flavor: str
    #: multiplies the baseline area estimate (die size in grid cells)
    area_scale: float
    #: multiplies the baseline critical-path estimate (cycle in ns)
    delay_scale: float
    #: dynamic energy per *baseline* grid cell per activation, in pJ
    dynamic_energy_per_cell_pj: float
    #: static (leakage + clock tree) power per *baseline* grid cell, µW
    static_power_per_cell_uw: float
    vdd_nominal_v: float
    vdd_min_v: float
    #: monotone (vdd, frequency-factor) knots spanning [vdd_min, vdd_nom]
    vf_curve: Tuple[Knot, ...]

    def __post_init__(self):
        for field_name in ("area_scale", "delay_scale",
                           "dynamic_energy_per_cell_pj"):
            if getattr(self, field_name) <= 0.0:
                raise ValueError(f"{self.name}: {field_name} must be > 0")
        if self.static_power_per_cell_uw < 0.0:
            raise ValueError(f"{self.name}: static power must be >= 0")
        if not 0.0 < self.vdd_min_v <= self.vdd_nominal_v:
            raise ValueError(
                f"{self.name}: need 0 < vdd_min <= vdd_nominal, got"
                f" {self.vdd_min_v} / {self.vdd_nominal_v}"
            )
        curve = validate_curve(self.vf_curve)
        if curve[0][0] != self.vdd_min_v \
                or curve[-1][0] != self.vdd_nominal_v:
            raise ValueError(
                f"{self.name}: V/f curve must span"
                f" [{self.vdd_min_v}, {self.vdd_nominal_v}] V, spans"
                f" [{curve[0][0]}, {curve[-1][0]}]"
            )
        if curve[-1][1] != 1.0:
            raise ValueError(
                f"{self.name}: the nominal-voltage frequency factor must"
                f" be 1.0, got {curve[-1][1]}"
            )
        object.__setattr__(self, "vf_curve", curve)

    def frequency_factor(self, vdd: float) -> float:
        """Frequency at *vdd* as a fraction of nominal (clamped)."""
        return interpolate(self.vf_curve, vdd)

    @property
    def key(self) -> Tuple[int, str]:
        return (self.node_nm, self.flavor)


#: The process every hgen estimate was calibrated against.  Its power
#: constants are the canonical home of what ``hgen.techlib`` exposes as
#: ``DYNAMIC_ENERGY_PER_CELL_PJ`` / ``STATIC_POWER_PER_CELL_UW`` (those
#: names now alias these fields), so the legacy path and the scaled
#: path share one code path.  Scales of exactly 1.0 and a single-knot
#: V/f curve make ``tech=BASELINE`` bit-identical to ``tech=None``.
BASELINE = TechModel(
    name="base-500",
    node_nm=500,
    flavor="base",
    area_scale=1.0,
    delay_scale=1.0,
    dynamic_energy_per_cell_pj=0.45,  # V = 3.3 V era
    static_power_per_cell_uw=0.02,
    vdd_nominal_v=3.3,
    vdd_min_v=3.3,
    vf_curve=((3.3, 1.0),),
)

#: nodes the scaling tables cover, largest feature size first
KNOWN_NODES: Tuple[int, ...] = (45, 32, 22, 16, 10)

#: HP = high performance, LP = low power
KNOWN_FLAVORS: Tuple[str, ...] = ("HP", "LP")


def _vf_curve(vdd_min: float, vdd_nominal: float,
              knots: int = 5) -> Tuple[Knot, ...]:
    """A fixed-shape monotone V/f curve spanning [vdd_min, vdd_nominal].

    Frequency falls super-linearly toward the minimum supply (the
    near-threshold cliff): factor(t) = 0.06 + 0.94·t^1.5 over the
    normalized voltage t, pinned to exactly 1.0 at nominal.
    """
    curve = []
    for i in range(knots):
        t = i / (knots - 1)
        vdd = round(vdd_min + t * (vdd_nominal - vdd_min), 4)
        curve.append((vdd, round(0.06 + 0.94 * t ** 1.5, 4)))
    curve[-1] = (vdd_nominal, 1.0)
    return tuple(curve)


#: (node, area, delay, dynamic pJ/cell, static µW/cell, vdd_nom, vdd_min)
_HP_ROWS = (
    (45, 0.0280, 0.360, 0.0520, 0.0120, 1.00, 0.60),
    (32, 0.0150, 0.310, 0.0390, 0.0113, 0.95, 0.58),
    (22, 0.0082, 0.270, 0.0290, 0.0108, 0.90, 0.56),
    (16, 0.0074, 0.240, 0.0220, 0.0100, 0.85, 0.54),
    (10, 0.0066, 0.210, 0.0170, 0.0092, 0.80, 0.52),
)

_LP_ROWS = (
    (45, 0.0300, 0.600, 0.0420, 0.0016, 1.10, 0.70),
    (32, 0.0160, 0.520, 0.0310, 0.0015, 1.05, 0.68),
    (22, 0.0088, 0.460, 0.0230, 0.0014, 1.00, 0.66),
    (16, 0.0078, 0.420, 0.0180, 0.0012, 0.95, 0.64),
    (10, 0.0070, 0.380, 0.0140, 0.0010, 0.90, 0.62),
)


def _build_models() -> Dict[Tuple[int, str], TechModel]:
    models: Dict[Tuple[int, str], TechModel] = {BASELINE.key: BASELINE}
    for flavor, rows in (("HP", _HP_ROWS), ("LP", _LP_ROWS)):
        for node, area, delay, dyn, static, vnom, vmin in rows:
            models[(node, flavor)] = TechModel(
                name=f"{flavor.lower()}-{node}",
                node_nm=node,
                flavor=flavor,
                area_scale=area,
                delay_scale=delay,
                dynamic_energy_per_cell_pj=dyn,
                static_power_per_cell_uw=static,
                vdd_nominal_v=vnom,
                vdd_min_v=vmin,
                vf_curve=_vf_curve(vmin, vnom),
            )
    return models


MODELS: Dict[Tuple[int, str], TechModel] = _build_models()


def _normalize_flavor(flavor: str) -> str:
    upper = flavor.upper()
    return upper if upper in KNOWN_FLAVORS else flavor


def tech_model(node_nm: int, flavor: str = "HP") -> TechModel:
    """The scaling-table entry for (node, flavor).

    Flavors are case-insensitive for ``HP``/``LP``; the baseline process
    is registered as ``tech_model(500, "base")``.  Raises
    :class:`UnknownTechError` — naming every known point — otherwise.
    """
    model = MODELS.get((node_nm, _normalize_flavor(flavor)))
    if model is None:
        nodes = "/".join(str(node) for node in KNOWN_NODES)
        raise UnknownTechError(
            f"unknown technology point {node_nm} nm {flavor!r}; known:"
            f" nodes {nodes} nm in flavors {', '.join(KNOWN_FLAVORS)},"
            f" plus the {BASELINE.node_nm} nm 'base' process"
        )
    return model


@dataclass(frozen=True)
class TechSpec:
    """A wire/cache-friendly reference to one technology operating axis.

    What jobs, :class:`~repro.explore.parallel.EvalRequest`\\ s, and
    cache keys carry: plain picklable fields instead of a whole
    :class:`TechModel`, resolved via :meth:`model` where the numbers are
    needed.  ``budget_mw`` (optional) asks the evaluation to cap the
    operating point to a power budget.
    """

    node_nm: int
    flavor: str = "HP"
    budget_mw: Optional[float] = None

    def model(self) -> TechModel:
        """Resolve against the tables (raises :class:`UnknownTechError`)."""
        return tech_model(self.node_nm, self.flavor)

    @property
    def cache_key(self) -> Tuple:
        """The tuple folded into evaluation/coalescing keys when set."""
        return ("tech", self.node_nm, self.flavor, self.budget_mw)

    def label(self) -> str:
        text = f"{self.node_nm} nm {self.flavor}"
        if self.budget_mw is not None:
            text += f" @ {self.budget_mw:g} mW"
        return text

    def suffix(self) -> str:
        """A compact label suffix, e.g. ``@22HP/8mW``."""
        text = f"@{self.node_nm}{self.flavor}"
        if self.budget_mw is not None:
            text += f"/{self.budget_mw:g}mW"
        return text


def parse_tech(spec: object) -> Optional[TechSpec]:
    """Parse a wire-form tech object into a validated :class:`TechSpec`.

    The wire form is ``{"node": <int nm>, "flavor": "HP"|"LP",
    "budget_mw": <number>}`` with ``flavor`` and ``budget_mw`` optional.
    ``None`` passes through (no tech axis).  Structural problems raise
    :class:`ValueError` (the serve layer answers 400); an unknown
    node/flavor raises :class:`UnknownTechError` (a stable SRV-coded
    422 rejection).
    """
    if spec is None:
        return None
    if not isinstance(spec, dict):
        raise ValueError(
            "'tech' must be an object with an integer 'node'"
            " (and optional 'flavor', 'budget_mw')"
        )
    if "node" not in spec:
        raise ValueError("'tech' needs a 'node' (nm, integer)")
    node_raw = spec["node"]
    if isinstance(node_raw, bool) or not isinstance(node_raw, (int, float)) \
            or int(node_raw) != node_raw:
        raise ValueError("'tech'.'node' must be an integer (nm)")
    node = int(node_raw)
    flavor = spec.get("flavor", "HP")
    if not isinstance(flavor, str):
        raise ValueError("'tech'.'flavor' must be a string")
    budget = spec.get("budget_mw")
    if budget is not None:
        if isinstance(budget, bool) or not isinstance(budget, (int, float)):
            raise ValueError("'tech'.'budget_mw' must be a number (mW)")
        budget = float(budget)
        if budget <= 0.0:
            raise ValueError("'tech'.'budget_mw' must be positive")
    model = tech_model(node, flavor)  # raises UnknownTechError
    return TechSpec(node_nm=model.node_nm, flavor=model.flavor,
                    budget_mw=budget)
