"""DVFS operating points: max frequency under a power budget.

Given a design's nominal-voltage power split (dynamic / static, both at
the technology's nominal supply and frequency) and a budget, the solver
finds the highest supply voltage — hence, via the V/f curve, the highest
frequency — whose total power fits:

* dynamic power scales as ``(v/vnom)² · frequency_factor(v)`` (C·V²·f);
* static power scales as ``v/vnom`` (leakage current held first-order
  constant over the small DVFS range, so P = I·V is linear in V);
* frequency scales as ``frequency_factor(v)`` from the model's curve.

Both scalings are monotone non-decreasing in v, so the max-voltage
feasible point is found by bisection.  When even the minimum-voltage
point exceeds the budget the design is **dark silicon**: it cannot run
within the budget at any supported supply, and the solver returns the
floor point flagged ``dark_silicon`` (capped, infeasible) rather than
inventing a voltage the process does not support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from .. import obs
from .model import TechModel

__all__ = ["OperatingPoint", "dvfs_sweep", "solve_operating_point"]

#: bisection iterations: halves the vdd interval to ~1e-18 of its width
_BISECT_ITERS = 60


@dataclass(frozen=True)
class OperatingPoint:
    """One (voltage, frequency, power) point of a design in a process."""

    vdd: float
    frequency_mhz: float
    dynamic_mw: float
    static_mw: float
    #: the budget this point was solved under (None = uncapped)
    budget_mw: Optional[float]
    #: True when the budget forced the point below nominal
    capped: bool
    #: True when even the minimum-voltage point exceeds the budget
    dark_silicon: bool

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.static_mw


def _point_at(
    tech: TechModel,
    vdd: float,
    nominal_frequency_mhz: float,
    nominal_dynamic_mw: float,
    nominal_static_mw: float,
    budget_mw: Optional[float],
    *,
    capped: bool,
    dark_silicon: bool = False,
) -> OperatingPoint:
    u = vdd / tech.vdd_nominal_v
    factor = tech.frequency_factor(vdd)
    return OperatingPoint(
        vdd=vdd,
        frequency_mhz=nominal_frequency_mhz * factor,
        dynamic_mw=nominal_dynamic_mw * u * u * factor,
        static_mw=nominal_static_mw * u,
        budget_mw=budget_mw,
        capped=capped,
        dark_silicon=dark_silicon,
    )


def solve_operating_point(
    tech: TechModel,
    nominal_frequency_mhz: float,
    nominal_dynamic_mw: float,
    nominal_static_mw: float,
    budget_mw: Optional[float] = None,
) -> OperatingPoint:
    """The max-frequency point of a design under *budget_mw*.

    The nominal figures must be the design's frequency and power at the
    technology's **nominal** supply.  With ``budget_mw=None`` (or a
    budget the nominal point already meets) the nominal point comes back
    uncapped.  Otherwise the supply is bisected down the V/f curve to
    the highest voltage whose total power fits; if even ``vdd_min``
    exceeds the budget the floor point is returned flagged
    ``dark_silicon``.
    """
    if nominal_frequency_mhz <= 0.0:
        raise ValueError("nominal frequency must be positive")
    if nominal_dynamic_mw < 0.0 or nominal_static_mw < 0.0:
        raise ValueError("nominal power terms must be non-negative")
    if budget_mw is not None and budget_mw <= 0.0:
        raise ValueError("power budget must be positive (or None)")

    nominal = _point_at(
        tech, tech.vdd_nominal_v, nominal_frequency_mhz,
        nominal_dynamic_mw, nominal_static_mw, budget_mw, capped=False,
    )
    if budget_mw is None or nominal.total_mw <= budget_mw:
        return nominal

    floor = _point_at(
        tech, tech.vdd_min_v, nominal_frequency_mhz,
        nominal_dynamic_mw, nominal_static_mw, budget_mw,
        capped=True, dark_silicon=True,
    )
    if floor.total_mw > budget_mw:
        return floor

    lo, hi = tech.vdd_min_v, tech.vdd_nominal_v  # lo fits, hi does not
    for _ in range(_BISECT_ITERS):
        mid = 0.5 * (lo + hi)
        point = _point_at(
            tech, mid, nominal_frequency_mhz,
            nominal_dynamic_mw, nominal_static_mw, budget_mw, capped=True,
        )
        if point.total_mw <= budget_mw:
            lo = mid
        else:
            hi = mid
    return _point_at(
        tech, lo, nominal_frequency_mhz,
        nominal_dynamic_mw, nominal_static_mw, budget_mw, capped=True,
    )


def dvfs_sweep(
    model,
    tech: TechModel,
    budgets: Iterable[Optional[float]],
    stats=None,
) -> List[OperatingPoint]:
    """Operating points of one synthesized model across power budgets.

    *model* is a baseline :class:`~repro.hgen.synthesize.HardwareModel`
    (or one already bound to *tech*); it is re-projected into *tech*
    via :meth:`with_tech` — a cheap view, **no re-synthesis** — then one
    power estimate at the scaled nominal point feeds every budget's
    solve.  N budgets therefore cost 1 synthesis + 1 power estimate +
    N closed-form solves, which is what makes a report a curve instead
    of a point.  ``None`` in *budgets* yields the uncapped nominal.
    """
    from ..hgen.power import estimate_power  # local: hgen imports tech

    scaled = model.with_tech(tech)
    nominal_power = estimate_power(
        model.desc, model.netlist, scaled.clock_mhz,
        stats=stats, area=model.area, tech=tech,
    )
    points = []
    for budget in budgets:
        points.append(solve_operating_point(
            tech,
            nominal_frequency_mhz=nominal_power.frequency_mhz,
            nominal_dynamic_mw=nominal_power.dynamic_mw,
            nominal_static_mw=nominal_power.static_mw,
            budget_mw=budget,
        ))
        obs.add("tech.sweep_points")
    return points
