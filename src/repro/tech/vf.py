"""Monotone piecewise-linear voltage/frequency curve interpolation.

A V/f curve is a tuple of ``(vdd, factor)`` knots: at supply *vdd* the
process sustains ``factor`` × its nominal-voltage frequency.  Curves are
validated once (strictly increasing voltage, non-decreasing factor,
positive everywhere) and interpolated linearly between knots;
evaluations outside the table are **clamped** to the end knots rather
than extrapolated — below ``vdd_min`` transistors stop switching
reliably and above nominal the table simply has no data, so the model
refuses to invent either.
"""

from __future__ import annotations

from typing import Sequence, Tuple

__all__ = ["interpolate", "validate_curve"]

#: one V/f knot: (supply voltage in V, frequency factor vs nominal)
Knot = Tuple[float, float]


def validate_curve(curve: Sequence[Knot]) -> Tuple[Knot, ...]:
    """Check a V/f curve's invariants; returns it as a tuple.

    Raises :class:`ValueError` unless the curve is non-empty, every knot
    is a positive ``(vdd, factor)`` pair, voltages strictly increase,
    and factors are non-decreasing (frequency never falls as the supply
    rises — the physical monotonicity the operating-point solver's
    bisection relies on).
    """
    knots = tuple((float(v), float(f)) for v, f in curve)
    if not knots:
        raise ValueError("V/f curve needs at least one (vdd, factor) knot")
    for vdd, factor in knots:
        if vdd <= 0.0 or factor <= 0.0:
            raise ValueError(
                f"V/f knot ({vdd}, {factor}) must be positive"
            )
    for (v0, f0), (v1, f1) in zip(knots, knots[1:]):
        if v1 <= v0:
            raise ValueError(
                f"V/f voltages must strictly increase: {v0} then {v1}"
            )
        if f1 < f0:
            raise ValueError(
                f"V/f factors must be non-decreasing: {f0} then {f1}"
                f" (at {v1} V)"
            )
    return knots


def interpolate(curve: Sequence[Knot], vdd: float) -> float:
    """The frequency factor at *vdd*, clamped to the curve's bounds.

    Linear between knots; at or below the first knot's voltage the
    first factor is returned, at or above the last knot's the last —
    never an extrapolation.
    """
    if not curve:
        raise ValueError("cannot interpolate an empty V/f curve")
    if vdd <= curve[0][0]:
        return curve[0][1]
    if vdd >= curve[-1][0]:
        return curve[-1][1]
    for (v0, f0), (v1, f1) in zip(curve, curve[1:]):
        if v0 <= vdd <= v1:
            t = (vdd - v0) / (v1 - v0)
            return f0 + t * (f1 - f0)
    raise AssertionError("unreachable: vdd inside curve bounds")
