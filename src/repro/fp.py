"""Bit-true IEEE-754 single-precision helpers.

The SPAM target of the paper is a floating-point VLIW processor.  The XSIM
simulators are *bit-true*, so floating-point operations must produce exactly
the bit pattern the hardware would.  We represent FP values as 32-bit unsigned
integers (the raw word stored in a register) and round-trip through the host
``float`` via :mod:`struct`, then re-truncate to single precision.  Host
doubles exactly represent every binary32 value, and a single rounding from the
double-precision result matches an IEEE-754 binary32 fused-less implementation
for the primitive ops (+, -, *, /), which is what a 1990s FP datapath block
provides.
"""

from __future__ import annotations

import math
import struct

__all__ = [
    "float_to_bits",
    "bits_to_float",
    "fadd",
    "fsub",
    "fmul",
    "fdiv",
    "fneg",
    "fabs_",
    "fcmp",
    "itof",
    "ftoi",
    "is_nan_bits",
]

_MASK32 = 0xFFFFFFFF


def float_to_bits(value: float) -> int:
    """Return the binary32 bit pattern of *value* (rounded to nearest even)."""
    try:
        packed = struct.pack("<f", value)
    except OverflowError:
        # Overflow to signed infinity, as IEEE round-to-nearest does.
        packed = struct.pack("<f", math.inf if value > 0 else -math.inf)
    return struct.unpack("<I", packed)[0]


def bits_to_float(bits: int) -> float:
    """Return the Python float whose binary32 pattern is *bits*."""
    return struct.unpack("<f", struct.pack("<I", bits & _MASK32))[0]


def _binary32_op(a_bits: int, b_bits: int, op) -> int:
    a = bits_to_float(a_bits)
    b = bits_to_float(b_bits)
    try:
        result = op(a, b)
    except ZeroDivisionError:
        if math.isnan(a) or a == 0.0:
            return 0x7FC00000  # quiet NaN (0/0, NaN/0)
        sign = (a < 0.0) ^ (math.copysign(1.0, b) < 0.0)
        return 0xFF800000 if sign else 0x7F800000
    return float_to_bits(result)


def fadd(a_bits: int, b_bits: int) -> int:
    """binary32 addition on raw bit patterns."""
    return _binary32_op(a_bits, b_bits, lambda a, b: a + b)


def fsub(a_bits: int, b_bits: int) -> int:
    """binary32 subtraction on raw bit patterns."""
    return _binary32_op(a_bits, b_bits, lambda a, b: a - b)


def fmul(a_bits: int, b_bits: int) -> int:
    """binary32 multiplication on raw bit patterns."""
    return _binary32_op(a_bits, b_bits, lambda a, b: a * b)


def fdiv(a_bits: int, b_bits: int) -> int:
    """binary32 division on raw bit patterns."""
    return _binary32_op(a_bits, b_bits, lambda a, b: a / b)


def fneg(a_bits: int) -> int:
    """Flip the sign bit (IEEE negation is a pure sign-bit operation)."""
    return (a_bits ^ 0x80000000) & _MASK32


def fabs_(a_bits: int) -> int:
    """Clear the sign bit."""
    return a_bits & 0x7FFFFFFF


def fcmp(a_bits: int, b_bits: int) -> int:
    """Three-way compare: -1, 0, or 1 (unordered compares return -2).

    Encoded as a small signed integer for use inside RTL conditions.
    """
    a = bits_to_float(a_bits)
    b = bits_to_float(b_bits)
    if math.isnan(a) or math.isnan(b):
        return -2
    if a < b:
        return -1
    if a > b:
        return 1
    return 0


def itof(value: int, width: int = 32) -> int:
    """Convert a *width*-bit two's-complement integer to binary32 bits."""
    if value & (1 << (width - 1)):
        value -= 1 << width
    return float_to_bits(float(value))


def ftoi(bits: int, width: int = 32) -> int:
    """Convert binary32 bits to a *width*-bit two's-complement integer.

    Truncates toward zero; saturates on overflow/NaN like most mid-90s DSP
    FP units do.
    """
    value = bits_to_float(bits)
    max_pos = (1 << (width - 1)) - 1
    min_neg = -(1 << (width - 1))
    if math.isnan(value):
        result = 0
    elif value >= max_pos:
        result = max_pos
    elif value <= min_neg:
        result = min_neg
    else:
        result = int(value)  # truncates toward zero
    return result & ((1 << width) - 1)


def is_nan_bits(bits: int) -> bool:
    """True if the binary32 pattern encodes a NaN."""
    return (bits & 0x7F800000) == 0x7F800000 and (bits & 0x007FFFFF) != 0
