"""Pluggable search strategies for architecture exploration.

A :class:`Strategy` owns *which* candidates get measured and *what*
survives; the :class:`~repro.explore.explorer.Explorer` driver owns the
measuring.  The lifecycle per ``Explorer.explore`` run:

1. ``begin(context)`` — receive the evaluated initial candidate, the
   cost weights, the round budget, a seeded ``random.Random``, and
   ``propose_from`` (the measurement-guided transform generator that
   greedy has always used).
2. Each round, ``propose()`` returns a batch of
   :class:`~repro.explore.parallel.EvalRequest`\\ s.  The driver pushes
   the whole batch through the :class:`ParallelEvaluator` — worker
   pools, the artifact cache, the static gate, and obs profiling apply
   to every strategy identically — and calls ``observe(survivors)``
   with the feasible results in submission order (errors and infeasible
   points go straight to the log).
3. When ``finished`` goes true, ``winner()`` names the trajectory whose
   accepted chain becomes ``ExplorationLog.accepted``.

Tag every request with the trajectory it belongs to
(``EvalRequest(..., tag=...)``) so the log attributes profiles and
cache hits per lineage.

Strategies must be deterministic given (initial description, seed):
propose in a reproducible order and break ties first-wins, so a run is
bit-identical whatever pool mode measures it.  A Strategy instance is
reusable (``begin`` resets it) but must not drive two concurrent
explorations.

The registry maps spelling to implementation: ``get("greedy")``,
``get("pareto", frontier_cap=6)``, or pass an instance through
unchanged.  ``"greedy"`` is the default everywhere and reproduces the
original single-trajectory engine bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Type

from ..errors import ExplorationError, ReproError
from ..isdl import ast, fingerprint
from . import transforms
from .explorer import Candidate, ExplorationLog, Trajectory
from .metrics import CostWeights
from .parallel import EvalRequest

__all__ = [
    "Greedy",
    "MultiStart",
    "ParetoFrontier",
    "Population",
    "Strategy",
    "StrategyContext",
    "UnknownStrategyError",
    "available",
    "get",
    "register",
]


class UnknownStrategyError(ExplorationError):
    """Raised for a strategy name or parameters the registry rejects."""


@dataclass
class StrategyContext:
    """Everything a strategy may consult, handed to ``begin``."""

    #: the already-evaluated, feasible starting point
    initial: Candidate
    weights: CostWeights
    #: round budget — one ``propose``/``observe`` exchange per round
    max_iterations: int
    #: measurement-guided proposal generator: incumbent → [(desc, how)]
    propose_from: Callable[[Candidate], List[Tuple[ast.Description, str]]]
    #: seeded PRNG — the only sanctioned randomness source
    rng: random.Random
    log: ExplorationLog


class Strategy:
    """Base lifecycle; subclasses fill in the search policy."""

    #: registry spelling, also recorded on the log
    name = "strategy"

    def begin(self, context: StrategyContext) -> None:
        raise NotImplementedError

    def propose(self) -> List[EvalRequest]:
        raise NotImplementedError

    def observe(self, survivors: List[Candidate]) -> None:
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        raise NotImplementedError

    def winner(self) -> Trajectory:
        """The trajectory whose chain becomes ``log.accepted``."""
        raise NotImplementedError


def _best(candidates: List[Candidate],
          weights: CostWeights) -> Optional[Candidate]:
    """Cheapest candidate, first-wins on ties (strict ``<`` in order)."""
    best: Optional[Candidate] = None
    for candidate in candidates:
        if best is None or candidate.cost(weights) < best.cost(weights):
            best = candidate
    return best


class Greedy(Strategy):
    """The paper's Figure-1 loop: adopt the cheapest feasible proposal,
    stop when nothing beats the incumbent.

    This is the original ``Explorer`` engine extracted unchanged —
    trajectories, iteration counts, and tie-breaks are bit-identical to
    the pre-strategy code.
    """

    name = "greedy"

    def begin(self, context: StrategyContext) -> None:
        self.context = context
        self.trajectory = context.log.trajectory("greedy")
        self.trajectory.accepted.append(context.initial)
        self.incumbent = context.initial
        self.rounds_left = context.max_iterations
        self._done = context.max_iterations <= 0

    def propose(self) -> List[EvalRequest]:
        return [
            EvalRequest(desc, derived_by, tag=self.trajectory.label,
                        parent=self.incumbent.desc)
            for desc, derived_by in self.context.propose_from(self.incumbent)
        ]

    def observe(self, survivors: List[Candidate]) -> None:
        self.rounds_left -= 1
        weights = self.context.weights
        best = _best(survivors, weights)
        if best is None or best.cost(weights) >= self.incumbent.cost(weights):
            self._done = True  # converged: the round still counts
            return
        self.incumbent = best
        self.trajectory.accepted.append(best)
        if self.rounds_left <= 0:
            self._done = True

    @property
    def finished(self) -> bool:
        return self._done

    def winner(self) -> Trajectory:
        return self.trajectory


def perturb(desc: ast.Description, rng: random.Random,
            moves: int = 2) -> Optional[Tuple[ast.Description, str]]:
    """Apply *moves* random structural transforms to *desc*.

    The move list is enumerated in deterministic description order, so
    a given (desc, rng state) always perturbs identically.  Moves that
    the transform layer rejects are skipped; returns ``None`` when no
    legal move exists.
    """
    applied: List[str] = []
    current = desc
    for _ in range(max(1, moves)):
        options: List[Tuple[str, Callable[[], ast.Description]]] = []
        for fld in current.fields:
            if len(fld.operations) > 1:
                for op in fld.operations:
                    options.append((
                        f"drop {fld.name}.{op.name}",
                        lambda f=fld.name, o=op.name: transforms.drop_operation(
                            current, f, o),
                    ))
        for storage in current.storages.values():
            if storage.kind in (ast.StorageKind.INSTRUCTION_MEMORY,
                                ast.StorageKind.DATA_MEMORY):
                if (storage.depth or 0) >= 32:
                    options.append((
                        f"halve {storage.name}",
                        lambda s=storage.name, d=storage.depth:
                            transforms.resize_memory(current, s, d // 2),
                    ))
            elif storage.kind is ast.StorageKind.REGISTER_FILE:
                if (storage.depth or 0) >= 4:
                    options.append((
                        "narrow register file",
                        lambda d=storage.depth:
                            transforms.narrow_register_file(current, d // 2),
                    ))
        for fld, op in current.operations():
            if op.costs.stall > 0:
                options.append((
                    f"bypass {fld.name}.{op.name}",
                    lambda f=fld.name, o=op.name, c=op.costs, t=op.timing:
                        transforms.set_operation_timing(
                            current, f, o,
                            costs=ast.Costs(c.cycle, 0, c.size),
                            timing=ast.Timing(1, t.usage),
                            rename=f"{current.name}+byp-{o}"),
                ))
        rng.shuffle(options)
        for label, apply in options:
            try:
                current = apply()
            except ReproError:
                continue
            applied.append(label)
            break
    if not applied:
        return None
    return current, "perturb: " + ", ".join(applied)


class MultiStart(Strategy):
    """Random-restart greedy: *restarts* independent greedy climbs, the
    first from the given initial, the rest from seeded random
    perturbations of it.  The winner is the cheapest endpoint across
    restarts."""

    name = "multistart"

    def __init__(self, restarts: int = 4, perturbations: int = 2):
        if restarts < 1:
            raise ValueError("multistart needs at least one restart")
        self.restarts = restarts
        self.perturbations = perturbations

    def begin(self, context: StrategyContext) -> None:
        self.context = context
        self.trajectories: List[Trajectory] = []
        self.index = -1
        self._done = False
        self._advance()

    def _advance(self) -> None:
        """Open the next restart, or finish."""
        while True:
            self.index += 1
            if self.index >= self.restarts:
                self._done = True
                return
            label = f"restart-{self.index}"
            self.trajectory = self.context.log.trajectory(label)
            self.trajectories.append(self.trajectory)
            if self.index == 0:
                seed: Optional[Tuple[ast.Description, str]] = None
                self.trajectory.accepted.append(self.context.initial)
                self.incumbent: Optional[Candidate] = self.context.initial
                self.rounds_left = self.context.max_iterations
                self.seeding = False
                if self.context.max_iterations <= 0:
                    continue  # no budget: record the start, move on
                return
            seed = perturb(self.context.initial.desc, self.context.rng,
                           self.perturbations)
            if seed is None:
                # nothing perturbable: further restarts would all
                # duplicate restart-0
                self.trajectories.pop()
                self.context.log.trajectories.remove(self.trajectory)
                self._done = True
                return
            self.seed = seed
            self.seeding = True
            self.incumbent = None
            self.rounds_left = self.context.max_iterations
            return

    def propose(self) -> List[EvalRequest]:
        if self.seeding:
            desc, derived_by = self.seed
            return [EvalRequest(desc, derived_by,
                                tag=self.trajectory.label,
                                parent=self.context.initial.desc)]
        assert self.incumbent is not None
        return [
            EvalRequest(desc, derived_by, tag=self.trajectory.label,
                        parent=self.incumbent.desc)
            for desc, derived_by in self.context.propose_from(self.incumbent)
        ]

    def observe(self, survivors: List[Candidate]) -> None:
        weights = self.context.weights
        if self.seeding:
            self.seeding = False
            start = _best(survivors, weights)
            if start is None:
                self._advance()  # infeasible seed: skip this restart
                return
            self.trajectory.accepted.append(start)
            self.incumbent = start
            return
        assert self.incumbent is not None
        self.rounds_left -= 1
        best = _best(survivors, weights)
        if (best is None
                or best.cost(weights) >= self.incumbent.cost(weights)):
            self._advance()
            return
        self.incumbent = best
        self.trajectory.accepted.append(best)
        if self.rounds_left <= 0:
            self._advance()

    @property
    def finished(self) -> bool:
        return self._done

    def winner(self) -> Trajectory:
        weights = self.context.weights
        best = self.trajectories[0]
        for trajectory in self.trajectories[1:]:
            if not trajectory.accepted:
                continue
            if trajectory.best.cost(weights) < best.best.cost(weights):
                best = trajectory
        return best


class Population(Strategy):
    """(μ+λ) beam search: every survivor proposes, parents and children
    compete, the *size* cheapest distinct designs survive each
    generation."""

    name = "population"

    def __init__(self, size: int = 4):
        if size < 1:
            raise ValueError("population size must be >= 1")
        self.size = size

    def begin(self, context: StrategyContext) -> None:
        self.context = context
        self.trajectory = context.log.trajectory("population")
        self.trajectory.accepted.append(context.initial)
        self.survivors = [context.initial]
        self.seen = {fingerprint(context.initial.desc)}
        self.generations_left = context.max_iterations
        self._done = context.max_iterations <= 0

    def propose(self) -> List[EvalRequest]:
        requests: List[EvalRequest] = []
        batch_seen = set(self.seen)
        for parent in self.survivors:
            for desc, derived_by in self.context.propose_from(parent):
                print_key = fingerprint(desc)
                if print_key in batch_seen:
                    continue
                batch_seen.add(print_key)
                requests.append(
                    EvalRequest(desc, derived_by,
                                tag=self.trajectory.label,
                                parent=parent.desc)
                )
        return requests

    def observe(self, survivors: List[Candidate]) -> None:
        self.generations_left -= 1
        weights = self.context.weights
        for child in survivors:
            self.seen.add(fingerprint(child.desc))
        pool = self.survivors + survivors
        # stable sort: parents outrank equal-cost children, submission
        # order breaks the rest
        pool.sort(key=lambda c: c.cost(weights))
        next_generation = pool[: self.size]
        incumbent = self.trajectory.best
        best = next_generation[0]
        if best.cost(weights) < incumbent.cost(weights):
            self.trajectory.accepted.append(best)
        before = [fingerprint(c.desc) for c in self.survivors]
        after = [fingerprint(c.desc) for c in next_generation]
        self.survivors = next_generation
        if after == before or self.generations_left <= 0:
            self._done = True

    @property
    def finished(self) -> bool:
        return self._done

    def winner(self) -> Trajectory:
        return self.trajectory


class ParetoFrontier(Strategy):
    """Multi-objective search keeping the mutually non-dominated
    archive over (cost, cycle_ns, power_mw, die_size).

    Each round expands the cost-cheapest archive point plus up to
    ``frontier_cap - 1`` other frontier members, round-robin.  Because
    the cost-best point is always expanded with the same proposal
    generator greedy uses, the final frontier contains a point no worse
    in cost than greedy's best under the same round budget.  ``winner``
    is the cost-best chain; the full frontier is
    ``ExplorationLog.frontier()``.
    """

    name = "pareto"

    def __init__(self, frontier_cap: int = 4):
        if frontier_cap < 1:
            raise ValueError("frontier_cap must be >= 1")
        self.frontier_cap = frontier_cap

    def begin(self, context: StrategyContext) -> None:
        self.context = context
        self.trajectory = context.log.trajectory("pareto")
        self.trajectory.accepted.append(context.initial)
        self.archive = [context.initial]
        self.seen = {fingerprint(context.initial.desc)}
        self.rounds_left = context.max_iterations
        self.rotation = 0
        self._done = context.max_iterations <= 0

    def _objectives(self, candidate: Candidate):
        from . import pareto

        return pareto.objectives(candidate.evaluation,
                                 self.context.weights)

    def propose(self) -> List[EvalRequest]:
        weights = self.context.weights
        cheapest = min(range(len(self.archive)),
                       key=lambda i: self.archive[i].cost(weights))
        parents = [self.archive[cheapest]]
        others = [c for i, c in enumerate(self.archive) if i != cheapest]
        if others and self.frontier_cap > 1:
            take = self.frontier_cap - 1
            start = self.rotation % len(others)
            self.rotation += take
            parents.extend(others[(start + k) % len(others)]
                           for k in range(min(take, len(others))))
        requests: List[EvalRequest] = []
        batch_seen = set(self.seen)
        for parent in parents:
            for desc, derived_by in self.context.propose_from(parent):
                print_key = fingerprint(desc)
                if print_key in batch_seen:
                    continue
                batch_seen.add(print_key)
                requests.append(
                    EvalRequest(desc, derived_by,
                                tag=self.trajectory.label,
                                parent=parent.desc)
                )
        return requests

    def observe(self, survivors: List[Candidate]) -> None:
        from . import pareto

        self.rounds_left -= 1
        weights = self.context.weights
        for child in survivors:
            self.seen.add(fingerprint(child.desc))
        before = [fingerprint(c.desc) for c in self.archive]
        self.archive = pareto.frontier(self.archive + survivors,
                                       key=self._objectives)
        after = [fingerprint(c.desc) for c in self.archive]
        incumbent = self.trajectory.best
        best = _best(self.archive, weights)
        if best is not None and best.cost(weights) < incumbent.cost(weights):
            self.trajectory.accepted.append(best)
        if after == before or self.rounds_left <= 0:
            self._done = True

    @property
    def finished(self) -> bool:
        return self._done

    def winner(self) -> Trajectory:
        return self.trajectory


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Type[Strategy]] = {}


def register(cls: Type[Strategy]) -> Type[Strategy]:
    """Add a Strategy class to the registry under ``cls.name``."""
    _REGISTRY[cls.name] = cls
    return cls


def available() -> List[str]:
    """Registered strategy names, sorted."""
    return sorted(_REGISTRY)


def get(spec, **params) -> Strategy:
    """Resolve *spec* to a Strategy instance.

    *spec* is either an instance (returned as-is; *params* must then be
    empty) or a registry name constructed with ``**params``.  Unknown
    names and rejected parameters raise :class:`UnknownStrategyError`
    naming the known strategies.
    """
    if isinstance(spec, Strategy):
        if params:
            raise UnknownStrategyError(
                "params apply only when the strategy is given by name,"
                " not as an instance"
            )
        return spec
    known = ", ".join(available())
    if not isinstance(spec, str) or spec not in _REGISTRY:
        raise UnknownStrategyError(
            f"unknown strategy {spec!r}; known strategies: {known}"
        )
    try:
        return _REGISTRY[spec](**params)
    except (TypeError, ValueError) as exc:
        raise UnknownStrategyError(
            f"bad parameters for strategy {spec!r}: {exc};"
            f" known strategies: {known}"
        ) from None


for _cls in (Greedy, MultiStart, Population, ParetoFrontier):
    register(_cls)
