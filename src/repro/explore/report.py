"""Human-readable reports for exploration runs."""

from __future__ import annotations

from typing import List, Optional

from ..cache import ArtifactCache
from ..obs import MetricsSnapshot
from .explorer import ExplorationLog
from .metrics import CostWeights, Evaluation


def evaluation_table(evaluations: List[Evaluation],
                     weights: CostWeights) -> str:
    """A fixed-width comparison table of candidate evaluations."""
    header = (
        f"{'architecture':<24} {'cycles':>8} {'ns/cyc':>7} {'µs':>9}"
        f" {'die (cells)':>12} {'mW':>7} {'cost':>12}"
    )
    lines = [header, "-" * len(header)]
    for evaluation in evaluations:
        if not evaluation.feasible:
            lines.append(
                f"{evaluation.name:<24} infeasible: {evaluation.reason}"
            )
            continue
        lines.append(
            f"{evaluation.name:<24} {evaluation.cycles:>8}"
            f" {evaluation.cycle_ns:>7.1f} {evaluation.runtime_us:>9.2f}"
            f" {evaluation.die_size:>12,.0f} {evaluation.power_mw:>7.1f}"
            f" {evaluation.cost(weights):>12.1f}"
        )
    return "\n".join(lines)


def operating_point_table(evaluations: List[Evaluation]) -> str:
    """The operating-point curve of technology-swept evaluations.

    One row per evaluation that carries a technology axis: node/flavor,
    supply voltage, clock, total power, the budget it was solved under,
    and whether the dark-silicon cap bound.  Evaluations without a tech
    axis (including any unpickled from pre-tech caches) are skipped;
    returns an empty string when none qualify.
    """
    rows = []
    for evaluation in evaluations:
        node = getattr(evaluation, "tech_node", None)
        if node is None or not evaluation.feasible:
            continue
        flavor = getattr(evaluation, "tech_flavor", None) or "?"
        vdd = getattr(evaluation, "vdd", None)
        budget = getattr(evaluation, "budget_mw", None)
        capped = getattr(evaluation, "power_capped", False)
        rows.append((
            evaluation.name,
            f"{node}{flavor}",
            f"{vdd:.2f}" if vdd is not None else "-",
            f"{evaluation.clock_mhz:.1f}",
            f"{evaluation.power_mw:.2f}",
            f"{budget:g}" if budget is not None else "-",
            "capped" if capped else "",
        ))
    if not rows:
        return ""
    header = (
        f"{'architecture':<28} {'tech':>6} {'vdd':>6} {'MHz':>8}"
        f" {'mW':>8} {'budget':>7} {'':<6}"
    )
    lines = ["operating points:", header, "  " + "-" * (len(header) - 2)]
    for name, tech, vdd, mhz, mw, budget, capped in rows:
        lines.append(
            f"{name:<28} {tech:>6} {vdd:>6} {mhz:>8} {mw:>8}"
            f" {budget:>7} {capped:<6}"
        )
    return "\n".join(lines)


def service_metrics_table(snapshot: MetricsSnapshot) -> str:
    """The evaluation-service section of a report: every ``serve.*``
    counter and gauge from *snapshot*, one per line, sorted by name.

    Returns an empty string when the snapshot carries no service
    metrics (e.g. the run never touched :mod:`repro.serve`).
    """
    rows = []
    for name in sorted(snapshot.counters):
        if name.startswith("serve."):
            rows.append((name, snapshot.counters[name]))
    for name in sorted(snapshot.gauges):
        if name.startswith("serve."):
            rows.append((name, snapshot.gauges[name]))
    if not rows:
        return ""
    lines = ["evaluation service:"]
    for name, value in rows:
        text = f"{value:g}" if value != int(value) else f"{int(value)}"
        lines.append(f"  {name:<28} {text:>10}")
    return "\n".join(lines)


def exploration_report(log: ExplorationLog,
                       cache: Optional[ArtifactCache] = None,
                       metrics: Optional[MetricsSnapshot] = None) -> str:
    """The trajectory of one exploration run.

    Pass the run's *cache* to append its hit/miss accounting; when the
    run was made with :mod:`repro.obs` enabled, the merged per-stage
    profile of every candidate measurement is appended as well.  Pass a
    *metrics* snapshot (e.g. ``service.metrics_snapshot()`` from a
    :class:`repro.serve.EvaluationService`) to append the service's
    job accounting — accepted/coalesced/rejected counts and queue
    depth — so batch runs driven through the daemon report the same
    way as in-process ones.
    """
    statically_rejected = sum(1 for r in log.errors if r.diagnostics)
    lines = [
        f"exploration ({log.strategy}): {log.iterations} iteration(s),"
        f" {len(log.accepted) - 1} improvement step(s),"
        f" {len(log.rejected)} infeasible candidate(s),"
        f" {statically_rejected} statically rejected",
        "",
    ]
    for i, candidate in enumerate(log.accepted):
        cost = candidate.cost(log.weights)
        lines.append(
            f"  step {i}: [{candidate.derived_by}]"
            f" cost {cost:,.1f} — {candidate.evaluation.summary()}"
        )
    lines.append("")
    lines.append(
        f"total improvement: {log.improvement:.2f}x cost reduction"
    )
    if len(log.trajectories) > 1:
        lines.append("")
        lines.append(f"trajectories ({len(log.trajectories)}):")
        for trajectory in log.trajectories:
            if not trajectory.accepted:
                lines.append(f"  {trajectory.label:<16} (no feasible start)")
                continue
            best = trajectory.best
            lines.append(
                f"  {trajectory.label:<16} {len(trajectory.accepted) - 1}"
                f" step(s), best cost {best.cost(log.weights):,.1f}"
                f" [{best.derived_by}],"
                f" cache {trajectory.cache_hits} hit(s)"
                f" / {trajectory.cache_misses} miss(es)"
            )
    front = log.frontier()
    if len(front) > 1:
        lines.append("")
        lines.append(f"pareto frontier ({len(front)} point(s),"
                     f" cost/cycle-time/power/area):")
        lines.append(
            evaluation_table([c.evaluation for c in front], log.weights)
        )
    points = operating_point_table([c.evaluation for c in log.evaluated])
    if points:
        lines.append("")
        lines.append(points)
    if cache is not None:
        lines.append("")
        lines.append(cache.stats.report())
    profile = log.merged_profile()
    if profile is not None and profile.stage_names():
        lines.append("")
        lines.append(f"stage profile ({log.profile_count} candidate"
                     f" measurement(s)):")
        lines.append(profile.stage_table())
    if metrics is not None:
        table = service_metrics_table(metrics)
        if table:
            lines.append("")
            lines.append(table)
    return "\n".join(lines)
