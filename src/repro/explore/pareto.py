"""Pareto-dominance utilities for multi-objective exploration.

The exploration cost function folds runtime, area, and power into one
scalar so the greedy loop has a total order to climb.  A frontier search
keeps the objectives separate instead: candidate *a* **dominates** *b*
when it is no worse on every axis and strictly better on at least one.
Dominance is a strict partial order (irreflexive, asymmetric,
transitive); the **frontier** of a candidate set is the subset nothing
dominates — the trade-off curve the paper's methodology lets a designer
actually see, rather than one weighted winner.

All axes are minimized.  The default objective vector of an
:class:`~repro.explore.metrics.Evaluation` is
``(cost, cycle_ns, power_mw, die_size)``: scalar cost rides along as an
axis so the frontier always contains the cost-best point, and cycle
time, power, and area span the physical trade-offs.

Everything here is pure and deterministic: frontier extraction preserves
first-seen input order and keeps exactly one representative of any
exactly-duplicated objective vector (the earliest), so two runs that
evaluated the same candidates in the same order produce byte-identical
frontiers whatever pool mode measured them.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

__all__ = [
    "dominates",
    "frontier",
    "frontier_indices",
    "objectives",
]

T = TypeVar("T")

#: objective vector — a tuple of floats, all minimized
Point = Tuple[float, ...]


def objectives(evaluation, weights=None) -> Point:
    """The default objective vector of one feasible evaluation.

    ``(cost, cycle_ns, power_mw, die_size)`` — *weights* (defaulting to
    the evaluation's attached weights) shape only the scalar-cost axis.
    An infeasible evaluation maps to all-infinite coordinates, which
    every feasible point dominates.
    """
    if not evaluation.feasible:
        return (float("inf"),) * 4
    return (
        evaluation.cost(weights),
        evaluation.cycle_ns,
        evaluation.power_mw,
        evaluation.die_size,
    )


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """True when *a* Pareto-dominates *b* (≤ everywhere, < somewhere).

    A strict partial order: no point dominates itself (or any exact
    duplicate of itself), ``dominates(a, b)`` and ``dominates(b, a)``
    are never both true, and dominance chains compose transitively.
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors differ in length: {len(a)} vs {len(b)}"
        )
    strictly_better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            strictly_better = True
    return strictly_better


def frontier_indices(points: Sequence[Point]) -> List[int]:
    """Indices of the non-dominated *points*, in input order.

    Exactly the dominated points are dropped; of exactly-equal points
    only the first index is kept (deterministic tie handling).
    """
    kept: List[int] = []
    for i, candidate in enumerate(points):
        dominated = False
        for j, other in enumerate(points):
            if i == j:
                continue
            if dominates(other, candidate):
                dominated = True
                break
            if j < i and tuple(other) == tuple(candidate):
                dominated = True  # exact duplicate: the earlier one stands
                break
        if not dominated:
            kept.append(i)
    return kept


def frontier(items: Sequence[T],
             key: Optional[Callable[[T], Sequence[float]]] = None
             ) -> List[T]:
    """The non-dominated subset of *items*, preserving input order.

    *key* maps an item to its objective vector (identity when omitted —
    the items are the vectors).  Order stability and duplicate handling
    follow :func:`frontier_indices`.
    """
    if key is None:
        points = [tuple(item) for item in items]  # type: ignore[arg-type]
    else:
        points = [tuple(key(item)) for item in items]
    return [items[i] for i in frontier_indices(points)]
