"""Architecture exploration over pluggable search strategies.

The paper's Figure-1 loop is greedy single-trajectory iterative
improvement: evaluate the incumbent, propose measurement-guided
candidate improvements, adopt the cheapest feasible one, stop at
convergence.  That loop is now one :class:`~repro.explore.strategies.Strategy`
(``"greedy"``, the default — byte-identical trajectories to the original
engine) among several: multi-start random restarts, beam/(μ+λ)
population search, and a Pareto-frontier mode that returns the whole
non-dominated cost/cycle-time/power/area trade-off curve instead of a
single winner.

:class:`Explorer` is the driver.  Per round it asks the strategy for a
batch of :class:`~repro.explore.parallel.EvalRequest`\\ s, measures them
through the :class:`~repro.explore.parallel.ParallelEvaluator` (worker
pools, the shared :class:`~repro.cache.ArtifactCache`, the static
validity gate, and :mod:`repro.obs` profiling all apply unchanged,
whatever the strategy), does the log bookkeeping, and feeds the feasible
survivors back to the strategy.  Results stay deterministic — identical
trajectories and frontiers whatever the pool mode.

Every candidate is a complete ISDL description, so the whole tool chain
(compiler, assembler, ILS, HGEN) regenerates automatically for each
measurement — the property the paper argues makes exploration practical
at all.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..cache import ArtifactCache
from ..codegen.ir import Kernel
from ..errors import ExplorationError, ReproError
from ..isdl import ast
from ..obs.metrics import MetricsSnapshot
from ..tech.model import TechSpec
from . import transforms
from .metrics import CostWeights, Evaluation
from .parallel import EvalRequest, EvalResult, ParallelEvaluator


@dataclass
class Candidate:
    """One evaluated point in the design space."""

    desc: ast.Description
    evaluation: Evaluation
    derived_by: str = "initial"

    def cost(self, weights: Optional[CostWeights] = None) -> float:
        return self.evaluation.cost(weights)


@dataclass
class Trajectory:
    """One improvement lineage inside an exploration run.

    The greedy strategy produces exactly one; multi-start produces one
    per restart, population/Pareto searches one for their best-incumbent
    chain.  Per-trajectory profile and cache accounting lives here so a
    label measured in two trajectories is attributed to both (the global
    :attr:`ExplorationLog.profiles` dict is first-wins across the whole
    run and cannot tell them apart).
    """

    label: str
    accepted: List[Candidate] = field(default_factory=list)
    #: per-candidate observability profile, first measurement per label
    #: *within this trajectory*; empty unless :mod:`repro.obs` was on
    profiles: Dict[str, MetricsSnapshot] = field(default_factory=dict)
    #: warm-cache hits / real measurements attributed to this trajectory
    cache_hits: int = 0
    cache_misses: int = 0

    @property
    def best(self) -> Candidate:
        return self.accepted[-1]

    @property
    def initial(self) -> Candidate:
        return self.accepted[0]

    def improvement(self, weights: Optional[CostWeights] = None) -> float:
        """Cost ratio initial/best along this trajectory."""
        initial = self.initial.cost(weights)
        best = self.best.cost(weights)
        if best == 0:
            return float("inf")
        return initial / best

    def merged_profile(self) -> Optional[MetricsSnapshot]:
        """This trajectory's profiles folded into one snapshot."""
        if not self.profiles:
            return None
        return MetricsSnapshot.merged(self.profiles.values())


@dataclass
class ExplorationLog:
    """The record of one exploration run.

    :attr:`accepted` remains the winning trajectory's candidate chain
    (what greedy always produced), so ``best``/``initial``/
    ``improvement`` read the same regardless of strategy;
    :attr:`trajectories` holds every lineage a multi-trajectory strategy
    followed, and :meth:`frontier` extracts the non-dominated subset of
    everything measured.
    """

    weights: CostWeights
    accepted: List[Candidate] = field(default_factory=list)
    rejected: List[Candidate] = field(default_factory=list)
    errors: List[EvalResult] = field(default_factory=list)
    iterations: int = 0
    #: per-candidate observability profile (label → first measurement
    #: anywhere in the run); empty unless :mod:`repro.obs` was enabled
    profiles: Dict[str, MetricsSnapshot] = field(default_factory=dict)
    #: registry name of the strategy that drove the run
    strategy: str = "greedy"
    #: every improvement lineage, in creation order
    trajectories: List[Trajectory] = field(default_factory=list)
    #: every feasible measured candidate, in evaluation order
    evaluated: List[Candidate] = field(default_factory=list)
    #: total measurements dispatched / answered from the warm cache
    evaluations: int = 0
    cache_hits: int = 0

    def trajectory(self, label: str) -> Trajectory:
        """The trajectory named *label*, created on first use."""
        for trajectory in self.trajectories:
            if trajectory.label == label:
                return trajectory
        trajectory = Trajectory(label)
        self.trajectories.append(trajectory)
        return trajectory

    def frontier(self, weights: Optional[CostWeights] = None
                 ) -> List[Candidate]:
        """The mutually non-dominated subset of every feasible candidate
        measured this run (cost/cycle-time/power/area axes, all
        minimized; deterministic order — see :mod:`repro.explore.pareto`)."""
        from . import pareto

        weights = weights or self.weights
        return pareto.frontier(
            list(self.evaluated),
            key=lambda c: pareto.objectives(c.evaluation, weights),
        )

    @property
    def profile_count(self) -> int:
        """Distinct candidate measurements with a recorded profile,
        counted once per (trajectory, label) plus unclaimed globals."""
        claimed = set()
        count = 0
        for trajectory in self.trajectories:
            count += len(trajectory.profiles)
            claimed.update(trajectory.profiles)
        count += sum(1 for label in self.profiles if label not in claimed)
        return count

    def merged_profile(self, trajectory: Optional[str] = None
                       ) -> Optional[MetricsSnapshot]:
        """Per-candidate profiles folded into one snapshot; None when
        obs was off.

        With *trajectory* (a :attr:`Trajectory.label`) only that
        lineage's measurements merge.  Without it, every trajectory
        contributes its own first-measurement-per-label set — a label
        measured in two trajectories counts once *per trajectory* —
        plus any profile recorded outside a trajectory (e.g. the shared
        initial measurement).
        """
        if trajectory is not None:
            for candidate in self.trajectories:
                if candidate.label == trajectory:
                    return candidate.merged_profile()
            raise KeyError(f"no trajectory {trajectory!r}")
        claimed = set()
        snapshots: List[MetricsSnapshot] = []
        for lineage in self.trajectories:
            claimed.update(lineage.profiles)
            snapshots.extend(lineage.profiles.values())
        head = [snapshot for label, snapshot in self.profiles.items()
                if label not in claimed]
        snapshots = head + snapshots
        if not snapshots:
            return None
        return MetricsSnapshot.merged(snapshots)

    @property
    def best(self) -> Candidate:
        return self.accepted[-1]

    @property
    def initial(self) -> Candidate:
        return self.accepted[0]

    @property
    def improvement(self) -> float:
        """Cost ratio initial/best (>1 means the search improved)."""
        initial = self.initial.cost(self.weights)
        best = self.best.cost(self.weights)
        if best == 0:
            return float("inf")
        return initial / best


class Explorer:
    """Strategy-driven search over ISDL descriptions.

    The heavy lifting — measuring candidates — goes through *evaluator*
    (built on demand when not supplied): a worker pool plus an artifact
    cache, warm-shared between iterations and across `explore` calls on
    the same instance.  Pass ``parallel="serial"`` and ``cache=None`` via
    a hand-built :class:`ParallelEvaluator` to reproduce the original
    one-at-a-time engine exactly.

    Which points get proposed and adopted is the strategy's business:
    ``explore(initial, strategy="greedy")`` (the default) runs the
    paper's Figure-1 loop; see :mod:`repro.explore.strategies` for the
    registry.
    """

    def __init__(
        self,
        kernels: Sequence[Kernel],
        weights: Optional[CostWeights] = None,
        max_candidates_per_round: int = 12,
        utilization_threshold: float = 0.05,
        *,
        cache: Optional[ArtifactCache] = None,
        evaluator: Optional[ParallelEvaluator] = None,
        parallel: str = "auto",
        max_workers: Optional[int] = None,
        static_check: bool = True,
    ):
        self.kernels = list(kernels)
        self.weights = weights or CostWeights()
        self.max_candidates_per_round = max_candidates_per_round
        self.utilization_threshold = utilization_threshold
        if evaluator is None:
            evaluator = ParallelEvaluator(
                self.kernels,
                weights=self.weights,
                cache=cache if cache is not None else ArtifactCache(),
                mode=parallel,
                max_workers=max_workers,
                static_check=static_check,
            )
        self.evaluator = evaluator

    @property
    def cache(self) -> Optional[ArtifactCache]:
        return self.evaluator.cache

    # ------------------------------------------------------------------

    def evaluate(self, desc: ast.Description, *args,
                 derived_by: str = "initial",
                 parent: Optional[ast.Description] = None,
                 tech: Optional[TechSpec] = None) -> Candidate:
        """Measure one candidate description.

        *derived_by* is keyword-only; the old positional form still
        works for one release but warns with the new spelling.  *parent*
        names the description this one was mutated from — a pure
        optimization hint that lets a cache miss reuse the parent's
        artifacts (see :func:`repro.explore.metrics.evaluate`).  *tech*
        measures the candidate in a scaled technology (see
        :class:`repro.tech.TechSpec`) instead of the pinned baseline.
        """
        if args:
            warnings.warn(
                "Explorer.evaluate(desc, derived_by) with positional"
                " derived_by is deprecated; call"
                " evaluate(desc, derived_by=...)",
                DeprecationWarning, stacklevel=2,
            )
            if len(args) > 1:
                raise TypeError(
                    f"evaluate() takes one description and keyword"
                    f" options; got {1 + len(args)} positional arguments"
                )
            derived_by = args[0]
        evaluation = self.evaluator.evaluate(desc, parent=parent, tech=tech)
        return Candidate(desc, evaluation, derived_by)

    def tech_sweep(
        self,
        desc: ast.Description,
        specs: Sequence[Optional[TechSpec]],
        *,
        label: Optional[str] = None,
        parent: Optional[ast.Description] = None,
    ) -> List[Candidate]:
        """Measure one description across a family of technology specs.

        Each entry in *specs* is a :class:`repro.tech.TechSpec` (or
        ``None`` for the pinned baseline process).  Cycle counts,
        compiled programs, and the synthesized netlist are shared across
        the whole family through the artifact cache — the sweep costs one
        tool-chain run plus a cheap re-projection per spec.  Results come
        back in *specs* order; a spec whose measurement raises aborts the
        sweep with :class:`ExplorationError`.
        """
        base = label or desc.name
        requests = []
        for spec in specs:
            name = base + (spec.suffix() if spec is not None else "")
            requests.append(EvalRequest(
                desc, derived_by="tech_sweep", label=name,
                parent=parent, tech=spec,
            ))
        candidates: List[Candidate] = []
        for result in self.evaluator.evaluate_many(requests):
            if not result.ok:
                raise ExplorationError(
                    f"tech sweep failed at {result.label!r}: {result.error}"
                )
            candidates.append(Candidate(
                requests[result.index].desc, result.evaluation,
                result.derived_by,
            ))
        return candidates

    def explore(self, initial: Optional[ast.Description] = None, *args,
                max_iterations: int = 8,
                strategy="greedy",
                seed: int = 0,
                max_evaluations: Optional[int] = None) -> ExplorationLog:
        """Search from *initial* under *strategy* until convergence.

        All options are keyword-only.  *strategy* is a
        :class:`~repro.explore.strategies.Strategy` instance or registry
        name (default ``"greedy"``, the paper's Figure-1 loop — its
        trajectories are bit-identical to the pre-strategy engine).
        *seed* feeds strategies that randomize (multi-start's transform
        sampler); *max_evaluations*, when set, is a hard cap on batch
        measurements — the final round's batch is truncated to the
        remaining budget and the run stops once it is spent.  The
        old positional ``explore(desc, n)`` form still works for one
        release but warns with the new spelling.
        """
        if args:
            warnings.warn(
                "Explorer.explore(desc, max_iterations) with positional"
                " max_iterations is deprecated; call"
                " explore(desc, max_iterations=..., strategy=...)",
                DeprecationWarning, stacklevel=2,
            )
            if len(args) > 1:
                raise TypeError(
                    f"explore() takes one description and keyword"
                    f" options; got {1 + len(args)} positional arguments"
                )
            max_iterations = args[0]
        if initial is None:
            raise TypeError("explore() needs an initial description")
        from . import strategies as strategy_registry

        search = strategy_registry.get(strategy)
        log = ExplorationLog(self.weights, strategy=search.name)
        with obs.span("explore.sweep", initial=initial.name,
                      max_iterations=max_iterations):
            with obs.capture() as cap:
                incumbent = self.evaluate(initial)
            self._note_profile(log, incumbent.evaluation.name,
                               cap.snapshot)
            if not incumbent.evaluation.feasible:
                raise ExplorationError(
                    f"initial architecture infeasible:"
                    f" {incumbent.evaluation.reason}"
                )
            log.evaluated.append(incumbent)
            context = strategy_registry.StrategyContext(
                initial=incumbent,
                weights=self.weights,
                max_iterations=max_iterations,
                propose_from=lambda c: list(self._proposals(c)),
                rng=random.Random(seed),
                log=log,
            )
            search.begin(context)
            while not search.finished:
                log.iterations += 1
                with obs.span("explore.iteration", n=log.iterations):
                    requests = search.propose()
                    if max_evaluations is not None:
                        # hard measurement cap: truncate the batch to the
                        # remaining budget (requests keep proposal order,
                        # so the strategy's highest-priority work survives)
                        remaining = max_evaluations - log.evaluations
                        requests = requests[:max(0, remaining)]
                    survivors = self._measure(log, requests)
                    search.observe(survivors)
                if (max_evaluations is not None
                        and log.evaluations >= max_evaluations):
                    break
            log.accepted = search.winner().accepted
        return log

    def _measure(self, log: ExplorationLog,
                 requests: List[EvalRequest]) -> List[Candidate]:
        """One batch through the evaluator, with all log bookkeeping.

        Returns the feasible candidates in submission order (the
        tie-break every strategy inherits); errors land in
        ``log.errors``, infeasible measurements in ``log.rejected``,
        profiles and cache attribution on the tagged trajectory.
        """
        survivors: List[Candidate] = []
        if not requests:
            return survivors
        for result in self.evaluator.evaluate_many(requests):
            request = requests[result.index]
            trajectory = (log.trajectory(request.tag)
                          if request.tag else None)
            self._note_profile(log, result.label, result.obs, trajectory)
            log.evaluations += 1
            if result.cached:
                log.cache_hits += 1
            if trajectory is not None:
                if result.cached:
                    trajectory.cache_hits += 1
                else:
                    trajectory.cache_misses += 1
            if not result.ok:
                log.errors.append(result)
                continue
            candidate = Candidate(request.desc, result.evaluation,
                                  result.derived_by)
            if not candidate.evaluation.feasible:
                log.rejected.append(candidate)
                continue
            log.evaluated.append(candidate)
            survivors.append(candidate)
        return survivors

    @staticmethod
    def _note_profile(log: ExplorationLog, label: str,
                      snapshot: Optional[MetricsSnapshot],
                      trajectory: Optional[Trajectory] = None) -> None:
        """Keep the first (= full-measurement) profile per candidate —
        globally and, when the request was tagged, per trajectory."""
        if snapshot is None:
            return
        if label not in log.profiles:
            log.profiles[label] = snapshot.copy()
        if trajectory is not None and label not in trajectory.profiles:
            trajectory.profiles[label] = snapshot.copy()

    # ------------------------------------------------------------------
    # Measurement-guided candidate generation
    # ------------------------------------------------------------------

    def _proposals(
        self, incumbent: Candidate
    ) -> Iterable[Tuple[ast.Description, str]]:
        desc = incumbent.desc
        stats = incumbent.evaluation.stats
        produced = 0

        def cap() -> bool:
            return produced >= self.max_candidates_per_round

        # 1. Drop operations the workloads never execute.
        if stats is not None:
            unused = stats.unused_operations(desc)
            droppable = [
                (f, o) for f, o in unused
                if len(desc.field_named(f).operations) > 1
            ]
            if droppable:
                try:
                    yield (
                        transforms.drop_operations(
                            desc, droppable, rename=f"{desc.name}~lean"
                        ),
                        f"drop {len(droppable)} unused operations",
                    )
                    produced += 1
                except ReproError:
                    pass
        # 2. Drop fields with utilization below the threshold.
        if stats is not None and len(desc.fields) > 1 and not cap():
            for name, util in stats.field_utilization(desc).items():
                if util <= self.utilization_threshold:
                    try:
                        yield (
                            transforms.drop_field(desc, name),
                            f"drop idle field {name}"
                            f" ({util * 100:.1f}% used)",
                        )
                        produced += 1
                    except ReproError:
                        continue
                    if cap():
                        break
        # 3. Stalls observed: add bypass timing to high-latency operations.
        if (
            incumbent.evaluation.stall_cycles > 0
            and stats is not None
            and not cap()
        ):
            for fld, op in desc.operations():
                if op.costs.stall > 0 and stats.op_counts[
                    (fld.name, op.name)
                ]:
                    yield (
                        transforms.set_operation_timing(
                            desc, fld.name, op.name,
                            costs=ast.Costs(op.costs.cycle, 0,
                                            op.costs.size),
                            timing=ast.Timing(1, op.timing.usage),
                            rename=f"{desc.name}+byp-{op.name}",
                        ),
                        f"bypass {fld.name}.{op.name}",
                    )
                    produced += 1
                    if cap():
                        break
        # 4. Serialize rarely co-used field pairs so hardware can share.
        if stats is not None and len(desc.fields) > 1 and not cap():
            utils = stats.field_utilization(desc)
            ranked = sorted(utils, key=utils.get)
            for i, field_a in enumerate(ranked[:3]):
                for field_b in ranked[i + 1 : 4]:
                    ops_a = self._busiest_op(desc, stats, field_a)
                    ops_b = self._busiest_op(desc, stats, field_b)
                    if ops_a is None or ops_b is None:
                        continue
                    yield (
                        transforms.add_constraint(
                            desc, field_a, ops_a, field_b, ops_b,
                            rename=f"{desc.name}+ser",
                        ),
                        f"serialize {field_a}.{ops_a} / {field_b}.{ops_b}",
                    )
                    produced += 1
                    if cap():
                        break
                if cap():
                    break
        # 5. Halve over-provisioned memories (an infeasible shrink is
        #    detected at load time during evaluation).
        if not cap():
            memories = [
                s for s in desc.storages.values()
                if s.kind in (
                    ast.StorageKind.INSTRUCTION_MEMORY,
                    ast.StorageKind.DATA_MEMORY,
                )
            ]
            for storage in sorted(
                memories, key=lambda m: -(m.width * (m.depth or 0))
            )[:2]:
                if (storage.depth or 0) >= 32:
                    yield (
                        transforms.resize_memory(
                            desc, storage.name, storage.depth // 2
                        ),
                        f"halve {storage.name} to {storage.depth // 2}",
                    )
                    produced += 1
                    if cap():
                        break
        # 6. Try halving the register file.
        if not cap():
            reg_files = [
                s for s in desc.storages.values()
                if s.kind is ast.StorageKind.REGISTER_FILE
            ]
            if reg_files:
                depth = max(s.depth or 0 for s in reg_files)
                if depth >= 4:
                    try:
                        yield (
                            transforms.narrow_register_file(
                                desc, depth // 2
                            ),
                            f"narrow register file to {depth // 2}",
                        )
                        produced += 1
                    except ReproError:
                        pass

    @staticmethod
    def _busiest_op(desc, stats, field_name) -> Optional[str]:
        ops = [
            (stats.op_counts[(field_name, op.name)], op.name)
            for op in desc.field_named(field_name).operations
            if op.action
        ]
        ops.sort(reverse=True)
        if not ops or ops[0][0] == 0:
            return None
        return ops[0][1]
