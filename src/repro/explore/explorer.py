"""Architecture exploration by iterative improvement (paper Fig. 1).

Starting from an initial description, each iteration:

1. evaluates the current architecture (compile → simulate → synthesize →
   cost, see :mod:`repro.explore.metrics`);
2. proposes candidate improvements *guided by the measurements* — drop
   operations the workloads never execute, drop functional units with low
   utilization, add bypass timing to operations that cause stalls, and
   serialize field pairs so HGEN can share their hardware;
3. adopts the cheapest feasible candidate, and stops when no candidate
   improves on the incumbent.

Every candidate is a complete ISDL description, so the whole tool chain
(compiler, assembler, ILS, HGEN) regenerates automatically each iteration —
the property the paper argues makes exploration practical at all.

Candidate measurements are independent, so the explorer batches each
round's proposals through a :class:`~repro.explore.parallel.ParallelEvaluator`:
they fan out over a worker pool, generated artifacts are memoized in a
shared :class:`~repro.cache.ArtifactCache`, and a candidate whose
evaluation blows up is recorded in :attr:`ExplorationLog.errors` instead
of killing the sweep.  Results are deterministic — identical trajectories
and cycle counts whatever the pool mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..cache import ArtifactCache
from ..codegen.ir import Kernel
from ..errors import ExplorationError, ReproError
from ..isdl import ast
from ..obs.metrics import MetricsSnapshot
from . import transforms
from .metrics import CostWeights, Evaluation
from .parallel import EvalRequest, EvalResult, ParallelEvaluator


@dataclass
class Candidate:
    """One evaluated point in the design space."""

    desc: ast.Description
    evaluation: Evaluation
    derived_by: str = "initial"

    def cost(self, weights: Optional[CostWeights] = None) -> float:
        return self.evaluation.cost(weights)


@dataclass
class ExplorationLog:
    """The trajectory of one exploration run."""

    weights: CostWeights
    accepted: List[Candidate] = field(default_factory=list)
    rejected: List[Candidate] = field(default_factory=list)
    errors: List[EvalResult] = field(default_factory=list)
    iterations: int = 0
    #: per-candidate observability profile (label → first measurement);
    #: empty unless :mod:`repro.obs` was enabled during the run
    profiles: Dict[str, MetricsSnapshot] = field(default_factory=dict)

    def merged_profile(self) -> Optional[MetricsSnapshot]:
        """All per-candidate profiles folded into one snapshot (insertion
        order, so the merge is deterministic); None when obs was off."""
        if not self.profiles:
            return None
        return MetricsSnapshot.merged(self.profiles.values())

    @property
    def best(self) -> Candidate:
        return self.accepted[-1]

    @property
    def initial(self) -> Candidate:
        return self.accepted[0]

    @property
    def improvement(self) -> float:
        """Cost ratio initial/best (>1 means the search improved)."""
        initial = self.initial.cost(self.weights)
        best = self.best.cost(self.weights)
        if best == 0:
            return float("inf")
        return initial / best


class Explorer:
    """Iterative-improvement search over ISDL descriptions.

    The heavy lifting — measuring candidates — goes through *evaluator*
    (built on demand when not supplied): a worker pool plus an artifact
    cache, warm-shared between iterations and across `explore` calls on
    the same instance.  Pass ``parallel="serial"`` and ``cache=None`` via
    a hand-built :class:`ParallelEvaluator` to reproduce the original
    one-at-a-time engine exactly.
    """

    def __init__(
        self,
        kernels: Sequence[Kernel],
        weights: Optional[CostWeights] = None,
        max_candidates_per_round: int = 12,
        utilization_threshold: float = 0.05,
        *,
        cache: Optional[ArtifactCache] = None,
        evaluator: Optional[ParallelEvaluator] = None,
        parallel: str = "auto",
        max_workers: Optional[int] = None,
        static_check: bool = True,
    ):
        self.kernels = list(kernels)
        self.weights = weights or CostWeights()
        self.max_candidates_per_round = max_candidates_per_round
        self.utilization_threshold = utilization_threshold
        if evaluator is None:
            evaluator = ParallelEvaluator(
                self.kernels,
                weights=self.weights,
                cache=cache if cache is not None else ArtifactCache(),
                mode=parallel,
                max_workers=max_workers,
                static_check=static_check,
            )
        self.evaluator = evaluator

    @property
    def cache(self) -> Optional[ArtifactCache]:
        return self.evaluator.cache

    # ------------------------------------------------------------------

    def evaluate(self, desc: ast.Description,
                 derived_by: str = "initial") -> Candidate:
        evaluation = self.evaluator.evaluate(desc)
        return Candidate(desc, evaluation, derived_by)

    def explore(self, initial: ast.Description,
                max_iterations: int = 8) -> ExplorationLog:
        """Run the Figure-1 loop until convergence."""
        log = ExplorationLog(self.weights)
        with obs.span("explore.sweep", initial=initial.name,
                      max_iterations=max_iterations):
            with obs.capture() as cap:
                incumbent = self.evaluate(initial)
            self._note_profile(log, incumbent.evaluation.name,
                               cap.snapshot)
            if not incumbent.evaluation.feasible:
                raise ExplorationError(
                    f"initial architecture infeasible:"
                    f" {incumbent.evaluation.reason}"
                )
            log.accepted.append(incumbent)
            for _ in range(max_iterations):
                log.iterations += 1
                with obs.span("explore.iteration", n=log.iterations):
                    improved = self._iterate(log, incumbent)
                if improved is None:
                    break
                incumbent = improved
                log.accepted.append(incumbent)
        return log

    def _iterate(self, log: ExplorationLog,
                 incumbent: Candidate) -> Optional[Candidate]:
        """One proposal round; the new incumbent, or None at convergence."""
        requests = [
            EvalRequest(desc, derived_by=how)
            for desc, how in self._proposals(incumbent)
        ]
        best_next: Optional[Candidate] = None
        for result in self.evaluator.evaluate_many(requests):
            self._note_profile(log, result.label, result.obs)
            if not result.ok:
                log.errors.append(result)
                continue
            candidate = Candidate(
                requests[result.index].desc,
                result.evaluation,
                result.derived_by,
            )
            if not candidate.evaluation.feasible:
                log.rejected.append(candidate)
                continue
            if best_next is None or candidate.cost(
                self.weights
            ) < best_next.cost(self.weights):
                best_next = candidate
        if best_next is None or best_next.cost(
            self.weights
        ) >= incumbent.cost(self.weights):
            return None
        return best_next

    @staticmethod
    def _note_profile(log: ExplorationLog, label: str,
                      snapshot: Optional[MetricsSnapshot]) -> None:
        """Keep the first (= full-measurement) profile per candidate."""
        if snapshot is None or label in log.profiles:
            return
        log.profiles[label] = snapshot.copy()

    # ------------------------------------------------------------------
    # Measurement-guided candidate generation
    # ------------------------------------------------------------------

    def _proposals(
        self, incumbent: Candidate
    ) -> Iterable[Tuple[ast.Description, str]]:
        desc = incumbent.desc
        stats = incumbent.evaluation.stats
        produced = 0

        def cap() -> bool:
            return produced >= self.max_candidates_per_round

        # 1. Drop operations the workloads never execute.
        if stats is not None:
            unused = stats.unused_operations(desc)
            droppable = [
                (f, o) for f, o in unused
                if len(desc.field_named(f).operations) > 1
            ]
            if droppable:
                try:
                    yield (
                        transforms.drop_operations(
                            desc, droppable, rename=f"{desc.name}~lean"
                        ),
                        f"drop {len(droppable)} unused operations",
                    )
                    produced += 1
                except ReproError:
                    pass
        # 2. Drop fields with utilization below the threshold.
        if stats is not None and len(desc.fields) > 1 and not cap():
            for name, util in stats.field_utilization(desc).items():
                if util <= self.utilization_threshold:
                    try:
                        yield (
                            transforms.drop_field(desc, name),
                            f"drop idle field {name}"
                            f" ({util * 100:.1f}% used)",
                        )
                        produced += 1
                    except ReproError:
                        continue
                    if cap():
                        break
        # 3. Stalls observed: add bypass timing to high-latency operations.
        if (
            incumbent.evaluation.stall_cycles > 0
            and stats is not None
            and not cap()
        ):
            for fld, op in desc.operations():
                if op.costs.stall > 0 and stats.op_counts[
                    (fld.name, op.name)
                ]:
                    yield (
                        transforms.set_operation_timing(
                            desc, fld.name, op.name,
                            costs=ast.Costs(op.costs.cycle, 0,
                                            op.costs.size),
                            timing=ast.Timing(1, op.timing.usage),
                            rename=f"{desc.name}+byp-{op.name}",
                        ),
                        f"bypass {fld.name}.{op.name}",
                    )
                    produced += 1
                    if cap():
                        break
        # 4. Serialize rarely co-used field pairs so hardware can share.
        if stats is not None and len(desc.fields) > 1 and not cap():
            utils = stats.field_utilization(desc)
            ranked = sorted(utils, key=utils.get)
            for i, field_a in enumerate(ranked[:3]):
                for field_b in ranked[i + 1 : 4]:
                    ops_a = self._busiest_op(desc, stats, field_a)
                    ops_b = self._busiest_op(desc, stats, field_b)
                    if ops_a is None or ops_b is None:
                        continue
                    yield (
                        transforms.add_constraint(
                            desc, field_a, ops_a, field_b, ops_b,
                            rename=f"{desc.name}+ser",
                        ),
                        f"serialize {field_a}.{ops_a} / {field_b}.{ops_b}",
                    )
                    produced += 1
                    if cap():
                        break
                if cap():
                    break
        # 5. Halve over-provisioned memories (an infeasible shrink is
        #    detected at load time during evaluation).
        if not cap():
            memories = [
                s for s in desc.storages.values()
                if s.kind in (
                    ast.StorageKind.INSTRUCTION_MEMORY,
                    ast.StorageKind.DATA_MEMORY,
                )
            ]
            for storage in sorted(
                memories, key=lambda m: -(m.width * (m.depth or 0))
            )[:2]:
                if (storage.depth or 0) >= 32:
                    yield (
                        transforms.resize_memory(
                            desc, storage.name, storage.depth // 2
                        ),
                        f"halve {storage.name} to {storage.depth // 2}",
                    )
                    produced += 1
                    if cap():
                        break
        # 6. Try halving the register file.
        if not cap():
            reg_files = [
                s for s in desc.storages.values()
                if s.kind is ast.StorageKind.REGISTER_FILE
            ]
            if reg_files:
                depth = max(s.depth or 0 for s in reg_files)
                if depth >= 4:
                    try:
                        yield (
                            transforms.narrow_register_file(
                                desc, depth // 2
                            ),
                            f"narrow register file to {depth // 2}",
                        )
                        produced += 1
                    except ReproError:
                        pass

    @staticmethod
    def _busiest_op(desc, stats, field_name) -> Optional[str]:
        ops = [
            (stats.op_counts[(field_name, op.name)], op.name)
            for op in desc.field_named(field_name).operations
            if op.action
        ]
        ops.sort(reverse=True)
        if not ops or ops[0][0] == 0:
            return None
        return ops[0][1]
