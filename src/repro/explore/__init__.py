"""Architecture exploration by iterative improvement (paper Fig. 1)."""

from .explorer import Candidate, ExplorationLog, Explorer
from .metrics import CostWeights, Evaluation, evaluate
from .report import evaluation_table, exploration_report
from . import transforms

__all__ = [
    "Candidate",
    "ExplorationLog",
    "Explorer",
    "CostWeights",
    "Evaluation",
    "evaluate",
    "evaluation_table",
    "exploration_report",
    "transforms",
]
