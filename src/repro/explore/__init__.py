"""Architecture exploration by iterative improvement (paper Fig. 1)."""

from .explorer import Candidate, ExplorationLog, Explorer
from .metrics import CostWeights, Evaluation, evaluate, evaluation_key
from .parallel import EvalRequest, EvalResult, ParallelEvaluator
from .report import evaluation_table, exploration_report, service_metrics_table
from . import transforms

__all__ = [
    "Candidate",
    "ExplorationLog",
    "Explorer",
    "CostWeights",
    "Evaluation",
    "evaluate",
    "evaluation_key",
    "EvalRequest",
    "EvalResult",
    "ParallelEvaluator",
    "evaluation_table",
    "exploration_report",
    "service_metrics_table",
    "transforms",
]
