"""Architecture exploration: strategy-driven search (paper Fig. 1).

One coherent surface: :class:`Explorer` drives a
:class:`~repro.explore.strategies.Strategy` (``strategies.get("greedy")``
by default — the paper's loop) over the parallel cache-backed
evaluator; the resulting :class:`ExplorationLog` renders through
:func:`exploration_report` and exposes trajectories and the Pareto
:mod:`frontier <repro.explore.pareto>`.
"""

from .explorer import Candidate, ExplorationLog, Explorer, Trajectory
from .metrics import CostWeights, Evaluation, evaluate, evaluation_key
from .parallel import EvalRequest, EvalResult, ParallelEvaluator
from .report import (
    evaluation_table,
    exploration_report,
    operating_point_table,
    service_metrics_table,
)
from .strategies import Strategy, UnknownStrategyError
from . import pareto, strategies, transforms

__all__ = [
    "Candidate",
    "ExplorationLog",
    "Explorer",
    "Trajectory",
    "CostWeights",
    "Evaluation",
    "evaluate",
    "evaluation_key",
    "EvalRequest",
    "EvalResult",
    "ParallelEvaluator",
    "Strategy",
    "UnknownStrategyError",
    "evaluation_table",
    "exploration_report",
    "operating_point_table",
    "service_metrics_table",
    "pareto",
    "strategies",
    "transforms",
]
