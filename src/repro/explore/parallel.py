"""Parallel, cache-backed candidate evaluation for exploration sweeps.

The Figure-1 loop proposes a batch of candidate descriptions per
iteration and measures each with the full tool chain (compile → assemble
→ simulate → synthesize → cost).  The measurements are independent, so
:class:`ParallelEvaluator` fans them out over a ``concurrent.futures``
pool while keeping the three properties a search loop needs:

* **deterministic ordering** — results come back in submission order, so
  tie-breaking ("first candidate wins at equal cost") matches the serial
  engine bit for bit;
* **failure isolation** — a candidate whose evaluation *raises* (as
  opposed to one that is merely infeasible) is captured as an
  :class:`EvalResult` with ``error`` set; it never aborts the sweep;
* **cache warm-sharing** — the parent-side
  :class:`~repro.cache.ArtifactCache` is consulted before any work is
  dispatched and stores every result, so candidates re-proposed in later
  iterations (or whole re-runs of a sweep) are lookups, whatever pool
  mode produced them first.

Pool modes: ``"process"`` (true parallelism; candidates and results
cross the boundary by pickling), ``"thread"`` (shares the cache during
the run; GIL-bound but dependency-free), ``"serial"`` (the seed
behaviour), and ``"auto"`` (processes when the platform supports them,
falling back to threads, and straight-line execution for tiny batches).
"""

from __future__ import annotations

import os
import traceback
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .. import obs
from ..analyze.diagnostics import Diagnostic
from ..cache import ArtifactCache
from ..codegen.ir import Kernel
from ..isdl import ast, fingerprint
from ..obs.metrics import MetricsSnapshot
from ..tech.model import TechSpec
from .metrics import CostWeights, Evaluation, evaluate, evaluation_key

__all__ = ["EvalRequest", "EvalResult", "ParallelEvaluator"]


@dataclass
class EvalRequest:
    """One candidate description queued for measurement."""

    desc: ast.Description
    derived_by: str = "initial"
    label: Optional[str] = None
    #: the exploration trajectory this measurement belongs to (set by
    #: multi-trajectory strategies; ignored by the evaluator itself)
    tag: Optional[str] = None
    #: the description this candidate was mutated from; purely an
    #: optimization hint — on a cache miss the pipeline reuses the
    #: parent's cached artifacts wherever the fingerprint delta proves
    #: them unchanged (results are identical with or without it)
    parent: Optional[ast.Description] = None
    #: technology/budget axis for this measurement; None inherits the
    #: evaluator's default (usually the pinned baseline process)
    tech: Optional[TechSpec] = None

    @property
    def display_label(self) -> str:
        """A label that never raises, even for a malformed candidate."""
        return self.label or getattr(self.desc, "name", "<candidate>")


@dataclass
class EvalResult:
    """Outcome of one candidate measurement, in submission order."""

    index: int
    label: str
    derived_by: str
    evaluation: Optional[Evaluation] = None
    error: Optional[str] = None
    cached: bool = False
    #: per-candidate observability profile (None while obs is disabled);
    #: for pool workers this is the snapshot shipped back to the parent
    obs: Optional[MetricsSnapshot] = None
    #: the static-analysis findings when the validity gate rejected the
    #: candidate before any tool ran (``error`` is set alongside)
    diagnostics: Tuple[Diagnostic, ...] = ()

    @property
    def ok(self) -> bool:
        return self.error is None


# ----------------------------------------------------------------------
# Process-pool worker side.  Workers are long-lived (one pool per
# evaluator); the kernels/settings land once via the initializer and each
# worker keeps a private artifact cache for intra-worker reuse.
# ----------------------------------------------------------------------

_WORKER_STATE: dict = {}


def _pool_init(kernels: Sequence[Kernel], max_steps: int,
               weights: Optional[CostWeights],
               obs_enabled: bool = False,
               sim_backend: str = "xsim",
               memoize: bool = True) -> None:
    _WORKER_STATE["kernels"] = list(kernels)
    _WORKER_STATE["max_steps"] = max_steps
    _WORKER_STATE["weights"] = weights
    _WORKER_STATE["cache"] = ArtifactCache(max_entries=128)
    _WORKER_STATE["sim_backend"] = sim_backend
    _WORKER_STATE["memoize"] = memoize
    if obs_enabled:
        obs.enable()


def _pool_evaluate(index: int, desc: ast.Description,
                   label: str,
                   parent: Optional[ast.Description] = None,
                   tech: Optional[TechSpec] = None,
                   ) -> Tuple[int, Optional[Evaluation],
                              Optional[str],
                              Optional[MetricsSnapshot]]:
    error: Optional[str] = None
    evaluation: Optional[Evaluation] = None
    with obs.capture() as cap:
        try:
            evaluation = evaluate(
                desc,
                _WORKER_STATE["kernels"],
                _WORKER_STATE["max_steps"],
                name=label,
                weights=_WORKER_STATE["weights"],
                cache=_WORKER_STATE["cache"],
                sim_backend=_WORKER_STATE.get("sim_backend", "xsim"),
                memoize=_WORKER_STATE.get("memoize", True),
                parent=parent,
                tech=tech,
            )
        except Exception as exc:  # noqa: BLE001 — failure capture is the point
            error = _format_error(exc)
    return index, evaluation, error, cap.snapshot


def _format_error(exc: BaseException) -> str:
    tail = traceback.format_exception_only(type(exc), exc)[-1].strip()
    return tail


class ParallelEvaluator:
    """Evaluate candidate descriptions concurrently behind one cache."""

    def __init__(
        self,
        kernels: Sequence[Kernel],
        *,
        weights: Optional[CostWeights] = None,
        cache: Optional[ArtifactCache] = None,
        max_steps: int = 500_000,
        max_workers: Optional[int] = None,
        mode: str = "auto",
        sim_backend: str = "xsim",
        static_check: bool = True,
        memoize: bool = True,
        tech: Optional[TechSpec] = None,
    ):
        if mode not in ("auto", "process", "thread", "serial"):
            raise ValueError(f"unknown evaluator mode {mode!r}")
        self.kernels = list(kernels)
        self.weights = weights
        self.cache = cache
        self.max_steps = max_steps
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.mode = mode
        self.sim_backend = sim_backend
        self.static_check = static_check
        #: default technology axis; a request's own ``tech`` overrides it
        self.tech = tech
        #: False disables the whole-evaluation memo and warm-path probe
        #: (artifact-level caches still apply); see explore.metrics.evaluate
        self.memoize = memoize
        self._pool = None
        self._pool_kind: Optional[str] = None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def evaluate(self, desc: ast.Description,
                 label: Optional[str] = None,
                 parent: Optional[ast.Description] = None,
                 tech: Optional[TechSpec] = None) -> Evaluation:
        """Measure a single candidate inline (exceptions propagate)."""
        return evaluate(
            desc, self.kernels, self.max_steps,
            name=label, weights=self.weights, cache=self.cache,
            sim_backend=self.sim_backend, memoize=self.memoize,
            parent=parent, tech=tech if tech is not None else self.tech,
        )

    def _tech_for(self, request: EvalRequest) -> Optional[TechSpec]:
        """The request's tech axis, falling back to the evaluator's."""
        tech = getattr(request, "tech", None)
        return tech if tech is not None else self.tech

    def evaluate_many(
        self, requests: Sequence[EvalRequest]
    ) -> List[EvalResult]:
        """Measure a batch; results are in submission order, always
        ``len(requests)`` long, and a raised evaluation becomes an
        ``error`` entry instead of an exception."""
        results: List[Optional[EvalResult]] = [None] * len(requests)
        jobs: List[Tuple[int, EvalRequest]] = []
        for index, request in enumerate(requests):
            rejected = self._static_probe(index, request)
            if rejected is not None:
                results[index] = rejected
                continue
            hit = self._cache_probe(index, request)
            if hit is not None:
                results[index] = hit
            else:
                jobs.append((index, request))
        mode = self._effective_mode(len(jobs))
        if mode == "serial":
            for index, request in jobs:
                results[index] = self._evaluate_inline(index, request)
        elif mode == "thread":
            self._run_threads(jobs, results)
        else:
            self._run_processes(jobs, results)
        return results  # type: ignore[return-value]

    def shutdown(self) -> None:
        """Release the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
            self._pool_kind = None

    def __enter__(self) -> "ParallelEvaluator":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.shutdown()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Dispatch strategies
    # ------------------------------------------------------------------

    def _effective_mode(self, jobs: int) -> str:
        if self.mode != "auto":
            return self.mode
        if jobs <= 1:
            return "serial"
        try:
            import multiprocessing

            multiprocessing.get_context()
            return "process"
        except (ImportError, OSError):  # pragma: no cover - exotic hosts
            return "thread"

    def _static_probe(self, index: int,
                      request: EvalRequest) -> Optional[EvalResult]:
        """The validity gate: reject a statically invalid candidate before
        any tool-chain work is dispatched for it.

        Returns an error :class:`EvalResult` carrying the diagnostic list
        when the analysis finds error-severity problems, None otherwise.
        A candidate so malformed the analysis itself blows up falls
        through to normal dispatch, which records the failure the
        pre-gate way.
        """
        if not self.static_check:
            return None
        from ..analyze import check_static

        try:
            analysis = check_static(request.desc, cache=self.cache,
                                    parent=request.parent)
        except Exception:  # malformed candidate: let dispatch record it
            return None
        if analysis.ok():
            return None
        errors = analysis.errors
        obs.add("analyze.candidates_rejected")
        first = errors[0]
        more = f" (+{len(errors) - 1} more)" if len(errors) > 1 else ""
        return EvalResult(
            index, request.display_label, request.derived_by,
            error=(
                f"static analysis rejected candidate:"
                f" {first.code}: {first.message}{more}"
            ),
            diagnostics=tuple(analysis.diagnostics),
        )

    def _cache_probe(self, index: int,
                     request: EvalRequest) -> Optional[EvalResult]:
        """Warm-path lookup in the parent cache before dispatching."""
        if self.cache is None or not self.memoize:
            return None
        label = request.display_label
        tech = self._tech_for(request)
        try:
            key = evaluation_key(request.desc, self.kernels,
                                 self.max_steps,
                                 sim_backend=self.sim_backend,
                                 tech=tech)
        except Exception:  # malformed candidate: let dispatch record it
            return None
        cached = self.cache.peek("evaluation", key)
        if cached is None:
            return None
        with obs.capture() as cap:
            # counted hit
            evaluation = self.evaluate(request.desc, label, tech=tech)
        return EvalResult(index, label, request.derived_by,
                          evaluation=evaluation, cached=True,
                          obs=cap.snapshot)

    def _evaluate_inline(self, index: int,
                         request: EvalRequest) -> EvalResult:
        label = request.display_label
        evaluation = error = None
        with obs.capture() as cap:
            try:
                evaluation = self.evaluate(request.desc, label,
                                           parent=request.parent,
                                           tech=self._tech_for(request))
            except Exception as exc:  # noqa: BLE001 — failure capture
                error = _format_error(exc)
        if error is not None:
            return EvalResult(index, label, request.derived_by,
                              error=error, obs=cap.snapshot)
        return EvalResult(index, label, request.derived_by,
                          evaluation=evaluation, obs=cap.snapshot)

    def _run_threads(self, jobs, results) -> None:
        pool = self._ensure_pool("thread")
        futures = {
            pool.submit(self._evaluate_inline, index, request): index
            for index, request in jobs
        }
        for future, index in futures.items():
            results[index] = future.result()

    def _run_processes(self, jobs, results) -> None:
        try:
            pool = self._ensure_pool("process")
            futures = []
            for index, request in jobs:
                label = request.display_label
                futures.append(
                    (index, request,
                     pool.submit(_pool_evaluate, index, request.desc,
                                 label, request.parent,
                                 self._tech_for(request)))
                )
        except (BrokenExecutor, OSError, ValueError):
            self.shutdown()
            for index, request in jobs:
                results[index] = self._evaluate_inline(index, request)
            return
        retry_inline: List[Tuple[int, EvalRequest]] = []
        for index, request, future in futures:
            label = request.display_label
            try:
                _, evaluation, error, snapshot = future.result()
            except BrokenExecutor:
                # the pool died (OOM-killed worker, fork failure…): finish
                # the batch inline so the sweep still completes
                retry_inline.append((index, request))
                continue
            except Exception as exc:  # noqa: BLE001 — pickling errors etc.
                results[index] = EvalResult(index, label,
                                            request.derived_by,
                                            error=_format_error(exc))
                continue
            # futures are consumed in submission order, so merging worker
            # snapshots here keeps the parent registry deterministic
            if snapshot is not None:
                obs.merge(snapshot)
            if error is not None:
                results[index] = EvalResult(index, label,
                                            request.derived_by, error=error,
                                            obs=snapshot)
            else:
                evaluation = self._adopt(request, evaluation)
                results[index] = EvalResult(index, label,
                                            request.derived_by,
                                            evaluation=evaluation,
                                            obs=snapshot)
        if retry_inline:
            self.shutdown()
            for index, request in retry_inline:
                results[index] = self._evaluate_inline(index, request)

    def _adopt(self, request: EvalRequest,
               evaluation: Evaluation) -> Evaluation:
        """Store a worker-produced evaluation in the parent cache, so the
        warm path serves it next time regardless of pool mode."""
        if self.cache is None or not self.memoize:
            return evaluation
        key = evaluation_key(request.desc, self.kernels, self.max_steps,
                             evaluation.fingerprint or None,
                             sim_backend=self.sim_backend,
                             tech=self._tech_for(request))
        return self.cache.evaluation(key, lambda: evaluation)

    def _ensure_pool(self, kind: str):
        if self._pool is not None and self._pool_kind == kind:
            return self._pool
        self.shutdown()
        if kind == "thread":
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.max_workers,
                thread_name_prefix="repro-eval",
            )
        else:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_pool_init,
                initargs=(self.kernels, self.max_steps, self.weights,
                          obs.enabled(), self.sim_backend, self.memoize),
            )
        self._pool_kind = kind
        return self._pool
