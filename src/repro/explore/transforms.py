"""Architecture transforms: the "make improvements" arrow of Figure 1.

Each transform takes a description and returns a *new* description (the AST
is never mutated — every candidate is an independent, printable ISDL
document).  Changes are made "at the level of an RTL operation" (paper
§4.1): drop an operation, drop a whole field (narrower VLIW), adjust an
operation's timing (add bypass hardware), add a constraint (serialize two
fields so their hardware can be shared), or narrow the register file.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import ExplorationError
from ..isdl import ast, semantics


def _clone(desc: ast.Description, **changes) -> ast.Description:
    new = ast.Description(
        name=changes.get("name", desc.name),
        word_width=desc.word_width,
        tokens=dict(changes.get("tokens", desc.tokens)),
        nonterminals=dict(changes.get("nonterminals", desc.nonterminals)),
        storages=dict(changes.get("storages", desc.storages)),
        aliases=dict(desc.aliases),
        fields=list(changes.get("fields", desc.fields)),
        constraints=list(changes.get("constraints", desc.constraints)),
        attributes=dict(desc.attributes),
    )
    return new


def _constraint_mentions(constraint: ast.Constraint,
                         field: str, op: Optional[str] = None) -> bool:
    for ref in ast.oprefs_in(constraint.expr):
        if ref.field == field and (op is None or ref.op == op):
            return True
    return False


def drop_operation(desc: ast.Description, field_name: str,
                   op_name: str, rename: Optional[str] = None
                   ) -> ast.Description:
    """Remove one operation (and constraints that mention it)."""
    fld = desc.field_named(field_name)
    remaining = tuple(op for op in fld.operations if op.name != op_name)
    if len(remaining) == len(fld.operations):
        raise ExplorationError(f"no operation {field_name}.{op_name}")
    if not remaining:
        return drop_field(desc, field_name, rename)
    fields = [
        ast.Field(f.name, remaining, f.location) if f.name == field_name
        else f
        for f in desc.fields
    ]
    constraints = [
        c for c in desc.constraints
        if not _constraint_mentions(c, field_name, op_name)
    ]
    return _clone(
        desc,
        name=rename or f"{desc.name}-{op_name}",
        fields=fields,
        constraints=constraints,
    )


def drop_operations(desc: ast.Description,
                    ops: Iterable[Tuple[str, str]],
                    rename: Optional[str] = None) -> ast.Description:
    """Remove several operations at once."""
    result = desc
    for field_name, op_name in ops:
        result = drop_operation(result, field_name, op_name)
    if rename:
        result = _clone(result, name=rename)
    return result


def drop_field(desc: ast.Description, field_name: str,
               rename: Optional[str] = None) -> ast.Description:
    """Remove a whole VLIW field (a narrower machine)."""
    fields = [f for f in desc.fields if f.name != field_name]
    if len(fields) == len(desc.fields):
        raise ExplorationError(f"no field {field_name!r}")
    if not fields:
        raise ExplorationError("cannot drop the last field")
    constraints = [
        c for c in desc.constraints
        if not _constraint_mentions(c, field_name)
    ]
    return _clone(
        desc,
        name=rename or f"{desc.name}-{field_name}",
        fields=fields,
        constraints=constraints,
    )


def set_operation_timing(desc: ast.Description, field_name: str,
                         op_name: str, costs: Optional[ast.Costs] = None,
                         timing: Optional[ast.Timing] = None,
                         rename: Optional[str] = None) -> ast.Description:
    """Adjust one operation's costs/timing (e.g. add bypass: stall 0)."""
    fld = desc.field_named(field_name)
    new_ops = []
    found = False
    for op in fld.operations:
        if op.name == op_name:
            found = True
            op = dataclasses.replace(
                op,
                costs=costs if costs is not None else op.costs,
                timing=timing if timing is not None else op.timing,
            )
        new_ops.append(op)
    if not found:
        raise ExplorationError(f"no operation {field_name}.{op_name}")
    fields = [
        ast.Field(f.name, tuple(new_ops), f.location)
        if f.name == field_name else f
        for f in desc.fields
    ]
    return _clone(
        desc, name=rename or f"{desc.name}+t", fields=fields
    )


def add_constraint(desc: ast.Description, field_a: str, op_a: str,
                   field_b: str, op_b: str,
                   rename: Optional[str] = None) -> ast.Description:
    """Forbid two operations from issuing together (serialize the fields
    so HGEN may share their hardware — paper rule 4 refinement)."""
    expr = ast.CNot(
        ast.CAnd(ast.COpRef(field_a, op_a), ast.COpRef(field_b, op_b))
    )
    constraint = ast.Constraint(
        expr, text=f"forbid {field_a}.{op_a} & {field_b}.{op_b}"
    )
    return _clone(
        desc,
        name=rename or f"{desc.name}+c",
        constraints=list(desc.constraints) + [constraint],
    )


def resize_memory(desc: ast.Description, storage_name: str,
                  new_depth: int,
                  rename: Optional[str] = None) -> ast.Description:
    """Shrink (or grow) a memory macro.

    Embedded dies are often dominated by over-provisioned on-chip
    memories; shrinking instruction memory below the program size is
    caught at load time during evaluation, making the candidate
    infeasible rather than wrong.
    """
    storage = desc.storages.get(storage_name)
    if storage is None or not storage.addressed:
        raise ExplorationError(
            f"{storage_name!r} is not an addressed storage"
        )
    if new_depth < 1:
        raise ExplorationError("memory depth must be positive")
    storages = dict(desc.storages)
    storages[storage_name] = dataclasses.replace(storage, depth=new_depth)
    return _clone(
        desc,
        name=rename or f"{desc.name}-{storage_name.lower()}{new_depth}",
        storages=storages,
    )


def narrow_register_file(desc: ast.Description, new_depth: int,
                         rename: Optional[str] = None) -> ast.Description:
    """Halve-style narrowing of the register file and its name token.

    The register token's value width shrinks, so every whole-parameter
    bitfield assignment referencing it is split into the narrower parameter
    part plus constant-zero padding bits (keeping instruction words and all
    other encodings unchanged).
    """
    reg_files = [
        s for s in desc.storages.values()
        if s.kind is ast.StorageKind.REGISTER_FILE
    ]
    if not reg_files:
        raise ExplorationError("description has no register file")
    reg_file = max(reg_files, key=lambda s: s.depth or 0)
    if not 1 < new_depth < (reg_file.depth or 0):
        raise ExplorationError(
            f"new depth {new_depth} must be between 2 and {reg_file.depth}"
        )
    reg_tokens = [
        t for t in desc.tokens.values()
        if t.kind is ast.TokenKind.PREFIXED
        and t.hi - t.lo + 1 == reg_file.depth
    ]
    if not reg_tokens:
        raise ExplorationError("no register token matches the file depth")
    token = reg_tokens[0]
    old_width = token.value_width
    new_token = dataclasses.replace(token, hi=token.lo + new_depth - 1)
    new_width = new_token.value_width
    if new_width == old_width:
        raise ExplorationError(
            f"depth {new_depth} does not shrink the register token"
        )

    def fix_encoding(encoding, params):
        reg_params = {
            p.name for p in params if p.type_name == token.name
        }
        result = []
        for assign in encoding:
            rhs = assign.rhs
            if (
                isinstance(rhs, ast.EncParam)
                and rhs.name in reg_params
                and rhs.hi is None
            ):
                split = assign.lo + new_width
                result.append(
                    ast.BitAssign(
                        split - 1, assign.lo,
                        ast.EncParam(rhs.name, new_width - 1, 0),
                        assign.location,
                    )
                )
                result.append(
                    ast.BitAssign(
                        assign.hi, split, ast.EncConst(0), assign.location
                    )
                )
            elif isinstance(rhs, ast.EncParam) and rhs.name in reg_params:
                raise ExplorationError(
                    "cannot narrow a register token used in sliced"
                    " encodings"
                )
            else:
                result.append(assign)
        return tuple(result)

    fields = []
    for fld in desc.fields:
        ops = tuple(
            dataclasses.replace(
                op, encoding=fix_encoding(op.encoding, op.params)
            )
            for op in fld.operations
        )
        fields.append(ast.Field(fld.name, ops, fld.location))
    nonterminals = {}
    for name, nt in desc.nonterminals.items():
        options = tuple(
            dataclasses.replace(
                option,
                encoding=fix_encoding(option.encoding, option.params),
            )
            for option in nt.options
        )
        nonterminals[name] = ast.NonTerminal(
            nt.name, nt.width, options, nt.location
        )
    storages = dict(desc.storages)
    storages[reg_file.name] = dataclasses.replace(
        reg_file, depth=new_depth
    )
    tokens = dict(desc.tokens)
    tokens[token.name] = new_token
    candidate = _clone(
        desc,
        name=rename or f"{desc.name}-rf{new_depth}",
        tokens=tokens,
        storages=storages,
        fields=fields,
        nonterminals=nonterminals,
    )
    semantics.check(candidate)
    return candidate
