"""Candidate-architecture evaluation (the measurement box of Figure 1).

One evaluation runs the whole methodology for a candidate description:
compile the application kernels with the retargetable compiler, execute them
on the generated ILS (cycle counts + utilization statistics), synthesize the
hardware model with HGEN (cycle length, die size), estimate power from the
observed activity, and fold everything into a scalar cost for the
iterative-improvement search.

When handed a :class:`repro.cache.ArtifactCache`, the pipeline memoizes
every generated artifact by the description's structural fingerprint —
signature tables, fast cores, assembled workload binaries, synthesized
hardware models, and whole evaluations — so re-measuring a known candidate
(the common case inside an exploration sweep) costs a lookup instead of a
tool-chain run.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields as dc_fields, replace
from typing import Dict, List, Optional, Sequence

from .. import obs
from ..cache import ArtifactCache, kernel_fingerprint
from ..codegen import Compiler
from ..codegen.ir import Kernel
from ..errors import CodegenError, ReproError
from ..encoding.signature import decode_preserved
from ..gensim.stats import SimulationStats
from ..gensim.xsim import XSim
from ..hgen import estimate_power
from ..isdl import ast, fingerprint
from ..isdl.fingerprint import fingerprint_delta
from ..tech.model import TechSpec

#: When set (to anything non-empty), every evaluation that reused parent
#: artifacts is re-run cold and the two results are assert-compared —
#: the debug net under the incremental tier's equal-to-cold invariant.
INCREMENTAL_CHECK_ENV = "REPRO_INCREMENTAL_CHECK"


@dataclass
class CostWeights:
    """Exponents of the weighted-geometric cost function.

    ``cost = runtime^wt · area^wa · power^wp`` — runtime in µs, area in
    grid cells, power in mW.  Embedded targets (paper §1: "low cost and low
    power") weight area and power; a performance target sets them to 0.
    """

    runtime: float = 1.0
    area: float = 0.35
    power: float = 0.25


@dataclass
class Evaluation:
    """Everything measured about one candidate architecture."""

    name: str
    feasible: bool
    reason: str = ""
    cycles: int = 0
    stall_cycles: int = 0
    cycle_ns: float = 0.0
    die_size: float = 0.0
    core_die_size: float = 0.0
    power_mw: float = 0.0
    verilog_lines: int = 0
    synthesis_seconds: float = 0.0
    stats: Optional[SimulationStats] = None
    per_kernel_cycles: Dict[str, int] = field(default_factory=dict)
    weights: Optional[CostWeights] = None
    fingerprint: str = ""
    # Technology axis (None/False on baseline evaluations; readers must
    # getattr() these — pre-tech pickled instances lack the attributes).
    tech_node: Optional[int] = None
    tech_flavor: Optional[str] = None
    vdd: Optional[float] = None
    budget_mw: Optional[float] = None
    power_capped: bool = False

    @property
    def runtime_us(self) -> float:
        return self.cycles * self.cycle_ns / 1000.0

    @property
    def clock_mhz(self) -> float:
        return 1000.0 / self.cycle_ns if self.cycle_ns else 0.0

    @property
    def tech_spec(self) -> Optional[TechSpec]:
        """The technology this candidate was evaluated in, if any."""
        node = getattr(self, "tech_node", None)
        if node is None:
            return None
        return TechSpec(node, getattr(self, "tech_flavor", None) or "HP",
                        getattr(self, "budget_mw", None))

    def cost(self, weights: Optional[CostWeights] = None) -> float:
        weights = weights or self.weights or CostWeights()
        if not self.feasible:
            return float("inf")
        return (
            max(self.runtime_us, 1e-9) ** weights.runtime
            * max(self.die_size, 1.0) ** weights.area
            * max(self.power_mw, 1e-6) ** weights.power
        )

    def summary(self) -> str:
        if not self.feasible:
            return f"{self.name}: INFEASIBLE ({self.reason})"
        spec = self.tech_spec
        suffix = ""
        if spec is not None:
            suffix = f" [{spec.suffix()[1:]}"
            if getattr(self, "power_capped", False):
                suffix += ", capped"
            suffix += "]"
        return (
            f"{self.name}: {self.cycles} cycles @ {self.cycle_ns:.1f} ns ="
            f" {self.runtime_us:.2f} µs, die {self.die_size:,.0f} cells,"
            f" {self.power_mw:.1f} mW{suffix}"
        )


def evaluation_key(desc: ast.Description, kernels: Sequence[Kernel],
                   max_steps: int, fp: Optional[str] = None,
                   sim_backend: str = "xsim",
                   tech: Optional[TechSpec] = None):
    """The cache key identifying one candidate measurement.

    The technology axis is appended **only when set**, so keys written
    by tech-free runs keep their exact historical shape.
    """
    fp = fp or fingerprint(desc)
    key = (fp, tuple(kernel_fingerprint(k) for k in kernels), max_steps,
           sim_backend)
    if tech is not None:
        key = key + (tech.cache_key,)
    return key


def evaluate(
    desc: ast.Description,
    kernels: Sequence[Kernel],
    max_steps: int = 500_000,
    name: Optional[str] = None,
    *,
    weights: Optional[CostWeights] = None,
    cache: Optional[ArtifactCache] = None,
    sim_backend: str = "xsim",
    memoize: bool = True,
    parent: Optional[ast.Description] = None,
    tech: Optional[TechSpec] = None,
) -> Evaluation:
    """Run the full Figure-1 measurement pipeline on one candidate.

    *tech* (keyword-only, a :class:`repro.tech.TechSpec`) measures the
    candidate in a scaled technology, optionally power-capped to the
    spec's ``budget_mw``.  Cycle *counts* are technology independent and
    stay shared; synthesis is projected (not re-run) and the power model
    re-estimated, with the spec folded into the evaluation cache key.
    ``tech=None`` is bit-identical to earlier releases.

    *weights* (keyword-only) is attached to the result so
    :meth:`Evaluation.cost` can be called without repeating them; *cache*
    (keyword-only) memoizes generated artifacts and whole evaluations by
    structural fingerprint instead of rebuilding them internally.
    *sim_backend* selects the executor (see
    :func:`repro.gensim.simulator_for`): ``"xsim"`` keeps the full
    utilization statistics that the improvement heuristics read;
    ``"block"`` trades them for raw cycle-count speed — right for sweeps
    scored on runtime/area/power alone.  Backends are cycle-identical, but
    the key still separates them so cached evaluations carry the stats
    their backend actually produced.

    *memoize* (keyword-only) controls only the whole-evaluation memo:
    with ``memoize=False`` the pipeline still shares artifact-level
    caches (signature tables, cores, programs, synthesis) but always
    re-runs the measurement itself — what the evaluation service's
    no-dedup baseline and simulator-noise studies need.

    *parent* (keyword-only) names the description this candidate was
    mutated from.  It changes nothing about *what* is computed — cache
    keys and results are identical with or without it — but on a cache
    miss the pipeline builds artifacts *incrementally* off the parent's
    cached ones: signature rows, compiled simulator routines and blocks,
    hardware sub-structures, assembled programs, and whole simulation
    results are carried over wherever the fingerprint delta proves the
    relevant description units byte-identical.  Set the
    ``REPRO_INCREMENTAL_CHECK`` environment variable to re-run every
    parent-assisted evaluation cold and assert the results equal.
    """
    label = name or desc.name
    if cache is None:
        with obs.span("explore.evaluate", candidate=label):
            return _evaluate_uncached(desc, kernels, max_steps, label,
                                      weights, sim_backend=sim_backend,
                                      tech=tech)
    with obs.span("explore.evaluate", candidate=label):
        fp = fingerprint(desc)
        if not memoize:
            return _evaluate_uncached(desc, kernels, max_steps, label,
                                      weights, cache=cache, fp=fp,
                                      sim_backend=sim_backend, parent=parent,
                                      tech=tech)
        key = evaluation_key(desc, kernels, max_steps, fp, sim_backend, tech)
        evaluation = cache.evaluation(
            key,
            lambda: _evaluate_uncached(desc, kernels, max_steps, label,
                                       weights, cache=cache, fp=fp,
                                       sim_backend=sim_backend,
                                       parent=parent, tech=tech),
        )
    # A hit may carry another run's label/weights; normalize without
    # touching the cached instance.
    if evaluation.name != label or evaluation.weights != weights:
        evaluation = replace(evaluation, name=label, weights=weights)
    return evaluation


def _copy_stats(stats: SimulationStats) -> SimulationStats:
    """A merge-safe copy: fresh counters/dicts, scalar fields shared.

    Simulation results now live in the artifact cache (the ``"sim"``
    kind), so the stats merge below must never mutate the instance it was
    handed — the next evaluation of the same candidate reads it again.
    """
    values = {}
    for fld in dc_fields(stats):
        value = getattr(stats, fld.name)
        values[fld.name] = value.copy() if hasattr(value, "copy") else value
    return type(stats)(**values)


def _evaluate_uncached(
    desc: ast.Description,
    kernels: Sequence[Kernel],
    max_steps: int,
    label: str,
    weights: Optional[CostWeights],
    cache: Optional[ArtifactCache] = None,
    fp: Optional[str] = None,
    sim_backend: str = "xsim",
    parent: Optional[ast.Description] = None,
    tech: Optional[TechSpec] = None,
    _checked: bool = False,
) -> Evaluation:
    fp = fp or (fingerprint(desc) if cache is not None else "")
    # Resolve the technology up front so an unknown node fails loudly
    # before any tool-chain work; tech_fields stays empty on the
    # baseline path, keeping its Evaluation constructions byte-identical.
    tech_model = tech.model() if tech is not None else None
    tech_fields = {} if tech is None else {
        "tech_node": tech.node_nm,
        "tech_flavor": tech.flavor,
        "budget_mw": tech.budget_mw,
    }
    if (parent is not None and not _checked
            and os.environ.get(INCREMENTAL_CHECK_ENV)):
        return _checked_incremental(desc, kernels, max_steps, label, weights,
                                    cache, fp, sim_backend, parent, tech)
    # 1. Retarget the compiler; an unfit ISA is a legitimate negative result.
    try:
        compiler = Compiler(desc)
        if cache is None:
            programs = [
                (kernel.name, compiler.compile_to_words(kernel), None)
                for kernel in kernels
            ]
        else:
            programs = [
                (
                    kernel.name,
                    cache.assembled(
                        desc, kernel,
                        lambda k=kernel: compiler.compile_to_words(k),
                        fp=fp, parent=parent,
                    ),
                    kernel_fingerprint(kernel),
                )
                for kernel in kernels
            ]
    except (CodegenError, ReproError) as exc:
        return Evaluation(label, feasible=False, reason=str(exc),
                          weights=weights, fingerprint=fp, **tech_fields)
    # 2. Simulate every kernel on the generated ILS.  The signature table
    #    and the fast core are pure functions of the description, so with a
    #    cache they are generated once and shared by every simulator.
    table = (cache.signature_table(desc, fp, parent=parent)
             if cache is not None else None)
    core = (cache.fast_core(desc, fp, parent=parent)
            if cache is not None else "generated")
    delta = parent_fp = None
    if cache is not None and parent is not None:
        delta = fingerprint_delta(parent, desc)
        parent_fp = cache.description_fingerprint(parent)
    total_cycles = 0
    total_stalls = 0
    merged_stats: Optional[SimulationStats] = None
    per_kernel: Dict[str, int] = {}
    for kernel_name, program, kfp in programs:

        def run_kernel(program=program, kfp=kfp) -> SimulationStats:
            # Sim-result adoption: with the whole simulation environment
            # (format, tokens, NTs, storages, fields, attributes) proved
            # unchanged, the identical program decoding to identical
            # operations must execute identically — adopt the parent's
            # cached result without running a single instruction.
            if delta is not None and delta.sim_env_unchanged:
                parent_stats = cache.peek(
                    "sim", (parent_fp, kfp, max_steps, sim_backend)
                )
                parent_program = cache.peek("program", (parent_fp, kfp))
                if (
                    parent_stats is not None
                    and parent_program is not None
                    and list(parent_program.words) == list(program.words)
                    and parent_program.origin == program.origin
                    and decode_preserved(table, desc, program.words, delta)
                ):
                    obs.add("explore.sim_reused")
                    cache.note_incremental("sim", {"reused": 1})
                    return parent_stats
            if sim_backend == "xsim":
                sim = XSim(desc, table=table, core=core)
            elif sim_backend == "block":
                from ..gensim.blocksim import BlockSimulator

                # proof-carrying mode: certificates derived from the
                # dataflow facts elide deopt guards and fuse certified
                # superblock chains — result-identical by construction
                # (REPRO_PROOF_CHECK=1 asserts it), just fewer dispatches
                sim = BlockSimulator(desc, table=table, cache=cache,
                                     parent=parent, proofs=True)
            else:
                from ..gensim.protocol import simulator_for

                sim = simulator_for(desc, sim_backend, table=table)
            sim.load_words(program.words, program.origin)
            return sim.run_to_completion(max_steps)

        try:
            if cache is not None:
                stats = cache.get_or_build(
                    "sim", (fp, kfp, max_steps, sim_backend), run_kernel
                )
            else:
                stats = run_kernel()
        except ReproError as exc:
            # e.g. the program no longer fits a shrunken instruction
            # memory, or it fails to halt on this candidate
            return Evaluation(
                label, feasible=False,
                reason=f"kernel {kernel_name!r}: {exc}",
                weights=weights, fingerprint=fp, **tech_fields,
            )
        per_kernel[kernel_name] = stats.cycles
        total_cycles += stats.cycles
        total_stalls += stats.stall_cycles
        if merged_stats is None:
            merged_stats = _copy_stats(stats)
        else:
            merged_stats.cycles += 0  # totals tracked separately
            merged_stats.op_counts.update(stats.op_counts)
            merged_stats.field_busy.update(stats.field_busy)
            merged_stats.instructions += stats.instructions
    # 3. Synthesize the hardware model (projected, not re-run, when a
    #    technology is set — the synth cache stays technology-free).
    if cache is None:
        from ..hgen import synthesize

        model = synthesize(desc, tech=tech_model)
    else:
        model = cache.synthesized(desc, fp, parent=parent, tech=tech_model)
    with obs.span("hgen.power"):
        power = estimate_power(
            desc, model.netlist, model.clock_mhz, stats=merged_stats,
            area=model.area, tech=tech_model,
            budget_mw=tech.budget_mw if tech is not None else None,
        )
    cycle_ns = model.cycle_ns
    if getattr(power, "capped", False) and power.frequency_mhz > 0:
        # dark-silicon capping slows the clock below the timing-closure
        # cycle; runtime must be charged at the operating point's clock
        cycle_ns = 1000.0 / power.frequency_mhz
    if tech is not None:
        tech_fields = dict(tech_fields, vdd=power.vdd,
                           power_capped=power.capped)
    return Evaluation(
        name=label,
        feasible=True,
        cycles=total_cycles,
        stall_cycles=total_stalls,
        cycle_ns=cycle_ns,
        die_size=model.die_size,
        core_die_size=model.core_die_size,
        power_mw=power.total_mw,
        verilog_lines=model.verilog_lines,
        synthesis_seconds=model.synthesis_seconds,
        stats=merged_stats,
        per_kernel_cycles=per_kernel,
        weights=weights,
        fingerprint=fp,
        **tech_fields,
    )


#: Evaluation fields the equal-to-cold debug check compares (everything
#: deterministic; synthesis_seconds is wall-clock and excluded).
_CHECK_FIELDS = (
    "feasible", "reason", "cycles", "stall_cycles", "cycle_ns",
    "die_size", "core_die_size", "power_mw", "verilog_lines",
    "per_kernel_cycles", "tech_node", "tech_flavor", "vdd", "budget_mw",
    "power_capped",
)


def _checked_incremental(
    desc: ast.Description,
    kernels: Sequence[Kernel],
    max_steps: int,
    label: str,
    weights: Optional[CostWeights],
    cache: Optional[ArtifactCache],
    fp: str,
    sim_backend: str,
    parent: ast.Description,
    tech: Optional[TechSpec] = None,
) -> Evaluation:
    """Run incrementally *and* cold, assert-compare, return the incremental.

    The debug net behind ``REPRO_INCREMENTAL_CHECK``: every
    parent-assisted evaluation is shadowed by a from-scratch one (no
    cache, no parent) and any metric divergence raises.
    """
    incremental = _evaluate_uncached(desc, kernels, max_steps, label,
                                     weights, cache=cache, fp=fp,
                                     sim_backend=sim_backend, parent=parent,
                                     tech=tech, _checked=True)
    cold = _evaluate_uncached(desc, kernels, max_steps, label, weights,
                              sim_backend=sim_backend, tech=tech)
    for name in _CHECK_FIELDS:
        got, want = getattr(incremental, name), getattr(cold, name)
        if got != want:
            raise AssertionError(
                f"incremental evaluation diverged from cold build on"
                f" {name!r}: {got!r} != {want!r} (candidate {label!r})"
            )
    return incremental
