"""The structural netlist produced by HGEN.

The netlist is the "synthesizable Verilog" of the paper in IR form: the
Verilog emitter prints it, the technology-library estimators size and time
it, and the :mod:`repro.vsim` simulator executes it cycle by cycle (the
paper notes "the synthesizable Verilog model is itself a simulator",
footnote 8).

Cells are created in dependency order, so evaluation in creation order is a
valid topological schedule.  Cell outputs are modelled as unbounded Python
integers and masked at the state boundary, mirroring the ILS evaluator —
this keeps the hardware model bit-true against XSIM by construction.

Cell vocabulary
---------------
``Const``, ``Concat`` (assembles a value from instruction-word slices),
``Sext``, ``Unit`` (a shared functional unit with one *member* operation per
merged node), ``PriorityMux``, ``Decode`` (an AND of instruction-word-bit
literals), ``RegRead`` (a storage read port), and ``Write`` (a storage write
port with enable, latency delay and phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Net:
    """One signal; ``width`` is the declared hardware width."""

    uid: int
    width: int
    name: str

    def __str__(self) -> str:
        return self.name


@dataclass
class Cell:
    """Base class for netlist cells."""

    out: Optional[Net]

    def inputs(self) -> Sequence[Net]:  # pragma: no cover - overridden
        return ()


@dataclass
class Const(Cell):
    value: int

    def inputs(self):
        return ()


@dataclass
class Concat(Cell):
    """``out[dst_lo + k] = src[src_lo + k]`` for each part."""

    # (source net, src_hi, src_lo, dst_lo)
    parts: List[Tuple[Net, int, int, int]]

    def inputs(self):
        return [p[0] for p in self.parts]


@dataclass
class Sext(Cell):
    """Sign-extend *src* from *from_width* bits (output may be negative)."""

    src: Net
    from_width: int

    def inputs(self):
        return (self.src,)


@dataclass
class Unit(Cell):
    """One functional-unit *site* (an operator in some operation's RTL).

    Sites sharing the same ``instance_id`` are implemented by one physical
    unit: the resource-sharing allocation merged their nodes, and the
    area/timing models charge a single unit plus the input multiplexers
    implied by the number of merged sites.  Evaluation stays per-site (the
    sites are mutually exclusive by construction, so the physical unit
    computes exactly the active site's function each cycle).

    ``op`` is a binary-operator symbol, ``"neg"``/``"not"``/``"lnot"`` for
    unary operators, or an intrinsic name.  ``const_args`` holds constant
    (non-hardware) arguments such as intrinsic widths, aligned with the
    argument list: ``args`` supplies the nets for positions whose
    ``const_args`` entry is None.
    """

    unit_class: str
    width: int
    op: str
    args: Tuple[Net, ...]
    const_args: Tuple[Optional[int], ...]
    enable: Optional[Net]
    instance_id: int
    node_key: str = ""
    stages: int = 1  # pipeline depth of the owning operation (timing model)

    def inputs(self):
        nets = list(self.args)
        if self.enable is not None:
            nets.append(self.enable)
        return nets


@dataclass
class PriorityMux(Cell):
    """First input whose enable is true wins; otherwise *default*."""

    cases: List[Tuple[Net, Net]]  # (enable, value)
    default: Optional[Net]

    def inputs(self):
        nets = []
        for enable, value in self.cases:
            nets.extend((enable, value))
        if self.default is not None:
            nets.append(self.default)
        return nets


@dataclass
class Decode(Cell):
    """A decode line: AND of word-bit literals (paper §4.2)."""

    word: Net
    literals: Tuple[Tuple[int, int], ...]  # (bit position, required value)
    base: Optional[Net] = None  # ANDed in (option lines chain off op lines)

    def inputs(self):
        return (self.word,) if self.base is None else (self.word, self.base)


@dataclass
class RegRead(Cell):
    """A read port on a storage element."""

    storage: str
    index: Optional[Net]  # None for scalar storage
    hi: Optional[int] = None
    lo: Optional[int] = None
    port_id: int = 0  # allocation result: which physical port

    def inputs(self):
        return () if self.index is None else (self.index,)


@dataclass
class Write:
    """A write port: commits when *enable* is true (not a dataflow cell)."""

    storage: str
    index: Optional[Net]
    hi: Optional[int]
    lo: Optional[int]
    value: Net
    enable: Net
    delay: int  # latency - 1 cycles
    phase: int  # 0 = action, 1 = side effect (commit order)
    seq: int  # tie-break: program order within the phase
    port_id: int = 0


class Netlist:
    """The complete structural model of one synthesized processor."""

    def __init__(self, name: str):
        self.name = name
        self.cells: List[Cell] = []
        self.writes: List[Write] = []
        self.nets: List[Net] = []
        self._net_names: Dict[str, int] = {}
        # filled by the datapath builder:
        self.word_net: Optional[Net] = None
        self.size_net: Optional[Net] = None
        self.storages: Dict[str, "StorageInfo"] = {}

    # ------------------------------------------------------------------

    def new_net(self, width: int, name: str) -> Net:
        count = self._net_names.get(name, 0)
        self._net_names[name] = count + 1
        if count:
            name = f"{name}_{count}"
        net = Net(len(self.nets), width, name)
        self.nets.append(net)
        return net

    def add(self, cell: Cell) -> Net:
        self.cells.append(cell)
        return cell.out

    def add_write(self, write: Write) -> None:
        self.writes.append(write)

    # ------------------------------------------------------------------

    def const(self, value: int, width: int, name: str = "const") -> Net:
        net = self.new_net(width, name)
        self.add(Const(net, value))
        return net

    def stats(self) -> Dict[str, int]:
        """Cell-kind histogram (for reports and tests)."""
        histogram: Dict[str, int] = {}
        for cell in self.cells:
            key = type(cell).__name__
            if isinstance(cell, Unit):
                key = f"Unit[{cell.unit_class}]"
            histogram[key] = histogram.get(key, 0) + 1
        histogram["Write"] = len(self.writes)
        return histogram

    def unit_instances(self) -> Dict[int, List["Unit"]]:
        """Group unit sites by physical instance (sharing allocation)."""
        instances: Dict[int, List[Unit]] = {}
        for cell in self.cells:
            if isinstance(cell, Unit):
                instances.setdefault(cell.instance_id, []).append(cell)
        return instances

    def read_port_instances(self) -> Dict[str, Dict[int, int]]:
        """storage → {port_id: number of merged read sites}."""
        ports: Dict[str, Dict[int, int]] = {}
        for cell in self.cells:
            if isinstance(cell, RegRead):
                per = ports.setdefault(cell.storage, {})
                per[cell.port_id] = per.get(cell.port_id, 0) + 1
        return ports

    def write_port_instances(self) -> Dict[str, Dict[int, int]]:
        """storage → {port_id: number of merged write sites}."""
        ports: Dict[str, Dict[int, int]] = {}
        for write in self.writes:
            per = ports.setdefault(write.storage, {})
            per[write.port_id] = per.get(write.port_id, 0) + 1
        return ports


@dataclass
class StorageInfo:
    """Physical storage in the netlist (mirrors the ISDL storage section)."""

    name: str
    kind: str
    width: int
    depth: Optional[int]
    read_ports: int = 1
    write_ports: int = 1
