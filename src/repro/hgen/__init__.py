"""HGEN — hardware synthesis from ISDL (paper section 4)."""

from .area import AreaReport, estimate_area
from .cliques import clique_partition, verify_cliques
from .datapath import DatapathBuilder, build_datapath
from .decode import DecodeLine, decode_line, decode_lines_for
from .netlist import Netlist
from .nodes import HwNode, NodeId, extract_nodes
from .power import PowerReport, estimate_power
from .sharing import SharingAnalysis
from .synthesize import HardwareModel, synthesize
from .timing import TimingReport, estimate_timing
from .verilog import count_lines, emit_verilog

__all__ = [
    "AreaReport",
    "estimate_area",
    "clique_partition",
    "verify_cliques",
    "DatapathBuilder",
    "build_datapath",
    "DecodeLine",
    "decode_line",
    "decode_lines_for",
    "Netlist",
    "HwNode",
    "NodeId",
    "extract_nodes",
    "PowerReport",
    "estimate_power",
    "SharingAnalysis",
    "HardwareModel",
    "synthesize",
    "TimingReport",
    "estimate_timing",
    "count_lines",
    "emit_verilog",
]
