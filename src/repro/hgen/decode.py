"""Decode-logic generation (paper §4.2).

"There is a direct relationship between the disassembler generated for the
GENSIM system and the decode logic to be used in hardware: they both
implement the same function."  A decode line for an operation is the AND of
the constant literals of its signature — an efficient two-level
implementation; parameter encodings reverse into plain wiring (handled by
``Concat`` cells in the datapath).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..encoding.signature import Signature


@dataclass(frozen=True)
class DecodeLine:
    """The sum-free product term that activates one operation."""

    name: str
    literals: Tuple[Tuple[int, int], ...]  # (word bit, required value)

    @property
    def gate_count(self) -> int:
        """Two-level implementation cost: inverters + AND-tree gates."""
        inverters = sum(1 for _, value in self.literals if value == 0)
        and_gates = max(len(self.literals) - 1, 0)
        return inverters + and_gates

    def equation(self, signal: str = "I") -> str:
        """Textual equation in the paper's style, e.g. ``I9'.I8'.I6.I5``."""
        if not self.literals:
            return "1"
        terms = [
            f"{signal}{bit}" + ("" if value else "'")
            for bit, value in sorted(self.literals, reverse=True)
        ]
        return ".".join(terms)

    def matches(self, word: int) -> bool:
        return all(((word >> bit) & 1) == value for bit, value in self.literals)


def decode_line(name: str, signature: Signature) -> DecodeLine:
    """Derive the decode line from an operation/option signature."""
    literals = []
    for position, symbol in enumerate(signature.symbols):
        if symbol in (0, 1):
            literals.append((position, symbol))
    return DecodeLine(name, tuple(literals))


def decode_lines_for(table, desc) -> List[DecodeLine]:
    """All operation decode lines of a description (reporting helper)."""
    lines = []
    for fld, op in desc.operations():
        signature = table.operation(fld.name, op.name)
        lines.append(decode_line(f"{fld.name}.{op.name}", signature))
    return lines
