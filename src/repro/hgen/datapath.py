"""The HGEN datapath builder: ISDL → structural netlist (paper §4).

Compiles the whole description into a :class:`~repro.hgen.netlist.Netlist`:

* one decode line per operation (paper §4.2), chained into option-match
  lines for non-terminal parameters;
* parameter-value recovery as pure wiring (``Concat`` of instruction-word
  slices, plus sign extension for signed tokens) — the hardware twin of
  the disassembler's ``extract``;
* one functional-unit *site* per RTL operator, tagged with the physical
  instance chosen by the resource-sharing allocation (sites walk the same
  paths as :mod:`repro.hgen.nodes`, so the allocation maps 1:1);
* write ports with enables derived from decode lines and ``if`` conditions,
  phase-tagged so side effects commit after actions, and delay-tagged from
  the ISDL latency.

With ``allocation=None`` every site gets its own instance — the "naive
scheme" of paper §4.1.1, used as the ablation baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..encoding.signature import Signature, SignatureTable
from ..errors import SynthesisError
from ..isdl import ast, rtl
from ..isdl.intrinsics import INTRINSICS
from .nodes import NodeExtractor, NodeId
from .netlist import (
    Concat,
    Const,
    Decode,
    Net,
    Netlist,
    PriorityMux,
    RegRead,
    Sext,
    StorageInfo,
    Unit,
    Write,
)

#: instance ids below this come from the sharing allocation; above are glue.
_FRESH_BASE = 1_000_000


@dataclass
class _NtBinding:
    """A non-terminal parameter compiled into hardware."""

    nt: ast.NonTerminal
    raw: Net  # the NT return-value bits recovered from the word
    value: Optional[Net]  # the $$ value (None until options compiled)
    option_lines: Dict[str, Net]
    option_ctxs: Dict[str, "_Ctx"]


@dataclass
class _Ctx:
    """One activation context: an operation or a non-terminal option."""

    owner: Tuple
    enable: Net
    word: Net  # bit source for this context's signature
    signature: Signature
    params: Dict[str, object]  # name -> Net (token) or _NtBinding
    widths: Dict[str, int]
    delay: int  # latency - 1 for writes issued here
    stages: int = 1  # inferred datapath pipeline depth (Cycle + Stall)


class DatapathBuilder:
    """Builds the netlist for one description."""

    def __init__(
        self,
        desc: ast.Description,
        table: Optional[SignatureTable] = None,
        allocation: Optional[Dict[NodeId, int]] = None,
    ):
        self.desc = desc
        self.table = table or SignatureTable(desc)
        self.allocation = allocation or {}
        self.extractor = NodeExtractor(desc)
        self.netlist = Netlist(desc.name)
        self._fresh_instance = _FRESH_BASE
        self._fresh_port: Dict[str, int] = {}
        self._seq = 0
        self._const_cache: Dict[Tuple[int, int], Net] = {}

    # ------------------------------------------------------------------
    # Small helpers
    # ------------------------------------------------------------------

    def _fresh(self) -> int:
        self._fresh_instance += 1
        return self._fresh_instance

    def _fresh_port_id(self, storage: str) -> int:
        port = self._fresh_port.get(storage, _FRESH_BASE)
        self._fresh_port[storage] = port + 1
        return port

    def _const(self, value: int, width: int) -> Net:
        key = (value, width)
        net = self._const_cache.get(key)
        if net is None:
            net = self.netlist.const(value, width, f"k{value}")
            self._const_cache[key] = net
        return net

    def _glue(self, op: str, args: Tuple[Net, ...], width: int,
              name: str) -> Net:
        out = self.netlist.new_net(width, name)
        self.netlist.add(
            Unit(
                out,
                unit_class="glue",
                width=width,
                op=op,
                args=args,
                const_args=(None,) * len(args),
                enable=None,
                instance_id=self._fresh(),
            )
        )
        return out

    def _and(self, a: Net, b: Net) -> Net:
        return self._glue("&&", (a, b), 1, "en")

    def _not(self, a: Net) -> Net:
        return self._glue("lnot", (a,), 1, "nen")

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------

    def build(self) -> Netlist:
        nl = self.netlist
        for storage in self.desc.storages.values():
            nl.storages[storage.name] = StorageInfo(
                storage.name, storage.kind.value, storage.width, storage.depth
            )
        pc = self.desc.program_counter()
        im = self.desc.instruction_memory()
        pc_net = nl.new_net(pc.width, "pc")
        nl.add(RegRead(pc_net, pc.name, None, port_id=0))
        word_net = nl.new_net(self.desc.word_width, "iword")
        nl.add(
            RegRead(
                word_net, im.name, pc_net,
                port_id=self._fresh_port_id(im.name),
            )
        )
        nl.word_net = word_net

        contexts: List[Tuple[ast.Operation, _Ctx]] = []
        for fld in self.desc.fields:
            for op in fld.operations:
                ctx = self._operation_context(fld, op, word_net)
                contexts.append((op, ctx))
                self._compile_block(ctx, ("action",), op.action, ctx.enable,
                                    phase=0)
        for op, ctx in contexts:
            self._compile_block(
                ctx, ("side_effect",), op.side_effect, ctx.enable, phase=1
            )
            for binding in ctx.params.values():
                if isinstance(binding, _NtBinding):
                    for label, option_ctx in binding.option_ctxs.items():
                        option = binding.nt.option(label)
                        if option.side_effect:
                            self._compile_block(
                                option_ctx,
                                ("side_effect",),
                                option.side_effect,
                                option_ctx.enable,
                                phase=1,
                            )
        nl.size_net = self._build_size_net(contexts)
        self._count_ports()
        return nl

    def _build_size_net(self, contexts) -> Net:
        sizes = {op.costs.size for op, _ in contexts}
        if sizes == {1}:
            return self._const(1, 4)
        cases = [
            (ctx.enable, self._const(op.costs.size, 4))
            for op, ctx in contexts
            if op.costs.size != 1
        ]
        out = self.netlist.new_net(4, "isize")
        self.netlist.add(PriorityMux(out, cases, self._const(1, 4)))
        return out

    def _count_ports(self) -> None:
        for name, ports in self.netlist.read_port_instances().items():
            info = self.netlist.storages.get(name)
            if info is not None:
                info.read_ports = len(ports)
        for name, ports in self.netlist.write_port_instances().items():
            info = self.netlist.storages.get(name)
            if info is not None:
                info.write_ports = len(ports)

    # ------------------------------------------------------------------
    # Contexts
    # ------------------------------------------------------------------

    def _operation_context(self, fld: ast.Field, op: ast.Operation,
                           word_net: Net) -> _Ctx:
        signature = self.table.operation(fld.name, op.name)
        from .decode import decode_line

        line = decode_line(f"{fld.name}.{op.name}", signature)
        enable = self.netlist.new_net(1, f"dec_{fld.name}_{op.name}")
        self.netlist.add(Decode(enable, word_net, line.literals))
        ctx = _Ctx(
            owner=(fld.name, op.name),
            enable=enable,
            word=word_net,
            signature=signature,
            params={},
            widths={},
            delay=op.timing.latency - 1,
            # Structural information from costs (paper 4.1.3): an operation
            # with Cycle c and Stall s implies a (c + s)-stage datapath.
            stages=max(op.costs.cycle + op.costs.stall, 1),
        )
        for param in op.params:
            self._bind_param(ctx, param)
        return ctx

    def _bind_param(self, ctx: _Ctx, param: ast.Param) -> None:
        ptype = self.desc.param_type(param)
        raw = self._param_wiring(ctx, param.name, ctx.signature)
        if isinstance(ptype, ast.TokenDef):
            net = raw
            if ptype.kind is ast.TokenKind.IMMEDIATE and ptype.signed:
                out = self.netlist.new_net(ptype.width, f"{param.name}_sx")
                self.netlist.add(Sext(out, raw, ptype.width))
                net = out
            ctx.params[param.name] = net
            ctx.widths[param.name] = ptype.value_width
            return
        binding = self._bind_nonterminal(ctx, param, ptype, raw)
        ctx.params[param.name] = binding
        ctx.widths[param.name] = self.extractor.param_width(param)

    def _param_wiring(self, ctx: _Ctx, name: str,
                      signature: Signature) -> Net:
        """Recover a parameter's value bits from the context word (wiring)."""
        positions = signature.param_positions(name)
        if not positions:
            raise SynthesisError(
                f"parameter {name!r} of {ctx.owner} has no encoding bits"
            )
        value_width = 1 + max(vbit for _, vbit in positions)
        # Group contiguous runs (word bit and value bit advancing together).
        positions.sort(key=lambda pair: pair[1])
        parts: List[Tuple[Net, int, int, int]] = []
        run_start = 0
        for i in range(1, len(positions) + 1):
            if (
                i == len(positions)
                or positions[i][1] != positions[i - 1][1] + 1
                or positions[i][0] != positions[i - 1][0] + 1
            ):
                lo_word, lo_value = positions[run_start]
                hi_word, _ = positions[i - 1]
                parts.append((ctx.word, hi_word, lo_word, lo_value))
                run_start = i
        out = self.netlist.new_net(value_width, f"p_{name}")
        self.netlist.add(Concat(out, parts))
        return out

    def _bind_nonterminal(self, ctx: _Ctx, param: ast.Param,
                          nt: ast.NonTerminal, raw: Net) -> _NtBinding:
        binding = _NtBinding(nt, raw, None, {}, {})
        value_cases: List[Tuple[Net, Net]] = []
        from .decode import decode_line

        for option in nt.options:
            signature = self.table.option(nt.name, option.label)
            line = decode_line(f"{nt.name}.{option.label}", signature)
            option_enable = self.netlist.new_net(
                1, f"opt_{param.name}_{option.label}"
            )
            self.netlist.add(
                Decode(option_enable, raw, line.literals, base=ctx.enable)
            )
            option_ctx = _Ctx(
                owner=ctx.owner + (param.name, option.label),
                enable=option_enable,
                word=raw,
                signature=signature,
                params={},
                widths={},
                delay=option.timing.latency - 1,
                stages=ctx.stages,
            )
            for sub_param in option.params:
                self._bind_param(option_ctx, sub_param)
            binding.option_lines[option.label] = option_enable
            binding.option_ctxs[option.label] = option_ctx
            # Compile the option action now (phase 0): it yields the $$
            # value and any state writes (e.g. auto-increment addressing).
            value_net = self._compile_nt_action(option_ctx, option)
            if value_net is not None:
                value_cases.append((option_enable, value_net))
        width = self.extractor.param_width(param)
        value = self.netlist.new_net(width, f"v_{param.name}")
        self.netlist.add(
            PriorityMux(value, value_cases, self._const(0, width))
        )
        binding.value = value
        return binding

    def _compile_nt_action(self, option_ctx: _Ctx,
                           option: ast.NtOption) -> Optional[Net]:
        collector: List[Tuple[Net, Net]] = []
        self._compile_block(
            option_ctx,
            ("action",),
            option.action,
            option_ctx.enable,
            phase=0,
            nt_collector=collector,
        )
        if not collector:
            return None
        if len(collector) == 1:
            return collector[0][1]
        width = max(net.width for _, net in collector)
        out = self.netlist.new_net(width, "ntv")
        self.netlist.add(PriorityMux(out, collector[::-1], None))
        return out

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------

    def _compile_block(self, ctx: _Ctx, path: Tuple, stmts, enable: Net,
                       phase: int, nt_collector=None) -> None:
        for i, stmt in enumerate(stmts):
            stmt_path = path + (i,)
            if isinstance(stmt, rtl.Assign):
                value = self._compile_expr(
                    ctx, stmt_path + ("rhs",), stmt.expr, nt_collector
                )
                self._compile_assign(
                    ctx, stmt_path, stmt, value, enable, phase, nt_collector
                )
            elif isinstance(stmt, rtl.If):
                cond = self._compile_expr(
                    ctx, stmt_path + ("cond",), stmt.cond, nt_collector
                )
                then_enable = self._and(enable, cond)
                self._compile_block(
                    ctx, stmt_path + ("then",), stmt.then, then_enable,
                    phase, nt_collector,
                )
                if stmt.orelse:
                    else_enable = self._and(enable, self._not(cond))
                    self._compile_block(
                        ctx, stmt_path + ("else",), stmt.orelse, else_enable,
                        phase, nt_collector,
                    )
            else:
                raise SynthesisError(f"unknown RTL statement {stmt!r}")

    def _compile_assign(self, ctx, stmt_path, stmt, value, enable, phase,
                        nt_collector) -> None:
        dest = stmt.dest
        if isinstance(dest, rtl.NtLV):
            if nt_collector is None:
                raise SynthesisError("'$$' assigned outside a non-terminal")
            nt_collector.append((enable, value))
            return
        if isinstance(dest, rtl.ParamLV):
            binding = ctx.params[dest.name]
            if not isinstance(binding, _NtBinding):
                raise SynthesisError(
                    f"parameter {dest.name!r} is not a destination"
                )
            # Route the value through the NT's bus node, then write each
            # transparent option's target, gated by its option line.
            bus = self._unit_site(
                ctx, stmt_path + ("bus",), "bus", "bus", (value,),
                value.width,
            )
            for label, option_ctx in binding.option_ctxs.items():
                option = binding.nt.option(label)
                target = option.storage_target()
                if target is None:
                    raise SynthesisError(
                        f"option {label!r} of {binding.nt.name!r} is not"
                        " transparent"
                    )
                write_enable = self._and(enable, binding.option_lines[label])
                self._emit_write(
                    option_ctx,
                    option_ctx.owner + ("wthru",) + stmt_path,
                    target.storage,
                    target.index,
                    target.hi,
                    target.lo,
                    bus,
                    write_enable,
                    phase,
                    delay=option_ctx.delay,
                    index_path=("wthru",) + stmt_path + ("index",),
                )
            return
        if isinstance(dest, rtl.StorageLV):
            if self._is_move(stmt.expr):
                value = self._unit_site(
                    ctx, stmt_path + ("bus",), "bus", "bus", (value,),
                    self.extractor.location_width(
                        dest.storage, dest.hi, dest.lo
                    ),
                )
            self._emit_write(
                ctx,
                ctx.owner + stmt_path,
                dest.storage,
                dest.index,
                dest.hi,
                dest.lo,
                value,
                enable,
                phase,
                delay=ctx.delay,
                index_path=stmt_path + ("index",),
            )
            return
        raise SynthesisError(f"invalid destination {dest!r}")

    @staticmethod
    def _is_move(expr: rtl.Expr) -> bool:
        return isinstance(expr, (rtl.StorageRead, rtl.ParamRef, rtl.IntLit))

    def _emit_write(self, ctx, node_key, name, index_expr, hi, lo, value,
                    enable, phase, delay, index_path) -> None:
        storage_name, fixed_index, hi, lo = self._resolve_location(
            name, hi, lo
        )
        storage = self.desc.storages[storage_name]
        index_net = None
        port_id = 0
        if storage.addressed:
            if index_expr is not None:
                index_net = self._compile_expr(ctx, index_path, index_expr,
                                               None)
            elif fixed_index is not None:
                index_net = self._const(fixed_index, 16)
            else:
                raise SynthesisError(
                    f"write to addressed storage {storage_name!r} without"
                    " index"
                )
            # Write-port allocation: the extractor created a write_port node
            # at stmt_path + ('wport',) for addressed destinations.
            stmt_rel = tuple(node_key[len(ctx.owner):])
            wnode = NodeId(ctx.owner, stmt_rel + ("wport",))
            port_id = self.allocation.get(
                wnode, self._fresh_port_id(storage_name)
            )
        self.netlist.add_write(
            Write(
                storage=storage_name,
                index=index_net,
                hi=hi,
                lo=lo,
                value=value,
                enable=enable,
                delay=delay,
                phase=phase,
                seq=self._next_seq(),
                port_id=port_id,
            )
        )

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _resolve_location(self, name, hi, lo):
        """Resolve an alias to (storage, fixed_index, hi, lo)."""
        if name in self.desc.storages:
            return name, None, hi, lo
        alias = self.desc.aliases[name]
        storage = self.desc.storages[alias.storage]
        alias_hi, alias_lo = alias.hi, alias.lo
        fixed_index = alias.index if storage.addressed else None
        if not storage.addressed and alias.index is not None:
            alias_hi = alias_lo = alias.index
        if alias_lo is None:
            alias_lo = alias_hi
        if alias_hi is None:
            return storage.name, fixed_index, hi, lo
        if hi is None:
            return storage.name, fixed_index, alias_hi, alias_lo
        effective_lo = lo if lo is not None else hi
        return (
            storage.name,
            fixed_index,
            alias_lo + hi,
            alias_lo + effective_lo,
        )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _unit_site(self, ctx, path, unit_class, op, args, width,
                   const_args=None) -> Net:
        node_id = NodeId(ctx.owner, path)
        instance = self.allocation.get(node_id)
        if instance is None:
            instance = self._fresh()
        out = self.netlist.new_net(width, f"u_{op if op.isalnum() else unit_class}")
        self.netlist.add(
            Unit(
                out,
                unit_class=unit_class,
                width=width,
                op=op,
                args=tuple(args),
                const_args=const_args or (None,) * len(args),
                enable=ctx.enable,
                instance_id=instance,
                node_key=str(node_id),
                stages=ctx.stages,
            )
        )
        return out

    def _compile_expr(self, ctx: _Ctx, path: Tuple, expr: rtl.Expr,
                      nt_collector) -> Net:
        from .nodes import _BINOP_CLASS  # canonical operator classes

        if isinstance(expr, rtl.IntLit):
            return self._const(
                expr.value, max(expr.value.bit_length(), 1)
            )
        if isinstance(expr, rtl.ParamRef):
            binding = ctx.params[expr.name]
            if isinstance(binding, _NtBinding):
                return binding.value
            return binding
        if isinstance(expr, rtl.NtValue):
            if not nt_collector:
                raise SynthesisError("'$$' read before assignment")
            return nt_collector[-1][1]
        if isinstance(expr, rtl.StorageRead):
            return self._compile_read(ctx, path, expr, nt_collector)
        if isinstance(expr, rtl.BinOp):
            left = self._compile_expr(ctx, path + (0,), expr.left, nt_collector)
            right = self._compile_expr(ctx, path + (1,), expr.right, nt_collector)
            if expr.op in ("==", "!=", "<", "<=", ">", ">="):
                # A comparator is sized by its datapath inputs even though
                # its result is one bit.
                width = max(left.width, right.width)
            else:
                width = self.extractor.expr_width(expr, ctx.widths)
            return self._unit_site(
                ctx, path, _BINOP_CLASS[expr.op], expr.op, (left, right),
                width,
            )
        if isinstance(expr, rtl.UnOp):
            operand = self._compile_expr(
                ctx, path + (0,), expr.operand, nt_collector
            )
            width = self.extractor.expr_width(expr, ctx.widths)
            if expr.op == "-":
                return self._unit_site(
                    ctx, path, "adder", "neg", (operand,), width
                )
            op = "not" if expr.op == "~" else "lnot"
            return self._glue(op, (operand,), width, "g")
        if isinstance(expr, rtl.Cond):
            cond = self._compile_expr(ctx, path + (0,), expr.cond, nt_collector)
            then = self._compile_expr(ctx, path + (1,), expr.then, nt_collector)
            other = self._compile_expr(ctx, path + (2,), expr.other, nt_collector)
            width = self.extractor.expr_width(expr, ctx.widths)
            return self._unit_site(
                ctx, path, "mux", "mux", (cond, then, other), width
            )
        if isinstance(expr, rtl.Call):
            return self._compile_call(ctx, path, expr, nt_collector)
        raise SynthesisError(f"unknown RTL expression {expr!r}")

    def _compile_read(self, ctx, path, expr: rtl.StorageRead, nt_collector):
        storage_name, fixed_index, hi, lo = self._resolve_location(
            expr.storage, expr.hi, expr.lo
        )
        storage = self.desc.storages[storage_name]
        index_net = None
        port_id = 0
        if storage.addressed:
            if expr.index is not None:
                index_net = self._compile_expr(
                    ctx, path + ("index",), expr.index, nt_collector
                )
            elif fixed_index is not None:
                index_net = self._const(fixed_index, 16)
            rnode = NodeId(ctx.owner, path + ("rport",))
            port_id = self.allocation.get(
                rnode, self._fresh_port_id(storage_name)
            )
        width = hi - lo + 1 if hi is not None else storage.width
        out = self.netlist.new_net(width, f"r_{storage_name}")
        self.netlist.add(
            RegRead(out, storage_name, index_net, hi, lo, port_id)
        )
        return out

    def _compile_call(self, ctx, path, expr: rtl.Call, nt_collector) -> Net:
        meta = INTRINSICS[expr.func]
        args: List[Net] = []
        const_args: List[Optional[int]] = []
        for i, arg in enumerate(expr.args):
            if isinstance(arg, rtl.IntLit):
                const_args.append(arg.value)
                args.append(self._const(arg.value, max(arg.value.bit_length(), 1)))
            else:
                const_args.append(None)
                args.append(
                    self._compile_expr(ctx, path + (i,), arg, nt_collector)
                )
        width = self.extractor._call_width(expr, ctx.widths)
        if meta.unit_class == "wire":
            return self._glue(expr.func, tuple(args), width, expr.func)
        return self._unit_site(
            ctx, path, meta.unit_class, expr.func, tuple(args), width,
            tuple(const_args),
        )


def build_datapath(desc: ast.Description,
                   table: Optional[SignatureTable] = None,
                   allocation: Optional[Dict[NodeId, int]] = None) -> Netlist:
    """Convenience wrapper over :class:`DatapathBuilder`."""
    return DatapathBuilder(desc, table, allocation).build()
