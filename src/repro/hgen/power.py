"""Power estimation (paper §1: physical costs include power consumption).

A switched-capacitance model over the synthesized netlist:

* every functional-unit instance dissipates dynamic energy proportional to
  its area whenever one of its sites is active — activity comes from the
  ILS utilization statistics (operation execution frequencies), which is
  exactly the evaluation loop of Figure 1: simulate, then cost the
  architecture with realistic activity factors;
* storage and steering switch with a default activity;
* everything leaks/clocks in proportion to area.

The per-cell energy/leakage constants come from a
:class:`~repro.tech.model.TechModel` (default: :data:`repro.tech.BASELINE`,
identical to the legacy ``techlib`` constants), so the same code path
serves the pinned baseline process and every scaled node.  With a
``budget_mw`` the report is capped to the technology's best operating
point under that budget (see :mod:`repro.tech.dvfs`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .. import obs
from ..gensim.stats import SimulationStats
from ..isdl import ast
from ..tech.dvfs import solve_operating_point
from ..tech.model import BASELINE, TechModel
from . import techlib
from .area import AreaReport, estimate_area
from .netlist import Netlist, Unit

#: fallback activity factor when no simulation statistics are supplied
DEFAULT_ACTIVITY = 0.25


@dataclass
class PowerReport:
    """Estimated power at a given clock frequency and supply voltage."""

    dynamic_mw: float
    static_mw: float
    frequency_mhz: float
    #: supply voltage the figures hold at (baseline process: 3.3 V)
    vdd: float = 3.3
    #: power budget the report was solved under (None = uncapped)
    budget_mw: Optional[float] = None
    #: True when the budget forced the operating point below nominal
    capped: bool = False
    #: True when even the minimum-voltage point exceeds the budget
    dark_silicon: bool = False

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.static_mw


def operation_activity(desc: ast.Description,
                       stats: Optional[SimulationStats]) -> Dict[tuple, float]:
    """Per-operation activity factors from a simulation run."""
    activities: Dict[tuple, float] = {}
    if stats is None or stats.instructions == 0:
        for fld, op in desc.operations():
            activities[(fld.name, op.name)] = DEFAULT_ACTIVITY
        return activities
    for fld, op in desc.operations():
        count = stats.op_counts.get((fld.name, op.name), 0)
        activities[(fld.name, op.name)] = count / stats.instructions
    return activities


def estimate_power(
    desc: ast.Description,
    netlist: Netlist,
    frequency_mhz: float,
    stats: Optional[SimulationStats] = None,
    area: Optional[AreaReport] = None,
    tech: Optional[TechModel] = None,
    budget_mw: Optional[float] = None,
) -> PowerReport:
    """Estimate dynamic + static power at *frequency_mhz*.

    *area* must be the **baseline** area report (cell counts are
    technology independent; *tech*'s per-cell constants already embed
    the node's shrink).  *frequency_mhz* is the clock the design runs
    at in *tech* — the caller passes the tech-scaled clock.  With a
    *budget_mw* the nominal point is handed to the DVFS solver and the
    capped operating point is reported instead; the ``power.capped``
    obs counter ticks whenever the cap binds.
    """
    tech = tech or BASELINE
    area = area or estimate_area(desc, netlist)
    activities = operation_activity(desc, stats)
    energy_pj = 0.0  # per cycle
    for sites in netlist.unit_instances().values():
        first = sites[0]
        if first.unit_class in ("glue", "wire"):
            continue
        model = techlib.UNIT_MODELS.get(first.unit_class)
        if model is None:
            continue
        width = max(site.width for site in sites)
        instance_area = model.area(width)
        activity = 0.0
        for site in sites:
            owner = _owner_of(site)
            activity += activities.get(owner, DEFAULT_ACTIVITY)
        activity = min(activity, 1.0)
        energy_pj += (
            instance_area * activity * tech.dynamic_energy_per_cell_pj
        )
    # Storage, decode and steering switch with default activity.
    background = (area.storage + area.decode + area.steering
                  + area.pipeline_registers)
    energy_pj += background * DEFAULT_ACTIVITY * tech.dynamic_energy_per_cell_pj
    # pJ/cycle × MHz = µW; divide by 1000 for mW.
    dynamic_mw = energy_pj * frequency_mhz / 1000.0
    static_mw = area.total * tech.static_power_per_cell_uw / 1000.0
    if budget_mw is None:
        return PowerReport(dynamic_mw, static_mw, frequency_mhz,
                           vdd=tech.vdd_nominal_v)
    op = solve_operating_point(
        tech,
        nominal_frequency_mhz=frequency_mhz,
        nominal_dynamic_mw=dynamic_mw,
        nominal_static_mw=static_mw,
        budget_mw=budget_mw,
    )
    if op.capped:
        obs.add("power.capped")
    return PowerReport(
        op.dynamic_mw,
        op.static_mw,
        op.frequency_mhz,
        vdd=op.vdd,
        budget_mw=budget_mw,
        capped=op.capped,
        dark_silicon=op.dark_silicon,
    )


def _owner_of(site: Unit) -> tuple:
    """Recover (field, op) from the site's node key."""
    owner_text = site.node_key.split(":", 1)[0]
    parts = owner_text.split(".")
    return tuple(parts[:2])
