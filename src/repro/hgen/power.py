"""Power estimation (paper §1: physical costs include power consumption).

A switched-capacitance model over the synthesized netlist:

* every functional-unit instance dissipates dynamic energy proportional to
  its area whenever one of its sites is active — activity comes from the
  ILS utilization statistics (operation execution frequencies), which is
  exactly the evaluation loop of Figure 1: simulate, then cost the
  architecture with realistic activity factors;
* storage and steering switch with a default activity;
* everything leaks/clocks in proportion to area.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..gensim.stats import SimulationStats
from ..isdl import ast
from . import techlib
from .area import AreaReport, estimate_area
from .netlist import Netlist, Unit

#: fallback activity factor when no simulation statistics are supplied
DEFAULT_ACTIVITY = 0.25


@dataclass
class PowerReport:
    """Estimated power at a given clock frequency."""

    dynamic_mw: float
    static_mw: float
    frequency_mhz: float

    @property
    def total_mw(self) -> float:
        return self.dynamic_mw + self.static_mw


def operation_activity(desc: ast.Description,
                       stats: Optional[SimulationStats]) -> Dict[tuple, float]:
    """Per-operation activity factors from a simulation run."""
    activities: Dict[tuple, float] = {}
    if stats is None or stats.instructions == 0:
        for fld, op in desc.operations():
            activities[(fld.name, op.name)] = DEFAULT_ACTIVITY
        return activities
    for fld, op in desc.operations():
        count = stats.op_counts.get((fld.name, op.name), 0)
        activities[(fld.name, op.name)] = count / stats.instructions
    return activities


def estimate_power(
    desc: ast.Description,
    netlist: Netlist,
    frequency_mhz: float,
    stats: Optional[SimulationStats] = None,
    area: Optional[AreaReport] = None,
) -> PowerReport:
    """Estimate dynamic + static power at *frequency_mhz*."""
    area = area or estimate_area(desc, netlist)
    activities = operation_activity(desc, stats)
    energy_pj = 0.0  # per cycle
    for sites in netlist.unit_instances().values():
        first = sites[0]
        if first.unit_class in ("glue", "wire"):
            continue
        model = techlib.UNIT_MODELS.get(first.unit_class)
        if model is None:
            continue
        width = max(site.width for site in sites)
        instance_area = model.area(width)
        activity = 0.0
        for site in sites:
            owner = _owner_of(site)
            activity += activities.get(owner, DEFAULT_ACTIVITY)
        activity = min(activity, 1.0)
        energy_pj += (
            instance_area * activity * techlib.DYNAMIC_ENERGY_PER_CELL_PJ
        )
    # Storage, decode and steering switch with default activity.
    background = (area.storage + area.decode + area.steering
                  + area.pipeline_registers)
    energy_pj += background * DEFAULT_ACTIVITY * techlib.DYNAMIC_ENERGY_PER_CELL_PJ
    # pJ/cycle × MHz = µW; divide by 1000 for mW.
    dynamic_mw = energy_pj * frequency_mhz / 1000.0
    static_mw = area.total * techlib.STATIC_POWER_PER_CELL_UW / 1000.0
    return PowerReport(dynamic_mw, static_mw, frequency_mhz)


def _owner_of(site: Unit) -> tuple:
    """Recover (field, op) from the site's node key."""
    owner_text = site.node_key.split(":", 1)[0]
    parts = owner_text.split(".")
    return tuple(parts[:2])
