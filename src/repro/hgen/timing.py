"""Cycle-length estimation (Table 2, "Cycle (nsec)").

Static timing over the netlist: every net gets an arrival time, cells add
their technology delay, and the cycle length is the worst register-to-
register path plus setup and clock margin.  Multi-stage operations (paper
§4.1.3: Cycle + Stall stages) divide their functional-unit delay across the
inferred pipeline, so a 2-cycle load does not stretch the clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..isdl import ast
from . import techlib
from .netlist import (
    Concat,
    Const,
    Decode,
    Netlist,
    PriorityMux,
    RegRead,
    Sext,
    Unit,
)


@dataclass
class TimingReport:
    """Critical-path analysis result."""

    critical_path_ns: float
    cycle_ns: float
    critical_net: str = ""
    arrival: Dict[int, float] = field(default_factory=dict, repr=False)


def estimate_timing(desc: ast.Description, netlist: Netlist) -> TimingReport:
    """Compute the critical path and cycle length of a netlist."""
    arrival: Dict[int, float] = {}
    instance_sites: Dict[int, int] = {}
    for instance, sites in netlist.unit_instances().items():
        instance_sites[instance] = len(sites)

    worst = 0.0
    worst_net = ""

    def set_arrival(net, time: float) -> None:
        nonlocal worst, worst_net
        arrival[net.uid] = time
        if time > worst:
            worst = time
            worst_net = net.name

    for cell in netlist.cells:
        if cell.out is None:
            continue
        inputs = [arrival.get(net.uid, 0.0) for net in cell.inputs()]
        base = max(inputs, default=0.0)
        set_arrival(cell.out, base + _cell_delay(desc, cell, instance_sites))

    # Register-to-register paths end at write ports (value, enable, index)
    # plus setup time.
    for write in netlist.writes:
        ends = [arrival.get(write.value.uid, 0.0),
                arrival.get(write.enable.uid, 0.0)]
        if write.index is not None:
            ends.append(arrival.get(write.index.uid, 0.0))
        path = max(ends) + techlib.REGISTER_SETUP
        if path > worst:
            worst = path
            worst_net = f"write:{write.storage}"
    # The PC increment path.
    if netlist.size_net is not None:
        path = arrival.get(netlist.size_net.uid, 0.0) + 2.0  # small adder
        if path > worst:
            worst = path
            worst_net = "pc_increment"

    return TimingReport(
        critical_path_ns=worst,
        cycle_ns=worst + techlib.CLOCK_MARGIN,
        critical_net=worst_net,
        arrival=arrival,
    )


def _cell_delay(desc: ast.Description, cell, instance_sites) -> float:
    if isinstance(cell, (Const, Concat, Sext)):
        return 0.0
    if isinstance(cell, Decode):
        literals = len(cell.literals) + (1 if cell.base is not None else 0)
        levels = math.ceil(math.log2(max(literals, 2)))
        return 0.35 + levels * techlib.DECODE_DELAY_PER_LEVEL
    if isinstance(cell, PriorityMux):
        return 0.3 + len(cell.cases) * techlib.SHARING_MUX_DELAY_PER_LEVEL
    if isinstance(cell, RegRead):
        storage = desc.storages[cell.storage]
        if not storage.addressed:
            return techlib.REGISTER_CLK_TO_Q
        if storage.kind in (
            ast.StorageKind.DATA_MEMORY,
            ast.StorageKind.INSTRUCTION_MEMORY,
            ast.StorageKind.MEMORY_MAPPED_IO,
        ):
            return techlib.memory_read_delay(storage.depth or 1)
        return techlib.register_file_read_delay(storage.depth or 1)
    if isinstance(cell, Unit):
        if cell.unit_class in ("glue", "wire"):
            return techlib.GLUE_DELAY.get(cell.op, 0.5)
        model = techlib.UNIT_MODELS[cell.unit_class]
        delay = model.delay(max(cell.width, 1))
        # Inferred pipelining spreads the unit across its stages.
        delay /= max(cell.stages, 1)
        sites = instance_sites.get(cell.instance_id, 1)
        if sites > 1:
            levels = math.ceil(math.log2(sites))
            delay += levels * techlib.SHARING_MUX_DELAY_PER_LEVEL
        return delay
    return 0.0
