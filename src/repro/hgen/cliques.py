"""Clique partitioning for functional-unit allocation (paper §4.1.2).

"Once we have the entries in the matrix, we can simply create maximal
cliques of the nodes that can be shared.  These maximal cliques are then
synthesized into circuits."

Partitioning a graph into a minimum number of cliques is NP-hard, so we use
the classic greedy clique-partitioning heuristic of high-level synthesis
(Tseng & Siewiorek): repeatedly merge the pair of super-nodes with the most
common neighbours until no edge remains.  Each resulting clique becomes one
functional-unit instance; by construction every clique is maximal within the
remaining graph when it is closed.
"""

from __future__ import annotations

from typing import List, Sequence, Set


def clique_partition(adjacency: Sequence[Set[int]]) -> List[List[int]]:
    """Partition vertices into cliques of the compatibility graph.

    *adjacency* is a list of neighbour sets (undirected, no self-loops).
    Returns a list of cliques, each a sorted list of vertex indices; every
    vertex appears in exactly one clique (isolated vertices form singleton
    cliques).
    """
    n = len(adjacency)
    # Super-node state: members and the set of vertices adjacent to *all*
    # members (candidates for joining the clique).
    members: List[List[int]] = [[i] for i in range(n)]
    common: List[Set[int]] = [set(neigh) for neigh in adjacency]
    alive: Set[int] = set(range(n))

    def merge_gain(a: int, b: int) -> int:
        return len(common[a] & common[b])

    while True:
        best = None
        best_gain = -1
        alive_list = sorted(alive)
        for ai, a in enumerate(alive_list):
            for b in alive_list[ai + 1 :]:
                # b's members must all be common neighbours of a's clique.
                if not set(members[b]) <= common[a]:
                    continue
                if not set(members[a]) <= common[b]:
                    continue
                gain = merge_gain(a, b)
                if gain > best_gain:
                    best_gain = gain
                    best = (a, b)
        if best is None:
            break
        a, b = best
        members[a] = sorted(members[a] + members[b])
        common[a] = common[a] & common[b]
        common[a] -= set(members[a])
        alive.discard(b)
    return sorted(
        (sorted(members[a]) for a in alive), key=lambda clique: clique[0]
    )


def verify_cliques(adjacency: Sequence[Set[int]],
                   cliques: Sequence[Sequence[int]]) -> None:
    """Assert the partition is a set of valid, disjoint, covering cliques."""
    seen: Set[int] = set()
    for clique in cliques:
        for i, a in enumerate(clique):
            if a in seen:
                raise AssertionError(f"vertex {a} in two cliques")
            seen.add(a)
            for b in clique[i + 1 :]:
                if b not in adjacency[a]:
                    raise AssertionError(
                        f"vertices {a} and {b} share a clique but are not"
                        " compatible"
                    )
    if seen != set(range(len(adjacency))):
        raise AssertionError("clique partition does not cover all vertices")
