"""Clique partitioning for functional-unit allocation (paper §4.1.2).

"Once we have the entries in the matrix, we can simply create maximal
cliques of the nodes that can be shared.  These maximal cliques are then
synthesized into circuits."

Partitioning a graph into a minimum number of cliques is NP-hard, so we use
the classic greedy clique-partitioning heuristic of high-level synthesis
(Tseng & Siewiorek): repeatedly merge the pair of super-nodes with the most
common neighbours until no edge remains.  Each resulting clique becomes one
functional-unit instance; by construction every clique is maximal within the
remaining graph when it is closed.

The greedy runs per connected component.  A merge requires each side's
members to be common neighbours of the other, so candidate pairs are always
adjacent super-nodes and merges never cross a component boundary; running
the same greedy on each component (vertices relabelled in ascending order,
which preserves the tie-break order) therefore produces bit-identical
cliques to the whole-graph scan at a fraction of the O(n^2)-pairs-per-round
cost.  Components also give incremental synthesis its reuse unit: a
component's greedy result depends only on its relabelled local structure,
so :func:`component_key` digests that structure and
:func:`clique_partition` accepts a ``reuse`` mapping of previously computed
per-component partitions (see :mod:`repro.hgen.synthesize`).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

# A component's partition, in local (relabelled) vertex indices.
LocalCliques = Tuple[Tuple[int, ...], ...]


def connected_components(adjacency: Sequence[Set[int]]) -> List[List[int]]:
    """Connected components as sorted vertex lists, ordered by first vertex."""
    n = len(adjacency)
    seen = [False] * n
    components: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        stack = [start]
        seen[start] = True
        comp = []
        while stack:
            v = stack.pop()
            comp.append(v)
            for w in adjacency[v]:
                if not seen[w]:
                    seen[w] = True
                    stack.append(w)
        components.append(sorted(comp))
    return components


def component_key(local_adjacency: Sequence[Set[int]]) -> str:
    """Digest of a component's relabelled structure.

    Two components with equal keys are isomorphic *with matching vertex
    order*, so the greedy (whose tie-breaks follow that order) yields the
    same local cliques — the soundness condition for partition reuse.
    """
    h = hashlib.sha256()
    h.update(str(len(local_adjacency)).encode())
    for i, neigh in enumerate(local_adjacency):
        h.update(b"|")
        h.update(str(i).encode())
        h.update(b":")
        h.update(",".join(map(str, sorted(neigh))).encode())
    return h.hexdigest()


def _greedy_partition(adjacency: Sequence[Set[int]]) -> List[List[int]]:
    """Tseng–Siewiorek greedy on one (typically connected) graph."""
    n = len(adjacency)
    # Super-node state: members and the set of vertices adjacent to *all*
    # members (candidates for joining the clique).
    members: List[List[int]] = [[i] for i in range(n)]
    common: List[Set[int]] = [set(neigh) for neigh in adjacency]
    alive: Set[int] = set(range(n))

    while True:
        best = None
        best_gain = -1
        alive_list = sorted(alive)
        for ai, a in enumerate(alive_list):
            for b in alive_list[ai + 1 :]:
                # b's members must all be common neighbours of a's clique.
                if not set(members[b]) <= common[a]:
                    continue
                if not set(members[a]) <= common[b]:
                    continue
                gain = len(common[a] & common[b])
                if gain > best_gain:
                    best_gain = gain
                    best = (a, b)
        if best is None:
            break
        a, b = best
        members[a] = sorted(members[a] + members[b])
        common[a] = common[a] & common[b]
        common[a] -= set(members[a])
        alive.discard(b)
    return sorted(
        (sorted(members[a]) for a in alive), key=lambda clique: clique[0]
    )


def partition_components(
    adjacency: Sequence[Set[int]],
    reuse: Optional[Dict[str, LocalCliques]] = None,
) -> Tuple[List[List[int]], Dict[str, LocalCliques], int, int]:
    """Partition per component, reusing prior component results.

    *reuse* maps :func:`component_key` digests to local partitions from an
    earlier (e.g. the parent candidate's) run.  Returns the global
    cliques, the key->partition mapping for *this* graph (to hand to
    children), the number of components whose greedy was skipped via
    reuse, and the number actually partitioned.  Structurally identical
    components within one graph reuse each other's result too.
    """
    cliques: List[List[int]] = []
    keys: Dict[str, LocalCliques] = {}
    reused = fresh = 0
    for comp in connected_components(adjacency):
        local_index = {v: i for i, v in enumerate(comp)}
        local_adj = [
            {local_index[w] for w in adjacency[v] if w in local_index}
            for v in comp
        ]
        key = component_key(local_adj)
        local = keys.get(key)
        if local is None and reuse:
            local = reuse.get(key)
        if local is not None:
            reused += 1
        else:
            local = tuple(
                tuple(c) for c in _greedy_partition(local_adj)
            )
            fresh += 1
        keys[key] = local
        cliques += [[comp[i] for i in clique] for clique in local]
    cliques.sort(key=lambda clique: clique[0])
    return cliques, keys, reused, fresh


def clique_partition(adjacency: Sequence[Set[int]]) -> List[List[int]]:
    """Partition vertices into cliques of the compatibility graph.

    *adjacency* is a list of neighbour sets (undirected, no self-loops).
    Returns a list of cliques, each a sorted list of vertex indices; every
    vertex appears in exactly one clique (isolated vertices form singleton
    cliques).
    """
    cliques, _, _, _ = partition_components(adjacency)
    return cliques


def verify_cliques(adjacency: Sequence[Set[int]],
                   cliques: Sequence[Sequence[int]]) -> None:
    """Assert the partition is a set of valid, disjoint, covering cliques."""
    seen: Set[int] = set()
    for clique in cliques:
        for i, a in enumerate(clique):
            if a in seen:
                raise AssertionError(f"vertex {a} in two cliques")
            seen.add(a)
            for b in clique[i + 1 :]:
                if b not in adjacency[a]:
                    raise AssertionError(
                        f"vertices {a} and {b} share a clique but are not"
                        " compatible"
                    )
    if seen != set(range(len(adjacency))):
        raise AssertionError("clique partition does not cover all vertices")
