"""The resource-sharing compatibility matrix (paper §4.1.2, Fig. 5).

``A[i][j] = 1`` iff nodes *i* and *j* can share a circuit — they never
operate at the same time and perform compatible tasks.  The paper's rules:

1. nodes in the same RTL statement cannot be shared (they compute
   concurrently) — we strengthen this to *the same operation instance*,
   since every statement of an action evaluates in the same cycle;
2. nodes performing different tasks cannot be shared; a node that is a
   subset of another (an add is a subset of a subtract) can;
3. nodes belonging to operations in the same field (or to options of the
   same non-terminal parameter) are never active together, so they can
   share;
4. nodes in different fields operate in parallel and cannot share — unless
   the constraints prove the two operations never co-occur, in which case
   more sharing becomes available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Sequence, Set, Tuple

from ..isdl import ast
from .nodes import HwNode

#: unit-class pairs where the first is a subset of the second (sharable
#: one-way); the canonical class of the merged unit is the superset class.
SUBSET_CLASSES: Dict[Tuple[str, str], str] = {
    ("comparator", "adder"): "adder",  # compare = subtract + flag pick-off
}


def classes_compatible(class_a: str, class_b: str) -> bool:
    """Rule 2: same task, or one a subset of the other."""
    if class_a == class_b:
        return True
    return (class_a, class_b) in SUBSET_CLASSES or (
        class_b,
        class_a,
    ) in SUBSET_CLASSES


def merged_class(class_a: str, class_b: str) -> str:
    """The unit class implementing both *class_a* and *class_b*."""
    if class_a == class_b:
        return class_a
    if (class_a, class_b) in SUBSET_CLASSES:
        return SUBSET_CLASSES[(class_a, class_b)]
    if (class_b, class_a) in SUBSET_CLASSES:
        return SUBSET_CLASSES[(class_b, class_a)]
    raise ValueError(f"classes {class_a!r} and {class_b!r} are incompatible")


class SharingAnalysis:
    """Builds the compatibility matrix for a description's nodes."""

    def __init__(self, desc: ast.Description, nodes: Sequence[HwNode],
                 use_constraints: bool = True):
        self.desc = desc
        self.nodes = list(nodes)
        self.use_constraints = use_constraints
        self._exclusion_cache: Dict[Tuple, bool] = {}

    # ------------------------------------------------------------------
    # Mutual exclusion of owners (rules 1, 3, 4)
    # ------------------------------------------------------------------

    def owners_exclusive(self, owner_a: Tuple, owner_b: Tuple) -> bool:
        """True iff the two owner contexts are never active together."""
        key = (owner_a, owner_b)
        cached = self._exclusion_cache.get(key)
        if cached is not None:
            return cached
        result = self._owners_exclusive(owner_a, owner_b)
        self._exclusion_cache[key] = result
        self._exclusion_cache[(owner_b, owner_a)] = result
        return result

    def _owners_exclusive(self, owner_a, owner_b) -> bool:
        field_a, op_a = owner_a[0], owner_a[1]
        field_b, op_b = owner_b[0], owner_b[1]
        if field_a == field_b:
            if op_a != op_b:
                return True  # rule 3: same field, different operations
            # Same operation: only different options of the same NT
            # parameter are exclusive (rule 3's non-terminal clause).
            if len(owner_a) == 4 and len(owner_b) == 4:
                same_param = owner_a[2] == owner_b[2]
                diff_option = owner_a[3] != owner_b[3]
                return same_param and diff_option
            return False  # rule 1: concurrent within one operation
        # Rule 4: different fields — parallel unless constraints forbid.
        if not self.use_constraints:
            return False
        selected = {field_a: op_a, field_b: op_b}
        return not self.desc.instruction_valid(selected)

    # ------------------------------------------------------------------
    # The matrix
    # ------------------------------------------------------------------

    def compatible(self, node_a: HwNode, node_b: HwNode) -> bool:
        """One entry of the matrix A (True = the nodes may share)."""
        if node_a.node_id == node_b.node_id:
            return False
        if not classes_compatible(node_a.unit_class, node_b.unit_class):
            return False  # rule 2
        return self.owners_exclusive(
            node_a.node_id.owner, node_b.node_id.owner
        )

    def matrix(self) -> List[List[int]]:
        """The full n×n 0/1 matrix (for reports and tests)."""
        n = len(self.nodes)
        result = [[0] * n for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                if self.compatible(self.nodes[i], self.nodes[j]):
                    result[i][j] = result[j][i] = 1
        return result

    def adjacency(self) -> List[Set[int]]:
        """Adjacency sets of the compatibility graph (for the clique pass)."""
        n = len(self.nodes)
        adj: List[Set[int]] = [set() for _ in range(n)]
        for i in range(n):
            node_i = self.nodes[i]
            for j in range(i + 1, n):
                if self.compatible(node_i, self.nodes[j]):
                    adj[i].add(j)
                    adj[j].add(i)
        return adj


@dataclass
class SharingRecord:
    """What one synthesis run's sharing pass learned, for its children.

    Stored on :class:`repro.hgen.synthesize.HardwareModel`; the next
    candidate derived from this description copies matrix entries between
    nodes that also exist here, and reuses per-component clique
    partitions by structural key (:func:`repro.hgen.cliques.component_key`).
    """

    nodes: Tuple[HwNode, ...]
    adjacency: Tuple[FrozenSet[int], ...]
    partitions: Mapping[str, Tuple[Tuple[int, ...], ...]]


def adjacency_incremental(
    analysis: SharingAnalysis,
    parent: SharingRecord,
    constraints_unchanged: bool,
) -> Tuple[List[Set[int]], int, int]:
    """Build the adjacency sets, copying entries from a parent's matrix.

    A matrix entry between two nodes is a function of the node pair alone
    (identity, unit classes, owner tuples) except for the cross-field
    case, which consults the description's constraints.  So for node
    pairs present in the parent (``HwNode`` equality — same identity,
    class, width, statement key), the parent's entry is copied verbatim;
    cross-field pairs additionally require the constraint section to be
    unchanged.  Everything else is recomputed.  Returns
    ``(adjacency, entries_copied, entries_computed)``.
    """
    nodes = analysis.nodes
    n = len(nodes)
    parent_index: Dict[HwNode, int] = {
        node: idx for idx, node in enumerate(parent.nodes)
    }
    stable = [parent_index.get(node) for node in nodes]
    padj = parent.adjacency
    adj: List[Set[int]] = [set() for _ in range(n)]
    copied = computed = 0
    if constraints_unchanged:
        # Remap the parent's rows wholesale, then fill in pairs touching
        # a fresh node: O(n + edges) instead of O(n^2) compatible() calls.
        child_of = {pi: i for i, pi in enumerate(stable) if pi is not None}
        for i, pi in enumerate(stable):
            if pi is None:
                continue
            row = adj[i]
            for pj in padj[pi]:
                j = child_of.get(pj)
                if j is not None:
                    row.add(j)
            copied += n - 1
        fresh = [i for i, pi in enumerate(stable) if pi is None]
        for i in fresh:
            node_i = nodes[i]
            for j in range(n):
                if j != i and analysis.compatible(node_i, nodes[j]):
                    adj[i].add(j)
                    adj[j].add(i)
            computed += n - 1
        return adj, copied, computed
    for i in range(n):
        node_i = nodes[i]
        pi = stable[i]
        field_i = node_i.node_id.owner[0]
        for j in range(i + 1, n):
            pj = stable[j]
            if (
                pi is not None
                and pj is not None
                and nodes[j].node_id.owner[0] == field_i
            ):
                # Same-field exclusion is pure owner-tuple logic; safe to
                # copy even under a constraint change.
                if pj in padj[pi]:
                    adj[i].add(j)
                    adj[j].add(i)
                copied += 1
            else:
                if analysis.compatible(node_i, nodes[j]):
                    adj[i].add(j)
                    adj[j].add(i)
                computed += 1
    return adj, copied, computed
