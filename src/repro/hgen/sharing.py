"""The resource-sharing compatibility matrix (paper §4.1.2, Fig. 5).

``A[i][j] = 1`` iff nodes *i* and *j* can share a circuit — they never
operate at the same time and perform compatible tasks.  The paper's rules:

1. nodes in the same RTL statement cannot be shared (they compute
   concurrently) — we strengthen this to *the same operation instance*,
   since every statement of an action evaluates in the same cycle;
2. nodes performing different tasks cannot be shared; a node that is a
   subset of another (an add is a subset of a subtract) can;
3. nodes belonging to operations in the same field (or to options of the
   same non-terminal parameter) are never active together, so they can
   share;
4. nodes in different fields operate in parallel and cannot share — unless
   the constraints prove the two operations never co-occur, in which case
   more sharing becomes available.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from ..isdl import ast
from .nodes import HwNode

#: unit-class pairs where the first is a subset of the second (sharable
#: one-way); the canonical class of the merged unit is the superset class.
SUBSET_CLASSES: Dict[Tuple[str, str], str] = {
    ("comparator", "adder"): "adder",  # compare = subtract + flag pick-off
}


def classes_compatible(class_a: str, class_b: str) -> bool:
    """Rule 2: same task, or one a subset of the other."""
    if class_a == class_b:
        return True
    return (class_a, class_b) in SUBSET_CLASSES or (
        class_b,
        class_a,
    ) in SUBSET_CLASSES


def merged_class(class_a: str, class_b: str) -> str:
    """The unit class implementing both *class_a* and *class_b*."""
    if class_a == class_b:
        return class_a
    if (class_a, class_b) in SUBSET_CLASSES:
        return SUBSET_CLASSES[(class_a, class_b)]
    if (class_b, class_a) in SUBSET_CLASSES:
        return SUBSET_CLASSES[(class_b, class_a)]
    raise ValueError(f"classes {class_a!r} and {class_b!r} are incompatible")


class SharingAnalysis:
    """Builds the compatibility matrix for a description's nodes."""

    def __init__(self, desc: ast.Description, nodes: Sequence[HwNode],
                 use_constraints: bool = True):
        self.desc = desc
        self.nodes = list(nodes)
        self.use_constraints = use_constraints
        self._exclusion_cache: Dict[Tuple, bool] = {}

    # ------------------------------------------------------------------
    # Mutual exclusion of owners (rules 1, 3, 4)
    # ------------------------------------------------------------------

    def owners_exclusive(self, owner_a: Tuple, owner_b: Tuple) -> bool:
        """True iff the two owner contexts are never active together."""
        key = (owner_a, owner_b)
        cached = self._exclusion_cache.get(key)
        if cached is not None:
            return cached
        result = self._owners_exclusive(owner_a, owner_b)
        self._exclusion_cache[key] = result
        self._exclusion_cache[(owner_b, owner_a)] = result
        return result

    def _owners_exclusive(self, owner_a, owner_b) -> bool:
        field_a, op_a = owner_a[0], owner_a[1]
        field_b, op_b = owner_b[0], owner_b[1]
        if field_a == field_b:
            if op_a != op_b:
                return True  # rule 3: same field, different operations
            # Same operation: only different options of the same NT
            # parameter are exclusive (rule 3's non-terminal clause).
            if len(owner_a) == 4 and len(owner_b) == 4:
                same_param = owner_a[2] == owner_b[2]
                diff_option = owner_a[3] != owner_b[3]
                return same_param and diff_option
            return False  # rule 1: concurrent within one operation
        # Rule 4: different fields — parallel unless constraints forbid.
        if not self.use_constraints:
            return False
        selected = {field_a: op_a, field_b: op_b}
        return not self.desc.instruction_valid(selected)

    # ------------------------------------------------------------------
    # The matrix
    # ------------------------------------------------------------------

    def compatible(self, node_a: HwNode, node_b: HwNode) -> bool:
        """One entry of the matrix A (True = the nodes may share)."""
        if node_a.node_id == node_b.node_id:
            return False
        if not classes_compatible(node_a.unit_class, node_b.unit_class):
            return False  # rule 2
        return self.owners_exclusive(
            node_a.node_id.owner, node_b.node_id.owner
        )

    def matrix(self) -> List[List[int]]:
        """The full n×n 0/1 matrix (for reports and tests)."""
        n = len(self.nodes)
        result = [[0] * n for _ in range(n)]
        for i in range(n):
            for j in range(i + 1, n):
                if self.compatible(self.nodes[i], self.nodes[j]):
                    result[i][j] = result[j][i] = 1
        return result

    def adjacency(self) -> List[Set[int]]:
        """Adjacency sets of the compatibility graph (for the clique pass)."""
        n = len(self.nodes)
        adj: List[Set[int]] = [set() for _ in range(n)]
        for i in range(n):
            node_i = self.nodes[i]
            for j in range(i + 1, n):
                if self.compatible(node_i, self.nodes[j]):
                    adj[i].add(j)
                    adj[j].add(i)
        return adj
