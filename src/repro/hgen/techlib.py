"""Technology-library models (substitute for Synopsys + LSI 10K).

The paper maps the generated Verilog through the Synopsys toolkit onto the
LSI Logic 10K gate-array library and reports die size in *grid cells* and
cycle length in nanoseconds.  Without the proprietary flow we provide a
calibrated model: one grid cell ≈ one gate equivalent, with mid-90s
gate-array magnitudes (a 2-input NAND ≈ 1 cell ≈ 1 ns loaded delay).  The
absolute numbers are approximations; what matters for architecture
exploration — and for reproducing Table 2's *shape* — is that the model
ranks datapaths correctly and responds to sharing, width and ISA changes
monotonically.

All ``area(width)`` results are in grid cells; ``delay(width)`` in ns.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict

from ..tech.model import BASELINE as _BASELINE_TECH


def _log2(value: int) -> float:
    return math.log2(max(value, 2))


@dataclass(frozen=True)
class UnitModel:
    """Area/delay model for one functional-unit class."""

    name: str
    area: Callable[[int], float]
    delay: Callable[[int], float]


#: Functional-unit classes (width = datapath width in bits).
UNIT_MODELS: Dict[str, UnitModel] = {
    "adder": UnitModel(
        "adder",
        area=lambda w: 9.0 * w,
        delay=lambda w: 1.8 + 0.9 * _log2(w),  # carry-lookahead
    ),
    "multiplier": UnitModel(
        "multiplier",
        area=lambda w: 2.4 * w * w,
        delay=lambda w: 4.0 + 1.6 * _log2(w),  # array multiplier
    ),
    "divider": UnitModel(
        "divider",
        area=lambda w: 3.2 * w * w,
        delay=lambda w: 8.0 + 3.0 * _log2(w),
    ),
    "logic": UnitModel(
        "logic",
        area=lambda w: 2.2 * w,
        delay=lambda w: 0.7,
    ),
    "shifter": UnitModel(
        "shifter",
        area=lambda w: 3.2 * w * _log2(w),  # barrel shifter
        delay=lambda w: 0.8 + 0.5 * _log2(w),
    ),
    "comparator": UnitModel(
        "comparator",
        area=lambda w: 5.0 * w,
        delay=lambda w: 1.4 + 0.7 * _log2(w),
    ),
    "mux": UnitModel(
        "mux",
        area=lambda w: 2.8 * w,
        delay=lambda w: 0.6,
    ),
    "bus": UnitModel(
        "bus",
        area=lambda w: 1.0 * w,  # drivers
        delay=lambda w: 0.4,
    ),
    # IEEE-754 single-precision macro cells (black-box datapath blocks).
    "fp_adder": UnitModel(
        "fp_adder", area=lambda w: 6200.0, delay=lambda w: 16.0
    ),
    "fp_multiplier": UnitModel(
        "fp_multiplier", area=lambda w: 11800.0, delay=lambda w: 22.0
    ),
    "fp_divider": UnitModel(
        "fp_divider", area=lambda w: 16500.0, delay=lambda w: 38.0
    ),
    "fp_comparator": UnitModel(
        "fp_comparator", area=lambda w: 900.0, delay=lambda w: 6.0
    ),
    "fp_converter": UnitModel(
        "fp_converter", area=lambda w: 2600.0, delay=lambda w: 10.0
    ),
    "wire": UnitModel("wire", area=lambda w: 0.0, delay=lambda w: 0.0),
}

#: Per-operation glue costs (1-bit control gates, inverters, sign tweaks).
GLUE_AREA: Dict[str, Callable[[int], float]] = {
    "&&": lambda w: 1.0,
    "||": lambda w: 1.0,
    "lnot": lambda w: 0.7,
    "not": lambda w: 0.7 * w,
    "sext": lambda w: 0.0,  # wiring
    "zext": lambda w: 0.0,
    "bit": lambda w: 0.0,
    "slice": lambda w: 0.0,
    "fneg": lambda w: 0.7,  # one XOR on the sign bit
    "fabs": lambda w: 0.7,
    "bus": lambda w: 1.0 * w,
}

GLUE_DELAY: Dict[str, float] = {
    "&&": 0.5,
    "||": 0.5,
    "lnot": 0.35,
    "not": 0.35,
    "sext": 0.0,
    "zext": 0.0,
    "bit": 0.0,
    "slice": 0.0,
    "fneg": 0.35,
    "fabs": 0.35,
    "bus": 0.4,
}

# -- sequential elements and memories ---------------------------------------

REGISTER_AREA_PER_BIT = 6.0  # D flip-flop with enable
REGISTER_CLK_TO_Q = 1.2
REGISTER_SETUP = 0.9
CLOCK_MARGIN = 1.0  # skew + uncertainty added to the critical path

MEMORY_AREA_PER_BIT = 1.4  # compiled SRAM macro
MEMORY_AREA_OVERHEAD = 150.0  # sense amps, decoders
MEMORY_EXTRA_PORT_PER_BIT = 0.6


def memory_area(width: int, depth: int, read_ports: int,
                write_ports: int) -> float:
    """Area of a compiled memory macro with the given port counts."""
    bits = width * depth
    extra_ports = max(read_ports + write_ports - 2, 0)
    return (
        MEMORY_AREA_OVERHEAD
        + bits * MEMORY_AREA_PER_BIT
        + bits * MEMORY_EXTRA_PORT_PER_BIT * extra_ports
    )


def memory_read_delay(depth: int) -> float:
    return 2.5 + 0.5 * _log2(max(depth, 2))


def register_file_area(width: int, depth: int, read_ports: int,
                       write_ports: int) -> float:
    """Flip-flop register file with mux read ports and decoded writes."""
    storage = REGISTER_AREA_PER_BIT * width * depth
    # Each read port is a depth-way mux tree per bit.
    read_mux = read_ports * 2.8 * width * max(depth - 1, 1)
    # Each write port needs a depth-way address decoder + enables.
    write_dec = write_ports * (1.0 * depth * _log2(depth) + 0.5 * depth)
    return storage + read_mux + write_dec


def register_file_read_delay(depth: int) -> float:
    return REGISTER_CLK_TO_Q + 0.6 * math.ceil(_log2(max(depth, 2)))


#: 2:1-mux overhead per merged site and input, for shared functional units.
SHARING_MUX_AREA_PER_BIT = 2.8
SHARING_MUX_DELAY_PER_LEVEL = 0.6

#: decode gates
DECODE_GATE_AREA = 1.0
DECODE_DELAY_PER_LEVEL = 0.5

#: routing/wiring overhead applied to the summed cell area
WIRING_OVERHEAD = 1.15

# -- power model -------------------------------------------------------------

# The per-cell power constants now live on the baseline TechModel
# (repro.tech.BASELINE) so the legacy path and the technology-scaled
# path share one code path; these names remain the public aliases.

#: dynamic energy per grid cell per activation, in pJ (V = 3.3 V era)
DYNAMIC_ENERGY_PER_CELL_PJ = _BASELINE_TECH.dynamic_energy_per_cell_pj
#: static (leakage + clock tree) power per grid cell, in µW
STATIC_POWER_PER_CELL_UW = _BASELINE_TECH.static_power_per_cell_uw
