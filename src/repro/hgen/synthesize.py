"""HGEN top level: ISDL description → hardware model + physical estimates.

Runs the full paper §4 pipeline: node extraction, the resource-sharing
matrix, maximal-clique allocation (Fig. 5), datapath construction with
generated decode logic (§4.2), Verilog emission, and the technology-library
estimates that stand in for the Synopsys/LSI-10K flow.  The result carries
everything Table 2 reports: cycle length (ns), lines of Verilog, die size
(grid cells), and synthesis time (s).
"""

from __future__ import annotations

import dataclasses
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..encoding.signature import SignatureTable
from ..isdl import ast, semantics
from ..isdl.fingerprint import FingerprintDelta
from ..tech.model import TechModel
from .area import AreaReport, estimate_area
from .cliques import partition_components, verify_cliques
from .datapath import build_datapath
from .netlist import Netlist
from .nodes import HwNode, NodeId, extract_nodes, extract_nodes_incremental
from .sharing import SharingAnalysis, SharingRecord, adjacency_incremental
from .timing import TimingReport, estimate_timing
from .verilog import count_lines, emit_verilog


@dataclass
class HardwareModel:
    """The output of one HGEN run."""

    desc: ast.Description
    netlist: Netlist
    verilog: str
    nodes: List[HwNode]
    cliques: List[List[int]]
    allocation: Optional[Dict[NodeId, int]]
    area: AreaReport
    timing: TimingReport
    synthesis_seconds: float
    shared: bool
    #: Sharing-pass intermediates kept for incremental child synthesis.
    sharing_record: Optional[SharingRecord] = None
    #: Per-unit reuse counts when this model was built incrementally.
    reuse_counts: Dict[str, int] = field(default_factory=dict)
    #: Technology the metric properties are projected into (None =
    #: the calibrated baseline process, bit-identical to pre-tech runs).
    tech: Optional[TechModel] = None

    # -- Table 2 metrics -----------------------------------------------

    @property
    def _tech(self) -> Optional[TechModel]:
        # getattr: models unpickled from pre-tech cache entries lack
        # the field (dataclass defaults do not apply on unpickle)
        return getattr(self, "tech", None)

    @property
    def cycle_ns(self) -> float:
        tech = self._tech
        if tech is not None:
            return self.timing.cycle_ns * tech.delay_scale
        return self.timing.cycle_ns

    @property
    def verilog_lines(self) -> int:
        return count_lines(self.verilog)

    @property
    def die_size(self) -> float:
        tech = self._tech
        if tech is not None:
            return self.area.total * tech.area_scale
        return self.area.total

    @property
    def core_die_size(self) -> float:
        """Die size excluding the instruction/data memory macros."""
        tech = self._tech
        if tech is not None:
            return self.area.core_total * tech.area_scale
        return self.area.core_total

    @property
    def clock_mhz(self) -> float:
        return 1000.0 / self.cycle_ns

    def with_tech(self, tech: Optional[TechModel]) -> "HardwareModel":
        """A view of this model projected into *tech* — no re-synthesis.

        The stored netlist, area, and timing reports stay the baseline
        ones (cell counts and logic structure are technology
        independent); only the metric properties scale.  Returns
        ``self`` when *tech* is ``None`` or already bound; re-projecting
        a model bound to a *different* technology is refused — project
        from the baseline model instead, so scale factors never stack.
        """
        bound = self._tech
        if tech is None or tech is bound:
            return self
        if bound is not None:
            raise ValueError(
                f"model already projected into {bound.name};"
                f" re-project from the baseline model, not {tech.name}"
            )
        if "tech" not in self.__dict__:  # pre-tech pickled model
            self.tech = None
        return dataclasses.replace(self, tech=tech)

    @property
    def shared_unit_count(self) -> int:
        """Physical functional-unit instances after sharing."""
        return len(
            {
                instance
                for instance, sites in self.netlist.unit_instances().items()
                if sites[0].unit_class not in ("glue", "wire")
            }
        )

    def summary(self) -> str:
        return (
            f"{self.desc.name}: cycle {self.cycle_ns:.1f} ns"
            f" ({self.clock_mhz:.0f} MHz), {self.verilog_lines} lines of"
            f" Verilog, die {self.die_size:,.0f} grid cells,"
            f" synthesis {self.synthesis_seconds:.2f} s"
        )


def synthesize(
    desc: ast.Description,
    share: bool = True,
    use_constraints: bool = True,
    table: Optional[SignatureTable] = None,
    validate: bool = True,
    reuse_from: Optional[Tuple[HardwareModel, FingerprintDelta]] = None,
    tech: Optional[TechModel] = None,
) -> HardwareModel:
    """Run HGEN on a description.

    *share* toggles the resource-sharing pass (the naive scheme of paper
    §4.1.1 when off); *use_constraints* controls whether constraints may
    prove cross-field exclusion (paper rule 4's refinement).

    *tech* projects the metric properties (cycle, die size, clock) into
    a scaled technology; synthesis itself is technology independent, so
    the default ``tech=None`` is bit-identical to earlier releases and a
    built model can be re-projected cheaply via :meth:`with_tech`.

    *reuse_from* is ``(parent_model, delta)`` for incremental synthesis
    off a near-identical parent: per-operation node groups, compatibility
    matrix entries, and per-component clique partitions are carried over
    where the delta proves them unchanged.  The parent model must have
    been built with the same *share*/*use_constraints* flags.  The result
    is equal to a cold build by construction — every reuse predicate is
    "the inputs this unit reads are byte-identical" — and the datapath,
    Verilog, and estimates are always re-derived (they are cheap and
    globally numbered).
    """
    with obs.span("hgen.synthesize", desc=desc.name, share=share):
        if validate:
            semantics.check(desc)
        start = time.perf_counter()
        table = table or SignatureTable(desc)
        parent, delta = reuse_from if reuse_from is not None else (None, None)
        reuse_counts: Dict[str, int] = {}
        with obs.span("hgen.nodes"):
            if parent is not None:
                nodes, ops_reused, ops_rebuilt = extract_nodes_incremental(
                    desc, parent.nodes, delta
                )
                reuse_counts["node_ops_reused"] = ops_reused
                reuse_counts["node_ops_rebuilt"] = ops_rebuilt
            else:
                nodes = extract_nodes(desc)
        allocation: Optional[Dict[NodeId, int]] = None
        cliques: List[List[int]] = [[i] for i in range(len(nodes))]
        record: Optional[SharingRecord] = None
        if share:
            with obs.span("hgen.sharing"):
                analysis = SharingAnalysis(desc, nodes, use_constraints)
                parent_record = (
                    parent.sharing_record if parent is not None else None
                )
                if parent_record is not None:
                    adjacency, copied, computed = adjacency_incremental(
                        analysis,
                        parent_record,
                        not delta.constraints_changed,
                    )
                    reuse_counts["matrix_entries_copied"] = copied
                    reuse_counts["matrix_entries_computed"] = computed
                else:
                    adjacency = analysis.adjacency()
                cliques, partitions, reused_comps, fresh_comps = (
                    partition_components(
                        adjacency,
                        parent_record.partitions if parent_record else None,
                    )
                )
                if parent_record is not None:
                    reuse_counts["components_reused"] = reused_comps
                    reuse_counts["components_partitioned"] = fresh_comps
                verify_cliques(adjacency, cliques)
                record = SharingRecord(
                    nodes=tuple(nodes),
                    adjacency=tuple(frozenset(row) for row in adjacency),
                    partitions=partitions,
                )
            allocation = {}
            for instance, clique in enumerate(cliques):
                for vertex in clique:
                    allocation[nodes[vertex].node_id] = instance
        with obs.span("hgen.datapath"):
            netlist = build_datapath(desc, table, allocation)
        with obs.span("hgen.verilog"):
            verilog = emit_verilog(desc, netlist)
        with obs.span("hgen.estimate"):
            area = estimate_area(desc, netlist)
            timing = estimate_timing(desc, netlist)
        elapsed = time.perf_counter() - start
        obs.add("hgen.syntheses")
    return HardwareModel(
        desc=desc,
        netlist=netlist,
        verilog=verilog,
        nodes=nodes,
        cliques=cliques,
        allocation=allocation,
        area=area,
        timing=timing,
        synthesis_seconds=elapsed,
        shared=share,
        sharing_record=record,
        reuse_counts=reuse_counts,
        tech=tech,
    )


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point: ``hgen <description.isdl> [out.v]``."""
    from ..isdl import load_file

    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: hgen <description.isdl> [out.v]")
        return 2
    desc = load_file(argv[0])
    model = synthesize(desc)
    print(model.summary())
    if len(argv) > 1:
        with open(argv[1], "w", encoding="utf-8") as handle:
            handle.write(model.verilog)
        print(f"wrote {model.verilog_lines} lines to {argv[1]}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
