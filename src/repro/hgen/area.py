"""Die-size estimation over the netlist (Table 2, "Die Size (grid cells)").

Functional-unit instances are charged once per sharing allocation (sites
merged into one instance pay a single unit plus input multiplexers), storage
is charged through the register/memory models, decode logic per literal, and
the whole sum gets the wiring-overhead factor of the technology library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict

from ..isdl import ast
from . import techlib
from .netlist import Concat, Const, Decode, Netlist, PriorityMux, RegRead, Sext, Unit


@dataclass
class AreaReport:
    """Breakdown of the estimated die size in grid cells."""

    functional_units: float = 0.0
    sharing_muxes: float = 0.0
    storage: float = 0.0  # registers and register files
    memories: float = 0.0  # instruction/data memory macros
    decode: float = 0.0
    steering: float = 0.0  # priority muxes, glue logic
    pipeline_registers: float = 0.0
    by_unit_class: Dict[str, float] = field(default_factory=dict)

    @property
    def logic_total(self) -> float:
        return (
            self.functional_units
            + self.sharing_muxes
            + self.decode
            + self.steering
            + self.pipeline_registers
        )

    @property
    def core_total(self) -> float:
        """Grid cells excluding memory macros, with wiring overhead."""
        return (self.logic_total + self.storage) * techlib.WIRING_OVERHEAD

    @property
    def total(self) -> float:
        """Total grid cells including memory macros and wiring overhead."""
        return (
            (self.logic_total + self.storage + self.memories)
            * techlib.WIRING_OVERHEAD
        )


def estimate_area(desc: ast.Description, netlist: Netlist) -> AreaReport:
    """Estimate the die size of a synthesized netlist."""
    report = AreaReport()
    _units(netlist, report)
    _storage(desc, netlist, report)
    _decode_and_steering(netlist, report)
    _pipeline_registers(desc, netlist, report)
    return report


def _units(netlist: Netlist, report: AreaReport) -> None:
    for sites in netlist.unit_instances().values():
        first = sites[0]
        width = max(site.width for site in sites)
        if first.unit_class in ("glue", "wire"):
            area_fn = techlib.GLUE_AREA.get(first.op)
            area = area_fn(width) if area_fn else 1.0
            report.steering += area * len(sites)
            continue
        model = techlib.UNIT_MODELS.get(first.unit_class)
        if model is None:
            # Storage-port pseudo classes never appear as Unit cells.
            continue
        unit_area = model.area(width)
        report.functional_units += unit_area
        report.by_unit_class[first.unit_class] = (
            report.by_unit_class.get(first.unit_class, 0.0) + unit_area
        )
        if len(sites) > 1:
            arity = max(len(site.args) for site in sites)
            report.sharing_muxes += (
                (len(sites) - 1)
                * arity
                * techlib.SHARING_MUX_AREA_PER_BIT
                * width
            )


def _storage(desc: ast.Description, netlist: Netlist,
             report: AreaReport) -> None:
    for storage in desc.storages.values():
        info = netlist.storages.get(storage.name)
        read_ports = info.read_ports if info else 1
        write_ports = info.write_ports if info else 1
        if storage.kind in (
            ast.StorageKind.DATA_MEMORY,
            ast.StorageKind.INSTRUCTION_MEMORY,
            ast.StorageKind.MEMORY_MAPPED_IO,
        ):
            report.memories += techlib.memory_area(
                storage.width, storage.depth, read_ports, write_ports
            )
        elif storage.addressed:  # register files, stacks
            report.storage += techlib.register_file_area(
                storage.width, storage.depth, read_ports, write_ports
            )
        else:
            report.storage += techlib.REGISTER_AREA_PER_BIT * storage.width


def _decode_and_steering(netlist: Netlist, report: AreaReport) -> None:
    for cell in netlist.cells:
        if isinstance(cell, Decode):
            inverters = sum(1 for _, value in cell.literals if value == 0)
            ands = max(len(cell.literals) - 1, 0)
            if cell.base is not None:
                ands += 1
            report.decode += (inverters * 0.7 + ands) * techlib.DECODE_GATE_AREA
        elif isinstance(cell, PriorityMux):
            width = cell.out.width if cell.out else 1
            report.steering += (
                len(cell.cases) * techlib.SHARING_MUX_AREA_PER_BIT * width
            )
        elif isinstance(cell, (Concat, Const, Sext)):
            pass  # wiring
    # Write-port data/index steering: merged write sites share one port
    # through (sites - 1) muxes.
    for storage_ports in netlist.write_port_instances().values():
        for site_count in storage_ports.values():
            if site_count > 1:
                report.steering += (
                    (site_count - 1) * techlib.SHARING_MUX_AREA_PER_BIT * 16
                )


def _pipeline_registers(desc: ast.Description, netlist: Netlist,
                        report: AreaReport) -> None:
    """Latency/pipeline staging registers implied by the timing model.

    A write with delay *d* needs *d* stages of (value + enable [+ index])
    registers; a multi-stage datapath (Cycle + Stall > 1) needs inter-stage
    registers sized by the unit width.
    """
    for write in netlist.writes:
        if write.delay > 0:
            width = write.value.width + 1
            if write.index is not None:
                width += write.index.width
            report.pipeline_registers += (
                write.delay * width * techlib.REGISTER_AREA_PER_BIT
            )
    seen_instances = set()
    for cell in netlist.cells:
        if isinstance(cell, Unit) and cell.stages > 1:
            if cell.instance_id in seen_instances:
                continue
            seen_instances.add(cell.instance_id)
            report.pipeline_registers += (
                (cell.stages - 1)
                * cell.width
                * techlib.REGISTER_AREA_PER_BIT
            )
