"""RTL decomposition into hardware nodes (paper §4.1.2, step 1).

"First we break up the RTL expressions for all operation definitions into a
number of nodes, each of which can be mapped to a circuit."  A node is one
operator site: an adder, a shifter, a comparator, a mux (from ``?:``), a
floating-point macro, a storage read/write port, or a plain move (the bus of
the paper's §4.1.1 example).

Non-terminal actions are inlined into every operation that uses the
non-terminal: an operation with a ``SRC`` parameter owns one copy of the
nodes of *each* ``SRC`` option (the options are mutually exclusive among
themselves, so the sharing pass merges them again).  Node identities are
stable paths into the RTL tree; :mod:`repro.hgen.datapath` walks the same
paths when it instantiates cells, which is what lets a sharing allocation
map onto the executable netlist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..isdl import ast, rtl
from ..isdl.intrinsics import INTRINSICS

#: Owner of a node: (field, op) optionally extended by (param, option_label).
Owner = Tuple


@dataclass(frozen=True)
class NodeId:
    """A stable identity for one operator site in the description."""

    owner: Owner
    path: Tuple  # indices into statements/expressions

    def __str__(self) -> str:
        owner = ".".join(str(part) for part in self.owner)
        path = "/".join(str(part) for part in self.path)
        return f"{owner}:{path}"


@dataclass(frozen=True)
class HwNode:
    """One shareable hardware node."""

    node_id: NodeId
    unit_class: str
    width: int
    stmt_key: Tuple  # identifies the RTL statement the node belongs to
    is_macro: bool = False


_BINOP_CLASS = {
    "+": "adder",
    "-": "adder",
    "*": "multiplier",
    "/": "divider",
    "%": "divider",
    "&": "logic",
    "|": "logic",
    "^": "logic",
    "<<": "shifter",
    ">>": "shifter",
    "==": "comparator",
    "!=": "comparator",
    "<": "comparator",
    "<=": "comparator",
    ">": "comparator",
    ">=": "comparator",
    "&&": "logic",
    "||": "logic",
}

_UNOP_CLASS = {"~": "logic", "-": "adder", "!": "logic"}


class NodeExtractor:
    """Walks a description and yields its hardware nodes."""

    def __init__(self, desc: ast.Description):
        self.desc = desc

    # ------------------------------------------------------------------
    # Width inference
    # ------------------------------------------------------------------

    def location_width(self, name: str, hi, lo) -> int:
        if hi is not None:
            return hi - (lo if lo is not None else hi) + 1
        if name in self.desc.aliases:
            alias = self.desc.aliases[name]
            storage = self.desc.storages[alias.storage]
            if alias.hi is not None:
                alias_lo = alias.lo if alias.lo is not None else alias.hi
                return alias.hi - alias_lo + 1
            if alias.index is not None and not storage.addressed:
                return 1  # bit alias of a scalar storage
            return storage.width
        return self.desc.storages[name].width

    def param_width(self, param: ast.Param) -> int:
        ptype = self.desc.param_type(param)
        if isinstance(ptype, ast.TokenDef):
            return ptype.value_width
        # An NT's *value* width is the width its options' actions produce.
        widths = []
        for option in ptype.options:
            env = {p.name: self.param_width(p) for p in option.params}
            for stmt in rtl.walk_stmts(option.action):
                if isinstance(stmt, rtl.Assign) and isinstance(
                    stmt.dest, rtl.NtLV
                ):
                    widths.append(self.expr_width(stmt.expr, env))
        return max(widths, default=1)

    def expr_width(self, expr: rtl.Expr, env: Dict[str, int]) -> int:
        if isinstance(expr, rtl.IntLit):
            return max(expr.value.bit_length(), 1)
        if isinstance(expr, rtl.ParamRef):
            return env.get(expr.name, 1)
        if isinstance(expr, rtl.NtValue):
            return env.get("$$", 1)
        if isinstance(expr, rtl.StorageRead):
            return self.location_width(expr.storage, expr.hi, expr.lo)
        if isinstance(expr, rtl.BinOp):
            if expr.op in ("==", "!=", "<", "<=", ">", ">=", "&&", "||"):
                return 1
            left = self.expr_width(expr.left, env)
            if expr.op in ("<<", ">>"):
                return left
            return max(left, self.expr_width(expr.right, env))
        if isinstance(expr, rtl.UnOp):
            if expr.op == "!":
                return 1
            return self.expr_width(expr.operand, env)
        if isinstance(expr, rtl.Cond):
            return max(
                self.expr_width(expr.then, env),
                self.expr_width(expr.other, env),
            )
        if isinstance(expr, rtl.Call):
            return self._call_width(expr, env)
        return 1

    def _call_width(self, expr: rtl.Call, env) -> int:
        name = expr.func
        if name in ("carry", "carryc", "borrow", "overflow", "bit"):
            return 1
        if name in ("sext", "zext", "itof", "ftoi"):
            const = expr.args[1]
            if isinstance(const, rtl.IntLit):
                return const.value
            return self.expr_width(expr.args[0], env)
        if name == "slice":
            hi, lo = expr.args[1], expr.args[2]
            if isinstance(hi, rtl.IntLit) and isinstance(lo, rtl.IntLit):
                return hi.value - lo.value + 1
            return self.expr_width(expr.args[0], env)
        if name in ("fadd", "fsub", "fmul", "fdiv", "fneg", "fabs"):
            return 32
        if name == "fcmp":
            return 2
        return max(
            (self.expr_width(a, env) for a in expr.args), default=1
        )

    # ------------------------------------------------------------------
    # Node extraction
    # ------------------------------------------------------------------

    def extract(self) -> List[HwNode]:
        """All hardware nodes of the description."""
        nodes: List[HwNode] = []
        for fld, op in self.desc.operations():
            nodes.extend(self.extract_operation(fld, op))
        return nodes

    def extract_operation(
        self, fld: ast.Field, op: ast.Operation
    ) -> List[HwNode]:
        """The nodes owned by one operation (inlined NT options included).

        Depends only on the operation's definition plus the widths of the
        tokens, non-terminals, storages, and aliases it references — the
        dependency set the incremental path keys reuse on.
        """
        owner = (fld.name, op.name)
        env = {p.name: self.param_width(p) for p in op.params}
        nodes: List[HwNode] = list(self._from_blocks(owner, op, env))
        for param in op.params:
            ptype = self.desc.param_type(param)
            if isinstance(ptype, ast.NonTerminal):
                for option in ptype.options:
                    sub_owner = owner + (param.name, option.label)
                    sub_env = {
                        p.name: self.param_width(p)
                        for p in option.params
                    }
                    sub_env["$$"] = self.param_width(param)
                    nodes.extend(
                        self._from_blocks(sub_owner, option, sub_env)
                    )
        return nodes

    def _from_blocks(self, owner, item, env) -> Iterator[HwNode]:
        yield from self._walk_stmts(
            owner, ("action",), item.action, env
        )
        yield from self._walk_stmts(
            owner, ("side_effect",), item.side_effect, env
        )

    def _walk_stmts(self, owner, path, stmts, env) -> Iterator[HwNode]:
        for i, stmt in enumerate(stmts):
            stmt_path = path + (i,)
            stmt_key = owner + stmt_path
            if isinstance(stmt, rtl.Assign):
                yield from self._walk_expr(
                    owner, stmt_path + ("rhs",), stmt.expr, env, stmt_key
                )
                yield from self._dest_nodes(
                    owner, stmt_path, stmt, env, stmt_key
                )
            elif isinstance(stmt, rtl.If):
                yield from self._walk_expr(
                    owner, stmt_path + ("cond",), stmt.cond, env, stmt_key
                )
                yield from self._walk_stmts(
                    owner, stmt_path + ("then",), stmt.then, env
                )
                yield from self._walk_stmts(
                    owner, stmt_path + ("else",), stmt.orelse, env
                )

    def _dest_nodes(self, owner, stmt_path, stmt, env, stmt_key):
        dest = stmt.dest
        if isinstance(dest, rtl.StorageLV):
            storage = self.desc.storage_or_alias(dest.storage)
            if storage.addressed:
                yield HwNode(
                    NodeId(owner, stmt_path + ("wport",)),
                    f"write_port:{storage.name}",
                    storage.width,
                    stmt_key,
                )
                if dest.index is not None:
                    yield from self._walk_expr(
                        owner, stmt_path + ("index",), dest.index, env,
                        stmt_key,
                    )
            if self._is_move(stmt.expr):
                # A plain move routes through a data bus (paper §4.1.1:
                # "a move operation that is implemented using a bus").
                yield HwNode(
                    NodeId(owner, stmt_path + ("bus",)),
                    "bus",
                    self.location_width(dest.storage, dest.hi, dest.lo),
                    stmt_key,
                )
        elif isinstance(dest, rtl.ParamLV):
            # Writing through a transparent NT: each option contributes its
            # own write port / bus inside its sub-owner; the op-level node
            # is the routing bus that feeds the NT.
            yield HwNode(
                NodeId(owner, stmt_path + ("bus",)),
                "bus",
                env.get(dest.name, 1),
                stmt_key,
            )

    @staticmethod
    def _is_move(expr: rtl.Expr) -> bool:
        return isinstance(expr, (rtl.StorageRead, rtl.ParamRef, rtl.IntLit))

    def _walk_expr(self, owner, path, expr, env, stmt_key) -> Iterator[HwNode]:
        if isinstance(expr, rtl.BinOp):
            yield HwNode(
                NodeId(owner, path),
                _BINOP_CLASS[expr.op],
                self.expr_width(expr, env)
                if expr.op not in ("==", "!=", "<", "<=", ">", ">=")
                else max(
                    self.expr_width(expr.left, env),
                    self.expr_width(expr.right, env),
                ),
                stmt_key,
            )
            yield from self._walk_expr(owner, path + (0,), expr.left, env, stmt_key)
            yield from self._walk_expr(owner, path + (1,), expr.right, env, stmt_key)
        elif isinstance(expr, rtl.UnOp):
            if expr.op in ("-",):
                yield HwNode(
                    NodeId(owner, path),
                    _UNOP_CLASS[expr.op],
                    self.expr_width(expr, env),
                    stmt_key,
                )
            yield from self._walk_expr(owner, path + (0,), expr.operand, env, stmt_key)
        elif isinstance(expr, rtl.Cond):
            yield HwNode(
                NodeId(owner, path),
                "mux",
                self.expr_width(expr, env),
                stmt_key,
            )
            yield from self._walk_expr(owner, path + (0,), expr.cond, env, stmt_key)
            yield from self._walk_expr(owner, path + (1,), expr.then, env, stmt_key)
            yield from self._walk_expr(owner, path + (2,), expr.other, env, stmt_key)
        elif isinstance(expr, rtl.Call):
            meta = INTRINSICS[expr.func]
            if meta.unit_class != "wire":
                yield HwNode(
                    NodeId(owner, path),
                    meta.unit_class,
                    self._call_width(expr, env),
                    stmt_key,
                    is_macro=meta.is_macro,
                )
            for i, arg in enumerate(expr.args):
                yield from self._walk_expr(owner, path + (i,), arg, env, stmt_key)
        elif isinstance(expr, rtl.StorageRead):
            storage_name = expr.storage
            if storage_name in self.desc.storages:
                storage = self.desc.storages[storage_name]
                if storage.addressed:
                    yield HwNode(
                        NodeId(owner, path + ("rport",)),
                        f"read_port:{storage.name}",
                        storage.width,
                        stmt_key,
                    )
            if expr.index is not None:
                yield from self._walk_expr(
                    owner, path + ("index",), expr.index, env, stmt_key
                )


def extract_nodes(desc: ast.Description) -> List[HwNode]:
    """Convenience wrapper over :class:`NodeExtractor`."""
    return NodeExtractor(desc).extract()


def extract_nodes_incremental(
    desc: ast.Description,
    parent_nodes: List[HwNode],
    delta,
) -> Tuple[List[HwNode], int, int]:
    """Extract nodes, carrying over per-operation groups from a parent.

    *delta* is the :class:`repro.isdl.fingerprint.FingerprintDelta` from
    the parent description to *desc*.  An operation's nodes are reused
    when its definition digest is unchanged and the width environment
    (tokens, non-terminals, storages, aliases) is identical — extraction
    is deterministic, so the reused group equals what a cold extraction
    would produce.  Returns ``(nodes, ops_reused, ops_rebuilt)``.
    """
    env_ok = delta.global_env_unchanged and delta.storage_env_unchanged
    if not env_ok:
        return extract_nodes(desc), 0, sum(1 for _ in desc.operations())
    by_op: Dict[Tuple[str, str], List[HwNode]] = {}
    for node in parent_nodes:
        by_op.setdefault(node.node_id.owner[:2], []).append(node)
    extractor = NodeExtractor(desc)
    nodes: List[HwNode] = []
    reused = rebuilt = 0
    for fld, op in desc.operations():
        key = (fld.name, op.name)
        if delta.op_unchanged(*key):
            # Unchanged op absent from by_op simply owned no nodes.
            nodes.extend(by_op.get(key, ()))
            reused += 1
        else:
            nodes.extend(extractor.extract_operation(fld, op))
            rebuilt += 1
    return nodes, reused, rebuilt
