"""State monitors (paper Fig. 2, part 3).

Monitors are "a set of hooks that can detect whenever any user-defined
portion of the state changes, and print a diagnostic message to that effect".
A :class:`MonitorSet` holds watches over a storage (optionally one element of
an addressed storage) and invokes their callbacks on every value change.
The default callback formats the paper-style diagnostic line; custom
callbacks let the scheduler implement watch-triggered breakpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: callback(storage, index, old, new)
MonitorCallback = Callable[[str, Optional[int], int, int], None]


@dataclass
class Monitor:
    """One watch: *index* None means "any element of the storage"."""

    storage: str
    index: Optional[int]
    callback: MonitorCallback
    label: str = ""
    hits: int = 0
    enabled: bool = True


class MonitorSet:
    """All monitors attached to one simulator's state."""

    def __init__(self) -> None:
        self._monitors: Dict[str, List[Monitor]] = {}
        self.messages: List[str] = []
        #: total callback invocations across all monitors (feeds the
        #: ``sim.monitor_hits`` observability counter)
        self.hits_total: int = 0

    def watch(
        self,
        storage: str,
        index: Optional[int] = None,
        callback: Optional[MonitorCallback] = None,
        label: str = "",
    ) -> Monitor:
        """Attach a monitor; the default callback records a message."""
        if callback is None:
            callback = self._default_callback
        monitor = Monitor(storage, index, callback, label)
        self._monitors.setdefault(storage, []).append(monitor)
        return monitor

    def watched_storages(self) -> List[str]:
        """Names of storages with at least one attached monitor.

        Backends that trade per-write hooks for speed (the block-compiled
        simulator) use this set to decide which code must take the slow,
        monitored path.
        """
        return [name for name, lst in self._monitors.items() if lst]

    def unwatch(self, monitor: Monitor) -> None:
        watchers = self._monitors.get(monitor.storage, [])
        if monitor in watchers:
            watchers.remove(monitor)

    def clear(self) -> None:
        self._monitors.clear()
        self.messages.clear()
        self.hits_total = 0

    def notify(
        self, storage: str, index: Optional[int], old: int, new: int
    ) -> None:
        """Called by :class:`~repro.gensim.state.State` on every change."""
        for monitor in self._monitors.get(storage, ()):
            if not monitor.enabled:
                continue
            if monitor.index is not None and monitor.index != index:
                continue
            monitor.hits += 1
            self.hits_total += 1
            monitor.callback(storage, index, old, new)

    def _default_callback(
        self, storage: str, index: Optional[int], old: int, new: int
    ) -> None:
        location = storage if index is None else f"{storage}[{index}]"
        self.messages.append(
            f"monitor: {location} changed 0x{old:x} -> 0x{new:x}"
        )
