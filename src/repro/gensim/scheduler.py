"""The XSIM scheduler (paper Fig. 2, part 2).

"The scheduler is responsible for sequencing the instructions during
execution, managing breakpoints, dumping the execution traces to a file or
processing program, and dispatching attached commands back to the user
interface for processing."

Cycle model
-----------
``cycle`` counts completed cycles.  One :meth:`step`:

1. commits every pending (delayed) write that has come due — so results with
   latency 1 are visible to this instruction;
2. charges the statically computed stall cycles for the fetch address and
   commits anything that came due during the stall;
3. executes the instruction at the PC through the processing core (all reads
   see pre-cycle state; writes accumulate);
4. schedules the produced writes: a write with latency *L* comes due
   ``L - 1`` cycles after this instruction retires (action writes commit
   before side-effect writes of the same cycle);
5. advances the cycle counter by the instruction's cycle cost and sets the
   default next PC (``address + size``); a committed PC write from a branch
   overrides it on the next step.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from ..errors import SimulationError
from ..isdl import ast
from .core import PendingWrite, ProcessingCore
from .disassembler import DecodedInstruction
from .state import State
from .stats import SimulationStats
from .trace import TraceRecord, TraceSink


@dataclass
class PreparedInstruction:
    """Per-address execution data resolved once at load time."""

    decoded: DecodedInstruction
    selections: List  # [(Operation, operands)] for the processing core
    size: int
    ops_meta: List  # [(field, op_name, occupies_unit)] for statistics


@dataclass
class LoadedProgram:
    """The result of off-line disassembly at load time (paper §3.1)."""

    words: List[int]
    decoded: List[Optional[DecodedInstruction]]
    stalls: List[int]
    texts: List[str]
    origin: int = 0
    prepared: List[Optional[PreparedInstruction]] = field(
        default_factory=list
    )

    def __len__(self) -> int:
        return len(self.words)


@dataclass
class Breakpoint:
    """A breakpoint with optional attached commands (paper §3.1)."""

    address: int
    enabled: bool = True
    hits: int = 0
    commands: List[str] = field(default_factory=list)


class Scheduler:
    """Sequences decoded instructions against a :class:`State`."""

    def __init__(
        self,
        desc: ast.Description,
        state: State,
        core: ProcessingCore,
    ):
        self.desc = desc
        self.state = state
        self.core = core
        self.program: Optional[LoadedProgram] = None
        self.cycle = 0
        self.stats = SimulationStats()
        self.breakpoints: Dict[int, Breakpoint] = {}
        self.trace: Optional[TraceSink] = None
        #: called with each attached-command string when a breakpoint hits
        self.command_dispatcher: Optional[Callable[[str], None]] = None
        self._pending: List = []  # heap of (due, seq, PendingWrite)
        self._seq = 0
        self._halt_flag = desc.attributes.get("halt_flag")

    # ------------------------------------------------------------------
    # Program management
    # ------------------------------------------------------------------

    def attach_program(self, program: LoadedProgram) -> None:
        """Install a loaded program and copy it into instruction memory."""
        self.program = program
        if not program.prepared:
            program.prepared = [
                self._prepare(decoded) if decoded is not None else None
                for decoded in program.decoded
            ]
        im = self.desc.instruction_memory()
        for offset, word in enumerate(program.words):
            address = program.origin + offset
            if address >= (im.depth or 0):
                raise SimulationError(
                    f"program does not fit: address {address} exceeds"
                    f" instruction memory depth {im.depth}"
                )
            self.state.write(im.name, word, index=address)
        self.state.pc = program.origin

    def reset(self) -> None:
        """Reset execution state (cycle counter, pending writes, stats)."""
        self.cycle = 0
        self.stats = SimulationStats()
        self._pending = []
        self._seq = 0
        if self.program is not None:
            self.state.pc = self.program.origin

    def _prepare(self, decoded: DecodedInstruction) -> PreparedInstruction:
        selections = []
        ops_meta = []
        size = 1
        for dop in decoded.operations:
            op = self.desc.operation(dop.field, dop.op_name)
            selections.append((op, dop.operands))
            ops_meta.append((dop.field, dop.op_name, bool(op.action)))
            size = max(size, op.costs.size)
        return PreparedInstruction(decoded, selections, size, ops_meta)

    # ------------------------------------------------------------------
    # Halt / status
    # ------------------------------------------------------------------

    @property
    def halted(self) -> bool:
        if self._halt_flag is None:
            return False
        return self.state.read(self._halt_flag) != 0

    # ------------------------------------------------------------------
    # Write-back queue
    # ------------------------------------------------------------------

    def _schedule_writes(self, writes: List[PendingWrite], due: int) -> None:
        for write in writes:
            heapq.heappush(
                self._pending, (due + write.delay, self._seq, write)
            )
            self._seq += 1

    def _commit_due(self) -> None:
        while self._pending and self._pending[0][0] <= self.cycle:
            _, _, write = heapq.heappop(self._pending)
            self.state.write(
                write.storage, write.value, write.index, write.hi, write.lo
            )

    def drain(self) -> None:
        """Commit every outstanding write regardless of due time.

        Used when a run ends so final state comparisons (and tests) see the
        architected result of the last instructions.
        """
        while self._pending:
            _, _, write = heapq.heappop(self._pending)
            self.state.write(
                write.storage, write.value, write.index, write.hi, write.lo
            )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Execute one instruction; False if already halted."""
        if self.program is None:
            raise SimulationError("no program loaded")
        self._commit_due()
        if self.halted:
            return False
        address = self.state.pc
        self._charge_stalls(address)
        prepared = self._fetch(address)
        result = self.core.execute(self.state, prepared.selections)
        self._record(address, prepared, result)
        retire = self.cycle + result.cycles
        self._schedule_writes(result.action_writes, retire)
        self._schedule_writes(result.side_effect_writes, retire)
        self.cycle = retire
        self.state.pc = address + prepared.size
        return True

    def _charge_stalls(self, address: int) -> None:
        program = self.program
        offset = address - program.origin
        if 0 <= offset < len(program.stalls):
            stall = program.stalls[offset]
            if stall:
                self.cycle += stall
                self.stats.stall_cycles += stall
                self._commit_due()

    def _fetch(self, address: int) -> PreparedInstruction:
        program = self.program
        offset = address - program.origin
        if not 0 <= offset < len(program.prepared):
            raise SimulationError(
                f"PC 0x{address:x} outside the loaded program"
            )
        prepared = program.prepared[offset]
        if prepared is None:
            raise SimulationError(
                f"executed undefined instruction memory at 0x{address:x}"
            )
        return prepared

    def _record(self, address, prepared, result) -> None:
        stats = self.stats
        stats.instructions += 1
        op_counts = stats.op_counts
        field_busy = stats.field_busy
        for field_name, op_name, busy in prepared.ops_meta:
            op_counts[(field_name, op_name)] += 1
            if busy:
                field_busy[field_name] += 1
        for dop in prepared.decoded.operations:
            for operand in dop.operands.values():
                self._count_nt(operand, stats)
        if self.trace is not None:
            offset = address - self.program.origin
            text = self.program.texts[offset]
            self.trace.emit(
                TraceRecord(
                    self.cycle, address, prepared.decoded.word, text
                )
            )

    def _count_nt(self, operand, stats) -> None:
        if isinstance(operand, tuple) and len(operand) == 2:
            label, sub = operand
            stats.nt_option_counts[label] += 1
            for child in sub.values():
                self._count_nt(child, stats)

    # ------------------------------------------------------------------
    # Run loops
    # ------------------------------------------------------------------

    def run(self, max_steps: int = 1_000_000,
            honor_breakpoints: bool = True) -> str:
        """Run until halt, breakpoint, or *max_steps*.

        Returns ``"halted"``, ``"breakpoint"`` or ``"max_steps"``.  When a
        breakpoint with attached commands is hit, the commands are handed to
        :attr:`command_dispatcher` (paper: "dispatching attached commands
        back to the user interface for processing").
        """
        steps = 0
        while steps < max_steps:
            if honor_breakpoints and steps > 0:
                bp = self.breakpoints.get(self.state.pc)
                if bp is not None and bp.enabled:
                    bp.hits += 1
                    self._dispatch_commands(bp)
                    return "breakpoint"
            if not self.step():
                self._finish()
                return "halted"
            steps += 1
            if self.halted:
                # halt flags written with latency 1 commit on the next
                # _commit_due; force visibility now for the caller
                self._finish()
                return "halted"
            # Peek: a pending halt write coming due exactly now.
            self._commit_due()
            if self.halted:
                self._finish()
                return "halted"
        self._finish()
        return "max_steps"

    def _finish(self) -> None:
        self.drain()
        self.stats.cycles = self.cycle
        self.stats.storage_reads = dict(self.state.read_counts)
        self.stats.storage_writes = dict(self.state.write_counts)

    def _dispatch_commands(self, bp: Breakpoint) -> None:
        if self.command_dispatcher is None:
            return
        for command in bp.commands:
            self.command_dispatcher(command)
