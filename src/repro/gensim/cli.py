"""XSIM command-line interface with batch-file support (paper §3.1).

"They provide both a graphical user interface and a command-line interface
with full batch-file support" — this is the command-line half (the Tcl/Tk
GUI is out of scope, see DESIGN.md).  Commands cover the paper's feature
list: state examine/set, run/step, breakpoints with attached commands,
state monitors, execution traces, and the off-line disassembly listing.
"""

from __future__ import annotations

import shlex
import sys
from typing import Callable, Dict, List, Optional

from ..errors import ReproError
from .trace import open_trace_file
from .xsim import XSim

_HELP = """\
commands:
  load FILE              load a hex program (one word per line)
  asm FILE               assemble FILE and load it
  run [MAX]              run until halt/breakpoint (default MAX 1000000)
  step [N]               execute N instructions (default 1)
  reset                  reset cycle counter and PC
  examine NAME [INDEX]   print a state element (alias: x)
  set NAME [INDEX] VALUE write a state element
  break ADDR [CMD; ...]  set a breakpoint, optionally with attached commands
  delete ADDR            remove a breakpoint
  watch NAME [INDEX]     monitor a state element for changes
  trace FILE | off       write an execution address trace
  dis                    print the off-line disassembly listing
  stats                  print the performance report
  batch FILE             execute commands from FILE
  echo TEXT              print TEXT
  help                   this message
  quit                   leave the simulator
"""


class CommandLine:
    """A line-oriented driver around one XSIM instance."""

    def __init__(self, sim: XSim, out: Optional[Callable[[str], None]] = None):
        self.sim = sim
        self.out = out or (lambda text: print(text))
        self.done = False
        self._trace = None
        sim.scheduler.command_dispatcher = self.execute
        self._handlers: Dict[str, Callable[[List[str]], None]] = {
            "load": self._cmd_load,
            "asm": self._cmd_asm,
            "run": self._cmd_run,
            "step": self._cmd_step,
            "reset": self._cmd_reset,
            "examine": self._cmd_examine,
            "x": self._cmd_examine,
            "set": self._cmd_set,
            "break": self._cmd_break,
            "delete": self._cmd_delete,
            "watch": self._cmd_watch,
            "trace": self._cmd_trace,
            "dis": self._cmd_dis,
            "stats": self._cmd_stats,
            "batch": self._cmd_batch,
            "echo": self._cmd_echo,
            "help": self._cmd_help,
            "quit": self._cmd_quit,
        }

    # ------------------------------------------------------------------

    def execute(self, line: str) -> None:
        """Execute one command line (also the attached-command hook)."""
        line = line.split("#", 1)[0].strip()
        if not line:
            return
        try:
            parts = shlex.split(line)
        except ValueError as exc:
            self.out(f"error: {exc}")
            return
        handler = self._handlers.get(parts[0])
        if handler is None:
            self.out(f"error: unknown command {parts[0]!r} (try 'help')")
            return
        try:
            handler(parts[1:])
        except ReproError as exc:
            self.out(f"error: {exc}")
        except (ValueError, IndexError) as exc:
            self.out(f"error: {exc}")

    def run_batch(self, path: str) -> None:
        """Full batch-file support: one command per line."""
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                if self.done:
                    break
                self.execute(line)

    def interact(self, stream=None) -> None:
        """Read commands until EOF or ``quit``."""
        stream = stream or sys.stdin
        while not self.done:
            try:
                self.out(f"xsim[{self.sim.cycle}]> ")
                line = stream.readline()
            except KeyboardInterrupt:  # pragma: no cover - interactive
                break
            if not line:
                break
            self.execute(line)

    # ------------------------------------------------------------------
    # Commands
    # ------------------------------------------------------------------

    def _cmd_load(self, args):
        self.sim.load_binary(args[0])
        self.out(f"loaded {len(self.sim.program.words)} words")

    def _cmd_asm(self, args):
        from ..asm import Assembler

        program = Assembler(self.sim.desc).assemble_file(args[0])
        self.sim.load_words(program.words, program.origin)
        self.out(f"assembled and loaded {len(program.words)} words")

    def _cmd_run(self, args):
        max_steps = int(args[0], 0) if args else 1_000_000
        result = self.sim.run(max_steps)
        self.out(
            f"stopped: {result.halt_reason} at PC=0x{self.sim.state.pc:x},"
            f" cycle {self.sim.cycle}"
        )
        self._flush_monitors()

    def _cmd_step(self, args):
        count = int(args[0], 0) if args else 1
        for _ in range(count):
            if not self.sim.step():
                self.out("halted")
                break
        self.out(f"PC=0x{self.sim.state.pc:x}, cycle {self.sim.cycle}")
        self._flush_monitors()

    def _cmd_reset(self, args):
        self.sim.reset()
        self.out("reset")

    def _parse_location(self, args):
        name = args[0]
        index = None
        rest = args[1:]
        if "[" in name:
            name, bracket = name.split("[", 1)
            index = int(bracket.rstrip("]"), 0)
        elif rest and rest[0] not in ("",) and len(rest) >= 1:
            storage = self.sim.desc.storages.get(name)
            if storage is not None and storage.addressed:
                index = int(rest[0], 0)
                rest = rest[1:]
        return name, index, rest

    def _cmd_examine(self, args):
        name, index, _ = self._parse_location(args)
        value = self.sim.read(name, index)
        location = name if index is None else f"{name}[{index}]"
        self.out(f"{location} = 0x{value:x} ({value})")

    def _cmd_set(self, args):
        name, index, rest = self._parse_location(args)
        value = int(rest[0], 0)
        self.sim.write(name, value, index)
        location = name if index is None else f"{name}[{index}]"
        self.out(f"{location} <- 0x{self.sim.read(name, index):x}")

    def _cmd_break(self, args):
        address = int(args[0], 0)
        commands = []
        if len(args) > 1:
            commands = [c.strip() for c in " ".join(args[1:]).split(";")]
        self.sim.set_breakpoint(address, commands)
        self.out(f"breakpoint at 0x{address:x}")

    def _cmd_delete(self, args):
        self.sim.clear_breakpoint(int(args[0], 0))
        self.out("breakpoint removed")

    def _cmd_watch(self, args):
        name, index, _ = self._parse_location(args)
        self.sim.watch(name, index)
        location = name if index is None else f"{name}[{index}]"
        self.out(f"watching {location}")

    def _flush_monitors(self):
        messages = self.sim.monitor_messages
        for message in messages:
            self.out(message)
        del messages[:]

    def _cmd_trace(self, args):
        if self._trace is not None:
            self._trace.close()
            self._trace = None
        if args and args[0] != "off":
            self._trace = open_trace_file(args[0])
            self.sim.set_trace(self._trace)
            self.out(f"tracing to {args[0]}")
        else:
            self.sim.set_trace(None)
            self.out("tracing off")

    def _cmd_dis(self, args):
        for line in self.sim.disassembly_listing():
            self.out(line)

    def _cmd_stats(self, args):
        self.out(self.sim.stats.report(self.sim.desc))

    def _cmd_batch(self, args):
        self.run_batch(args[0])

    def _cmd_echo(self, args):
        self.out(" ".join(args))

    def _cmd_help(self, args):
        self.out(_HELP)

    def _cmd_quit(self, args):
        if self._trace is not None:
            self._trace.close()
        self.done = True

    # ------------------------------------------------------------------

    def main(self, argv: List[str]) -> int:
        """Entry point used by the generated simulators' ``__main__``."""
        batch = None
        positional = []
        i = 0
        while i < len(argv):
            if argv[i] == "--batch":
                batch = argv[i + 1]
                i += 2
            else:
                positional.append(argv[i])
                i += 1
        if positional:
            if positional[0].endswith(".s"):
                self._cmd_asm(positional[:1])
            else:
                self._cmd_load(positional[:1])
        if batch is not None:
            self.run_batch(batch)
        else:
            self.interact()
        return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Console entry point: ``xsim <description.isdl> [program] [--batch f]``."""
    from ..isdl import load_file

    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: xsim <description.isdl> [program.hex|program.s]"
              " [--batch commands.txt]")
        return 2
    desc = load_file(argv[0])
    return CommandLine(XSim(desc)).main(argv[1:])


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
