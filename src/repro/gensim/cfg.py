"""Control-flow analysis over decoded programs (basic-block discovery).

The block-compiled simulator (:mod:`repro.gensim.blocksim`) translates
straight-line instruction runs into single Python functions, so it needs
to know where control flow can leave the straight line.  ISDL has no
explicit branch class — any operation may assign the storage designated
``PROGRAM_COUNTER`` — so the analysis below walks the RTL ASTs of each
decoded instruction (like :mod:`repro.gensim.hazards` does for stalls)
and classifies it:

* does any path write the program counter (a *terminator*)?
* is every such write conditional (an ``if``-guarded branch)?
* does it write instruction memory (self-modifying code) or the halt flag?
* which base storages does it touch, and what is its worst write latency?

Block discovery is *dynamic*: a block is keyed by its entry offset and
extends to the first terminator or the last program word, stepping by each
instruction's size.  Branching into the middle of a previously discovered
block simply discovers a new (overlapping) block — no leader analysis is
required for correctness, only for the static partition that
:func:`static_blocks` offers to tests and reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..isdl import ast, rtl
from .disassembler import DecodedInstruction
from .hazards import _freeze

__all__ = [
    "InstructionFlow",
    "BasicBlock",
    "ControlFlowAnalyzer",
    "block_span",
    "static_blocks",
]

#: Safety valve for pathological straight-line programs: a block longer
#: than this is split (the tail becomes the next block's entry).
MAX_BLOCK_LEN = 64


@dataclass(frozen=True)
class InstructionFlow:
    """Static control-flow summary of one decoded instruction."""

    #: some path may assign the program counter (block terminator)
    writes_pc: bool
    #: every PC write sits under at least one ``if`` (conditional branch)
    conditional_pc: bool
    #: writes instruction memory — self-modifying code
    writes_imem: bool
    #: writes the halt flag (directly or through an alias)
    writes_halt: bool
    #: base storages read or written (aliases resolved)
    storages: FrozenSet[str]
    #: worst-case write latency of the instruction's operations
    max_latency: int
    #: instruction size in words (PC advance)
    size: int
    #: a destination the analysis could not resolve statically; the block
    #: compiler must not include this instruction in a fast block
    unresolved: bool = False


@dataclass(frozen=True)
class BasicBlock:
    """A straight-line run of instructions, keyed by its entry offset."""

    start: int
    #: member instruction word offsets, in execution order
    offsets: Tuple[int, ...]
    #: the last member may write the PC (False: the block ends because
    #: the program — or the length cap — does)
    ends_in_branch: bool
    #: the block was truncated by the length cap, not by a terminator or
    #: the end of the program — execution always continues at
    #: ``fall_through`` (the artificial successor)
    capped: bool = False
    #: word offset execution falls into when the last member does not
    #: branch (None when the next word is unoccupied or past the end)
    fall_through: Optional[int] = None

    def __len__(self) -> int:
        return len(self.offsets)


class ControlFlowAnalyzer:
    """Derives :class:`InstructionFlow` facts from operation RTL."""

    def __init__(self, desc: ast.Description):
        self.desc = desc
        self._pc = self._alias_base(desc.program_counter().name)
        self._imem = desc.instruction_memory().name
        halt = desc.attributes.get("halt_flag")
        self._halt = self._alias_base(halt) if halt else None
        self._cache: Dict[Tuple, InstructionFlow] = {}

    # ------------------------------------------------------------------
    # Per-instruction analysis
    # ------------------------------------------------------------------

    def flow(self, decoded: DecodedInstruction) -> InstructionFlow:
        key = tuple(
            (op.field, op.op_name,
             tuple(sorted((n, _freeze(v)) for n, v in op.operands.items())))
            for op in decoded.operations
        )
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        scan = _FlowScan()
        size = 1
        latency = 1
        for dop in decoded.operations:
            op = self.desc.operation(dop.field, dop.op_name)
            size = max(size, op.costs.size)
            latency = max(latency, op.timing.latency)
            bindings = self._nt_bindings(op.params, dop.operands)
            self._scan_stmts(list(op.action) + list(op.side_effect),
                             bindings, scan, guarded=False)
            for option, sub in bindings.values():
                latency = max(latency, option.timing.latency)
                self._scan_stmts(
                    list(option.action) + list(option.side_effect),
                    sub, scan, guarded=False,
                )
        flow = InstructionFlow(
            writes_pc=scan.writes_pc,
            conditional_pc=scan.writes_pc and scan.all_pc_guarded,
            writes_imem=scan.writes_imem,
            writes_halt=scan.writes_halt,
            storages=frozenset(scan.storages),
            max_latency=latency,
            size=size,
            unresolved=scan.unresolved,
        )
        self._cache[key] = flow
        return flow

    def flows_for_program(
        self, program: Sequence[Optional[DecodedInstruction]]
    ) -> List[Optional[InstructionFlow]]:
        """Per-address flow facts (None for unoccupied words)."""
        return [self.flow(d) if d is not None else None for d in program]

    # ------------------------------------------------------------------
    # RTL walking
    # ------------------------------------------------------------------

    def _nt_bindings(self, params, operands):
        """param name -> (bound option, its own bindings) for NT params."""
        bindings = {}
        for param in params:
            ptype = self.desc.param_type(param)
            if isinstance(ptype, ast.NonTerminal):
                label, sub = operands[param.name]
                option = ptype.option(label)
                bindings[param.name] = (
                    option, self._nt_bindings(option.params, sub)
                )
        return bindings

    def _scan_stmts(self, stmts, bindings, scan, guarded: bool) -> None:
        for stmt in stmts:
            if isinstance(stmt, rtl.Assign):
                self._scan_reads(stmt.expr, scan)
                self._scan_dest(stmt.dest, bindings, scan, guarded)
            elif isinstance(stmt, rtl.If):
                self._scan_reads(stmt.cond, scan)
                self._scan_stmts(stmt.then, bindings, scan, guarded=True)
                self._scan_stmts(stmt.orelse, bindings, scan, guarded=True)

    def _scan_dest(self, dest, bindings, scan, guarded: bool) -> None:
        if isinstance(dest, rtl.NtLV):
            return  # ``$$`` — the option's value, not a storage
        if isinstance(dest, rtl.ParamLV):
            binding = bindings.get(dest.name)
            target = binding[0].storage_target() if binding else None
            if target is None:
                scan.unresolved = True
                return
            dest = target
        if dest.index is not None:
            self._scan_reads(dest.index, scan)
        base = self._alias_base(dest.storage)
        scan.storages.add(base)
        if base == self._pc:
            scan.writes_pc = True
            if not guarded:
                scan.all_pc_guarded = False
        if base == self._imem:
            scan.writes_imem = True
        if self._halt is not None and base == self._halt:
            scan.writes_halt = True

    def _scan_reads(self, expr, scan) -> None:
        for node in rtl.walk_exprs(expr):
            if isinstance(node, rtl.StorageRead):
                scan.storages.add(self._alias_base(node.storage))

    def _alias_base(self, name: str) -> str:
        alias = self.desc.aliases.get(name)
        return alias.storage if alias is not None else name


class _FlowScan:
    """Mutable accumulator for one instruction's scan."""

    __slots__ = ("writes_pc", "all_pc_guarded", "writes_imem",
                 "writes_halt", "storages", "unresolved")

    def __init__(self):
        self.writes_pc = False
        self.all_pc_guarded = True
        self.writes_imem = False
        self.writes_halt = False
        self.storages = set()
        self.unresolved = False


# ---------------------------------------------------------------------------
# Block discovery
# ---------------------------------------------------------------------------


def block_span(
    flows: Sequence[Optional[InstructionFlow]],
    start: int,
    max_len: int = MAX_BLOCK_LEN,
) -> Tuple[int, ...]:
    """Word offsets of the dynamic basic block entered at *start*.

    The block runs from *start* through the first terminator (inclusive),
    the last program word, or the length cap, stepping by each
    instruction's size.  Empty when *start* is out of range or lands on an
    unoccupied word.
    """
    offsets: List[int] = []
    offset = start
    n = len(flows)
    while 0 <= offset < n and len(offsets) < max_len:
        flow = flows[offset]
        if flow is None:
            break
        offsets.append(offset)
        if flow.writes_pc or flow.unresolved:
            break
        offset += flow.size
    return tuple(offsets)


def static_blocks(
    flows: Sequence[Optional[InstructionFlow]],
    max_len: int = MAX_BLOCK_LEN,
) -> List[BasicBlock]:
    """Partition a program into fall-through blocks starting at offset 0.

    This is the *static* view (used by tests and reports); the simulator's
    dispatch cache discovers blocks dynamically and may add overlapping
    entries for branch targets that land mid-block.
    """
    blocks: List[BasicBlock] = []
    offset = 0
    n = len(flows)
    while 0 <= offset < n:
        span = block_span(flows, offset, max_len)
        if not span:
            break
        last = flows[span[-1]]
        next_offset = span[-1] + last.size
        ends_in_branch = bool(last.writes_pc)
        capped = (
            not ends_in_branch
            and not last.unresolved
            and len(span) == max_len
            and 0 <= next_offset < n
            and flows[next_offset] is not None
        )
        fall_through = None
        if (not ends_in_branch or last.conditional_pc) \
                and not last.unresolved:
            if 0 <= next_offset < n and flows[next_offset] is not None:
                fall_through = next_offset
        blocks.append(BasicBlock(
            start=offset, offsets=span,
            ends_in_branch=ends_in_branch,
            capped=capped,
            fall_through=fall_through,
        ))
        offset = next_offset
    return blocks
