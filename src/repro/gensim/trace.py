"""Execution address traces (paper §3.1).

XSIM simulators "can create an execution address trace which is either
written into a file or directly to a processing program".  :class:`TraceSink`
abstracts the two destinations; the scheduler emits one record per executed
instruction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, TextIO


@dataclass(frozen=True)
class TraceRecord:
    """One executed instruction."""

    cycle: int  # cycle at which the instruction issued
    address: int  # instruction-memory address
    word: int  # raw instruction word
    disassembly: str  # textual form (off-line disassembly result)


class TraceSink:
    """Base class: ignores everything.

    Every sink is a context manager — ``with open_trace_file(p) as sink:``
    guarantees the flush-on-close that file sinks need, and lets other
    record producers (e.g. the :mod:`repro.obs` span exporter) reuse the
    sink lifecycle unchanged.
    """

    def emit(self, record: TraceRecord) -> None:  # pragma: no cover - trivial
        pass

    def close(self) -> None:  # pragma: no cover - trivial
        pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, *exc_info) -> bool:
        self.close()
        return False


class ListTrace(TraceSink):
    """Collects records in memory (the "processing program" flavour)."""

    def __init__(self) -> None:
        self.records: List[TraceRecord] = []

    def emit(self, record: TraceRecord) -> None:
        self.records.append(record)


class CallbackTrace(TraceSink):
    """Forwards records to a callable."""

    def __init__(self, callback: Callable[[TraceRecord], None]):
        self._callback = callback

    def emit(self, record: TraceRecord) -> None:
        self._callback(record)


class FileTrace(TraceSink):
    """Writes one line per record to an open text stream.

    Subclasses override :meth:`format` to emit other record types through
    the same stream/close handling (see ``repro.obs.export.SpanFileTrace``).
    """

    def __init__(self, stream: TextIO, close_stream: bool = False):
        self._stream = stream
        self._close_stream = close_stream

    def format(self, record: TraceRecord) -> str:
        return (
            f"{record.cycle:10d}  0x{record.address:06x}"
            f"  0x{record.word:012x}  {record.disassembly}"
        )

    def emit(self, record: TraceRecord) -> None:
        self._stream.write(self.format(record) + "\n")

    def close(self) -> None:
        self._stream.flush()
        if self._close_stream:
            self._stream.close()


def open_trace_file(path: str) -> FileTrace:
    """Open *path* for writing and return a :class:`FileTrace` on it."""
    return FileTrace(open(path, "w", encoding="utf-8"), close_stream=True)
