"""Performance measurements and utilization statistics (paper §1, §3).

The ILS exists to "measure performance, verify correctness and evaluate the
suitability of the architecture" — cycle counts, per-operation and per-field
utilization, storage traffic.  These statistics feed the exploration loop's
improvement heuristics (:mod:`repro.explore`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, fields
from typing import Dict

from ..isdl import ast


@dataclass
class SimulationStats:
    """Counters accumulated by the scheduler during a run."""

    cycles: int = 0  # total cycles including stalls
    stall_cycles: int = 0  # cycles attributed to hazards
    instructions: int = 0  # instructions issued
    op_counts: Counter = field(default_factory=Counter)  # (field, op) -> n
    field_busy: Counter = field(default_factory=Counter)  # field -> n
    nt_option_counts: Counter = field(default_factory=Counter)

    # Filled from the State when a run finishes.
    storage_reads: Dict[str, int] = field(default_factory=dict)
    storage_writes: Dict[str, int] = field(default_factory=dict)

    @property
    def base_cycles(self) -> int:
        """Cycles excluding stalls."""
        return self.cycles - self.stall_cycles

    @property
    def cpi(self) -> float:
        """Cycles per instruction."""
        if self.instructions == 0:
            return 0.0
        return self.cycles / self.instructions

    def field_utilization(self, desc: ast.Description) -> Dict[str, float]:
        """Fraction of issued instructions in which each field did work.

        Explicit NOPs (operations with an empty action) do not count as
        work — this is the number the exploration loop uses to find idle
        functional units.
        """
        if self.instructions == 0:
            return {fld.name: 0.0 for fld in desc.fields}
        return {
            fld.name: self.field_busy[fld.name] / self.instructions
            for fld in desc.fields
        }

    def unused_operations(self, desc: ast.Description):
        """Operations never executed in this run — candidates for removal."""
        return [
            (fld.name, op.name)
            for fld, op in desc.operations()
            if self.op_counts[(fld.name, op.name)] == 0
        ]

    def report(self, desc: ast.Description) -> str:
        """A human-readable summary."""
        lines = [
            f"cycles:        {self.cycles}",
            f"  base:        {self.base_cycles}",
            f"  stalls:      {self.stall_cycles}",
            f"instructions:  {self.instructions}",
            f"CPI:           {self.cpi:.3f}",
            "field utilization:",
        ]
        for name, util in self.field_utilization(desc).items():
            lines.append(f"  {name:12s} {util * 100:5.1f}%")
        lines.append("hottest operations:")
        for (field_name, op_name), count in self.op_counts.most_common(8):
            lines.append(f"  {field_name}.{op_name:12s} {count}")
        return "\n".join(lines)


@dataclass(eq=False)
class RunResult(SimulationStats):
    """Statistics of one run plus the reason it stopped.

    :meth:`XSim.run` historically returned the stop reason as a bare
    string; it now returns this — a full :class:`SimulationStats` with the
    reason in :attr:`halt_reason` (``"halted"``, ``"breakpoint"`` or
    ``"max_steps"``).  Inspect ``result.halt_reason`` to branch on the
    stop reason; comparing the result to a bare string is no longer
    supported (the deprecation shim was removed once call sites migrated).
    """

    halt_reason: str = ""

    @classmethod
    def from_stats(cls, stats: SimulationStats, halt_reason: str,
                   cycles: int = None) -> "RunResult":
        """Wrap *stats* (counters are shared, not copied) with a reason."""
        values = {f.name: getattr(stats, f.name)
                  for f in fields(SimulationStats)}
        if cycles is not None:
            values["cycles"] = cycles
        return cls(halt_reason=halt_reason, **values)

    def __eq__(self, other):
        if isinstance(other, SimulationStats):
            base = [f.name for f in fields(SimulationStats)]
            if isinstance(other, RunResult) and (
                self.halt_reason != other.halt_reason
            ):
                return False
            return all(
                getattr(self, name) == getattr(other, name)
                for name in base
            )
        return NotImplemented

    __hash__ = None
