"""GENSIM — simulator generation (paper section 3)."""

from .blocksim import BlockSimulator, BlockStats
from .cfg import BasicBlock, ControlFlowAnalyzer, InstructionFlow
from .compiled import CompiledSimulator
from .disassembler import DecodedInstruction, DecodedOperation, Disassembler
from .generator import emit_source, generate_simulator, write_source
from .monitors import Monitor, MonitorSet
from .protocol import Simulator, simulator_for
from .render import render_instruction, render_operation
from .scheduler import Breakpoint, LoadedProgram, Scheduler
from .state import State
from .stats import RunResult, SimulationStats
from .trace import CallbackTrace, FileTrace, ListTrace, TraceRecord, open_trace_file
from .xsim import XSim

__all__ = [
    "BasicBlock",
    "BlockSimulator",
    "BlockStats",
    "CompiledSimulator",
    "ControlFlowAnalyzer",
    "InstructionFlow",
    "Simulator",
    "simulator_for",
    "RunResult",
    "DecodedInstruction",
    "DecodedOperation",
    "Disassembler",
    "emit_source",
    "generate_simulator",
    "write_source",
    "Monitor",
    "MonitorSet",
    "render_instruction",
    "render_operation",
    "Breakpoint",
    "LoadedProgram",
    "Scheduler",
    "State",
    "SimulationStats",
    "CallbackTrace",
    "FileTrace",
    "ListTrace",
    "TraceRecord",
    "open_trace_file",
    "XSim",
]
