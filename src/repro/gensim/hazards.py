"""Static stall computation (paper §3.3.3, last paragraph).

ISDL has no explicit pipeline model, so neither does the simulator.  Stall
cycles are computed *from the static instruction stream* and added to the
normal cycle count as needed:

* **data hazards** — if an instruction at address ``a`` writes a storage
  location with latency ``L > 1`` and the ``k``-th following instruction in
  the static stream (``k < L``) reads that location, the consumer stalls
  ``L - k`` cycles, capped by the producer operation's ``stall`` cost (the
  "number of additional cycles that may be necessary during a pipeline
  stall").
* **structural hazards** — if an operation occupies its functional unit for
  ``usage U > 1`` cycles, a following instruction within ``k < U`` that uses
  the same field stalls ``U - k`` cycles.  Operations with an empty action
  (explicit NOPs) do not occupy their unit.

Because disassembly is off-line, the analyzer knows each instruction's bound
operands: register indices that are static functions of token parameters
resolve to exact elements (``RF[3]``), and only genuinely dynamic addresses
(e.g. ``DM[RF[a]]``) fall back to whole-storage conflicts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..isdl import ast, rtl
from .core import INTRINSIC_IMPLS, _BINOPS
from .disassembler import DecodedInstruction

#: A static access: (storage, element-index or None for unknown/whole).
Access = Tuple[str, Optional[int]]


@dataclass(frozen=True)
class InstructionProfile:
    """Static read/write/usage summary of one decoded instruction."""

    reads: FrozenSet[Access]
    # (access, latency, stall_cap) triples
    writes: Tuple[Tuple[Access, int, int], ...]
    # (field, usage) for operations that occupy their unit
    unit_usage: Tuple[Tuple[str, int], ...]


def _conflicts(read: Access, write: Access) -> bool:
    if read[0] != write[0]:
        return False
    if read[1] is None or write[1] is None:
        return True
    return read[1] == write[1]


def _freeze(operand) -> Tuple:
    """Hashable form of a decoded operand tree."""
    if isinstance(operand, tuple) and len(operand) == 2 and isinstance(
        operand[1], dict
    ):
        label, sub = operand
        return (label, tuple(sorted(
            (name, _freeze(child)) for name, child in sub.items()
        )))
    return operand


class HazardAnalyzer:
    """Computes per-address stall counts for a loaded program."""

    def __init__(self, desc: ast.Description):
        self.desc = desc
        self._profile_cache: Dict[Tuple, InstructionProfile] = {}

    # ------------------------------------------------------------------
    # Per-instruction profiles
    # ------------------------------------------------------------------

    def profile(self, decoded: DecodedInstruction) -> InstructionProfile:
        key = tuple(
            (op.field, op.op_name,
             tuple(sorted((n, _freeze(v)) for n, v in op.operands.items())))
            for op in decoded.operations
        )
        cached = self._profile_cache.get(key)
        if cached is not None:
            return cached
        reads: set = set()
        writes: List[Tuple[Access, int, int]] = []
        usage: List[Tuple[str, int]] = []
        for dop in decoded.operations:
            op = self.desc.operation(dop.field, dop.op_name)
            env = self._bind(op.params, dop.operands)
            self._scan_blocks(
                list(op.action) + list(op.side_effect),
                env, reads, writes,
                op.timing.latency, op.costs.stall,
            )
            for param in op.params:
                ptype = self.desc.param_type(param)
                if isinstance(ptype, ast.NonTerminal):
                    label, sub_operands = dop.operands[param.name]
                    option = ptype.option(label)
                    sub_env = self._bind(option.params, sub_operands)
                    self._scan_blocks(
                        list(option.action) + list(option.side_effect),
                        sub_env, reads, writes,
                        option.timing.latency, op.costs.stall,
                    )
            if op.action:
                usage.append((dop.field, op.timing.usage))
        profile = InstructionProfile(
            frozenset(reads), tuple(writes), tuple(usage)
        )
        self._profile_cache[key] = profile
        return profile

    def _bind(self, params, operands) -> Dict[str, object]:
        env: Dict[str, object] = {}
        for param in params:
            ptype = self.desc.param_type(param)
            value = operands[param.name]
            if isinstance(ptype, ast.TokenDef):
                env[param.name] = value
            else:
                env[param.name] = None  # NT values are dynamic
        return env

    def _scan_blocks(self, stmts, env, reads, writes, latency, cap) -> None:
        for stmt in rtl.walk_stmts(stmts):
            if isinstance(stmt, rtl.Assign):
                self._scan_reads(stmt.expr, env, reads)
                dest = stmt.dest
                if isinstance(dest, rtl.StorageLV):
                    if dest.index is not None:
                        self._scan_reads(dest.index, env, reads)
                    writes.append(
                        (self._access(dest.storage, dest.index, env),
                         latency, cap)
                    )
                elif isinstance(dest, rtl.ParamLV):
                    # A transparent NT destination: conservatively a write
                    # to each option's target storage.
                    self._scan_paramlv(dest, env, writes, latency, cap)
            elif isinstance(stmt, rtl.If):
                self._scan_reads(stmt.cond, env, reads)

    def _scan_paramlv(self, dest, env, writes, latency, cap) -> None:
        # Without the param->NT map in env we cannot resolve the option;
        # treat as dynamic writes to every storage any option targets.
        for nt in self.desc.nonterminals.values():
            for option in nt.options:
                target = option.storage_target()
                if target is not None:
                    writes.append(
                        ((self._alias_base(target.storage), None),
                         latency, cap)
                    )

    def _scan_reads(self, expr, env, reads) -> None:
        for node in rtl.walk_exprs(expr):
            if isinstance(node, rtl.StorageRead):
                reads.add(self._access(node.storage, node.index, env))
                if node.index is not None:
                    self._scan_reads(node.index, env, reads)

    def _alias_base(self, name: str) -> str:
        alias = self.desc.aliases.get(name)
        return alias.storage if alias is not None else name

    def _access(self, name: str, index, env) -> Access:
        alias = self.desc.aliases.get(name)
        if alias is not None:
            return (alias.storage, alias.index)
        if index is None:
            return (name, None)
        return (name, self._static_eval(index, env))

    def _static_eval(self, expr, env) -> Optional[int]:
        """Evaluate an index expression if it is static for this binding."""
        if isinstance(expr, rtl.IntLit):
            return expr.value
        if isinstance(expr, rtl.ParamRef):
            value = env.get(expr.name)
            return value if isinstance(value, int) else None
        if isinstance(expr, rtl.BinOp):
            left = self._static_eval(expr.left, env)
            right = self._static_eval(expr.right, env)
            if left is None or right is None:
                return None
            try:
                return _BINOPS[expr.op](left, right)
            except Exception:
                return None
        if isinstance(expr, rtl.UnOp):
            operand = self._static_eval(expr.operand, env)
            if operand is None:
                return None
            if expr.op == "-":
                return -operand
            if expr.op == "~":
                return ~operand
            return int(not operand)
        if isinstance(expr, rtl.Call):
            args = [self._static_eval(a, env) for a in expr.args]
            if any(a is None for a in args):
                return None
            impl = INTRINSIC_IMPLS.get(expr.func)
            if impl is None:
                return None
            try:
                return impl(*args)
            except Exception:
                return None
        return None  # storage reads, $$, conditionals: dynamic

    # ------------------------------------------------------------------
    # Program-level stall computation
    # ------------------------------------------------------------------

    def stalls_for_program(
        self, program: List[Optional[DecodedInstruction]]
    ) -> List[int]:
        """Per-address stall cycles for a decoded instruction stream.

        ``program[i]`` is the decoded instruction at instruction-memory
        address ``i`` (``None`` for unoccupied words).  The returned list
        gives the stall cycles charged when the instruction at each address
        executes.
        """
        profiles = [
            self.profile(ins) if ins is not None else None for ins in program
        ]
        max_window = 1
        for profile in profiles:
            if profile is None:
                continue
            for _, latency, _ in profile.writes:
                max_window = max(max_window, latency)
            for _, usage in profile.unit_usage:
                max_window = max(max_window, usage)
        stalls = [0] * len(program)
        for i, consumer in enumerate(profiles):
            if consumer is None:
                continue
            best = 0
            consumer_fields = {f for f, _ in consumer.unit_usage}
            for k in range(1, max_window):
                j = i - k
                if j < 0:
                    break
                producer = profiles[j]
                if producer is None:
                    continue
                # Data hazards.
                for access, latency, cap in producer.writes:
                    if latency <= k:
                        continue
                    if any(
                        _conflicts(read, access) for read in consumer.reads
                    ):
                        best = max(best, min(latency - k, cap))
                # Structural hazards.
                for field_name, usage in producer.unit_usage:
                    if usage > k and field_name in consumer_fields:
                        best = max(best, usage - k)
            stalls[i] = best
        return stalls
