"""The common simulator surface shared by every backend.

The repo grew two cycle-accurate, bit-true executors — the generated
interpretive/fast-core :class:`~repro.gensim.xsim.XSim` and the
program-specialized :class:`~repro.gensim.compiled.CompiledSimulator` —
and exploration/benchmark code used to special-case the pair.  The
:class:`Simulator` protocol pins down the surface they share: load a
program, reset, run to completion, examine/set state, read statistics.
Code written against the protocol runs unchanged on either backend (and
on any future one, e.g. a JIT or a remote simulation service).
"""

from __future__ import annotations

from typing import Optional, Protocol, Sequence, runtime_checkable

from .stats import SimulationStats

__all__ = ["Simulator", "simulator_for"]


@runtime_checkable
class Simulator(Protocol):
    """Structural interface of a generated simulator.

    ``runtime_checkable`` — ``isinstance(sim, Simulator)`` verifies the
    surface is present, which the test suite uses to keep every backend
    conforming.
    """

    def load_words(self, words: Sequence[int], origin: int = 0):
        """Load raw instruction words (off-line disassembly happens here)."""

    def reset(self) -> None:
        """Reset cycle counts, pending writes and the PC; state persists."""

    def run_to_completion(self, max_steps: int = 1_000_000) -> SimulationStats:
        """Run until the halt flag rises; raise if it never does."""

    def read(self, name: str, index: Optional[int] = None) -> int:
        """Examine a storage element."""

    def write(self, name: str, value: int,
              index: Optional[int] = None) -> None:
        """Set a storage element."""

    @property
    def stats(self) -> SimulationStats:
        """Counters accumulated so far."""
        ...


def simulator_for(desc, backend: str = "xsim", **kwargs) -> "Simulator":
    """Build a simulator for *desc* by backend name.

    ``"xsim"`` (generated fast core), ``"interpretive"`` (XSim walking the
    RTL AST), ``"compiled"`` (program-specialized closures) or ``"block"``
    (basic-block JIT over exec-generated Python).
    """
    from .blocksim import BlockSimulator
    from .compiled import CompiledSimulator
    from .xsim import XSim

    if backend == "xsim":
        return XSim(desc, **kwargs)
    if backend == "interpretive":
        return XSim(desc, core="interpretive", **kwargs)
    if backend == "compiled":
        return CompiledSimulator(desc, **kwargs)
    if backend == "block":
        return BlockSimulator(desc, **kwargs)
    raise ValueError(f"unknown simulator backend {backend!r}")
