"""Compiled-code simulation (paper §6.2: "Additional speedups can be
obtained by a move to compiled-code simulators").

Where the interpretive XSIM walks the RTL AST on every execution, the
compiled simulator translates each *loaded instruction* into a closure tree
at load time: operand values are burned in as constants, storage accesses
become direct list/dict operations, and the two-phase semantics are
preserved by having the closures compute into a write list that the driver
commits.  Like real compiled-code simulators, the executable is specific to
one program (reload to change it) and trades the monitor hooks for speed —
state monitors and per-access statistics are not serviced in this mode.

Cycle accounting (costs, static stalls, latency delays) is identical to the
interpretive scheduler, so cycle counts and final state match XSIM exactly;
``tests/gensim/test_compiled.py`` asserts it.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..encoding.bits import mask, set_bits
from ..errors import SimulationError
from ..isdl import ast, rtl
from .core import INTRINSIC_IMPLS, _BINOPS, BoundNt, ProcessingCore
from .disassembler import DecodedInstruction, Disassembler
from .hazards import HazardAnalyzer
from .stats import RunResult, SimulationStats

#: an expression closure: (scalars, arrays) -> int
ExprFn = Callable[[dict, dict], int]
#: a statement closure appends (delay, phase, commit_fn) entries
StmtFn = Callable[[dict, dict, list], None]


def _make_commit(name: str, width: int, hi, lo, is_array: bool):
    """Build the commit closure for one resolved write location.

    Shared by the per-instruction closure compiler below and the
    block compiler's latency-residue slots
    (:mod:`repro.gensim.blocksim`), so both paths apply writes with
    identical masking semantics.
    """
    # default-arg binding (not closure cells) is deliberate: locals are
    # one dict lookup cheaper per commit on the hot path
    if hi is None:
        if is_array:
            def commit_fn(scalars, arrays, index, value,
                          _n=name, _m=mask(width)):  # noqa: B008
                arrays[_n][index] = value & _m
        else:
            def commit_fn(scalars, arrays, index, value,
                          _n=name, _m=mask(width)):  # noqa: B008
                scalars[_n] = value & _m
    else:
        effective_lo = lo if lo is not None else hi

        if is_array:
            def commit_fn(scalars, arrays, index, value,
                          _n=name, _hi=hi, _lo=effective_lo):
                arrays[_n][index] = set_bits(
                    arrays[_n][index], _hi, _lo, value
                )
        else:
            def commit_fn(scalars, arrays, index, value,
                          _n=name, _hi=hi, _lo=effective_lo):
                scalars[_n] = set_bits(scalars[_n], _hi, _lo, value)
    return commit_fn


class CompiledSimulator:
    """A program-specialized, cycle-accurate, bit-true simulator."""

    def __init__(self, desc: ast.Description, table=None):
        self.desc = desc
        self.disassembler = Disassembler(desc, table)
        self.hazards = HazardAnalyzer(desc)
        self._core = ProcessingCore(desc)  # reused for operand binding
        self.scalars: Dict[str, int] = {}
        self.arrays: Dict[str, List[int]] = {}
        self._widths: Dict[str, int] = {}
        for storage in desc.storages.values():
            self._widths[storage.name] = storage.width
            if storage.addressed:
                self.arrays[storage.name] = [0] * storage.depth
            else:
                self.scalars[storage.name] = 0
        self._pc = desc.program_counter().name
        self._halt = desc.attributes.get("halt_flag")
        self._program: List[Optional[Tuple[StmtFn, int, int]]] = []
        self._stalls: List[int] = []
        self._origin = 0
        self.cycle = 0
        self.instructions = 0
        self.stall_cycles = 0
        self._pending: List = []
        self._seq = 0

    # ------------------------------------------------------------------
    # State access (for setup and result inspection)
    # ------------------------------------------------------------------

    def read(self, name: str, index: Optional[int] = None) -> int:
        if name in self.arrays:
            return self.arrays[name][index]
        return self.scalars[name]

    def write(self, name: str, value: int,
              index: Optional[int] = None) -> None:
        value &= mask(self._widths[name])
        if name in self.arrays:
            self.arrays[name][index] = value
        else:
            self.scalars[name] = value

    @property
    def halted(self) -> bool:
        return self._halt is not None and self.scalars.get(self._halt, 0) != 0

    @property
    def stats(self) -> SimulationStats:
        """Counters accumulated so far (the protocol's ``stats``)."""
        return SimulationStats(
            cycles=self.cycle,
            stall_cycles=self.stall_cycles,
            instructions=self.instructions,
        )

    def reset(self) -> None:
        """Reset cycle counts, pending writes and the PC; state persists.

        Mirrors :meth:`Scheduler.reset` so the two backends agree on what
        a reset means (the halt flag, like all state, is *not* cleared).
        """
        self.cycle = 0
        self.instructions = 0
        self.stall_cycles = 0
        self._pending = []
        self._seq = 0
        self.scalars[self._pc] = self._origin

    # ------------------------------------------------------------------
    # Loading: off-line disassembly + per-instruction compilation
    # ------------------------------------------------------------------

    def load_words(self, words: Sequence[int], origin: int = 0) -> None:
        decoded = [self.disassembler.disassemble(word) for word in words]
        self._stalls = self.hazards.stalls_for_program(decoded)
        self._program = [self._compile_instruction(d) for d in decoded]
        self._origin = origin
        im = self.desc.instruction_memory()
        for offset, word in enumerate(words):
            self.write(im.name, word, origin + offset)
        self.scalars[self._pc] = origin

    def _compile_instruction(self, decoded: DecodedInstruction):
        """Compile one decoded instruction to (closure, cycles, size)."""
        stmt_fns: List[StmtFn] = []
        side_fns: List[StmtFn] = []
        cycles = 0
        size = 1
        for dop in decoded.operations:
            op = self.desc.operation(dop.field, dop.op_name)
            env = self._bind(op.params, dop.operands)
            cycles = max(cycles, self._instruction_cycles(op, env))
            size = max(size, op.costs.size)
            delay = op.timing.latency - 1
            nt_prologue: List[StmtFn] = []
            compiled_env = self._compile_env(env, nt_prologue)
            stmt_fns.extend(nt_prologue)
            for stmt in op.action:
                stmt_fns.append(
                    self._compile_stmt(stmt, compiled_env, delay, phase=0)
                )
            for stmt in op.side_effect:
                side_fns.append(
                    self._compile_stmt(stmt, compiled_env, delay, phase=1)
                )
            for bound in env.values():
                if isinstance(bound, BoundNt) and bound.option.side_effect:
                    nt_delay = bound.option.timing.latency - 1
                    sub_env = self._compile_env(bound.env, [])
                    for stmt in bound.option.side_effect:
                        side_fns.append(
                            self._compile_stmt(
                                stmt, sub_env, nt_delay, phase=1
                            )
                        )
        fns = tuple(stmt_fns + side_fns)

        def execute(scalars, arrays, sink):
            for fn in fns:
                fn(scalars, arrays, sink)

        return execute, max(cycles, 1), size

    def _instruction_cycles(self, op, env) -> int:
        cycles = op.costs.cycle
        for bound in env.values():
            if isinstance(bound, BoundNt):
                cycles += bound.option.costs.cycle
        return cycles

    def _bind(self, params, operands):
        env = {}
        for param in params:
            ptype = self.desc.param_type(param)
            operand = operands[param.name]
            if isinstance(ptype, ast.TokenDef):
                env[param.name] = operand
            else:
                label, sub = operand
                option = ptype.option(label)
                env[param.name] = BoundNt(
                    ptype, option, self._bind(option.params, sub)
                )
        return env

    # ------------------------------------------------------------------
    # Closure compilation
    # ------------------------------------------------------------------

    def _compile_env(self, env, nt_prologue: List[StmtFn]):
        """Turn a binding env into name -> ExprFn (NT values pre-evaluated
        into per-cycle slots filled by prologue closures)."""
        compiled: Dict[str, object] = {}
        for name, bound in env.items():
            if isinstance(bound, BoundNt):
                slot = [0]
                sub_env = self._compile_env(bound.env, nt_prologue)
                value_fn, writes = self._compile_nt_action(
                    bound.option, sub_env
                )
                delay = bound.option.timing.latency - 1

                def prologue(scalars, arrays, sink, _slot=slot,
                             _fn=value_fn, _writes=writes, _delay=delay):
                    _slot[0] = _fn(scalars, arrays)
                    for write_fn in _writes:
                        write_fn(scalars, arrays, sink)

                nt_prologue.append(prologue)
                compiled[name] = ("nt", slot, bound)
            else:
                compiled[name] = ("const", bound)
        return compiled

    def _compile_nt_action(self, option, sub_env):
        """Compile an option action into (value_fn, state-write closures)."""
        value_holder: Dict[str, ExprFn] = {}
        writes: List[StmtFn] = []
        for stmt in option.action:
            if isinstance(stmt, rtl.Assign) and isinstance(
                stmt.dest, rtl.NtLV
            ):
                value_holder["$$"] = self._compile_expr(
                    stmt.expr, sub_env, value_holder
                )
            else:
                writes.append(
                    self._compile_stmt(
                        stmt, sub_env, option.timing.latency - 1, phase=0,
                        nt_value=value_holder,
                    )
                )
        value_fn = value_holder.get("$$", lambda s, a: 0)
        return value_fn, writes

    def _compile_stmt(self, stmt, env, delay, phase,
                      nt_value=None) -> StmtFn:
        if isinstance(stmt, rtl.Assign):
            return self._compile_assign(stmt, env, delay, phase, nt_value)
        if isinstance(stmt, rtl.If):
            cond = self._compile_expr(stmt.cond, env, nt_value)
            then = tuple(
                self._compile_stmt(s, env, delay, phase, nt_value)
                for s in stmt.then
            )
            orelse = tuple(
                self._compile_stmt(s, env, delay, phase, nt_value)
                for s in stmt.orelse
            )

            def run_if(scalars, arrays, sink):
                branch = then if cond(scalars, arrays) else orelse
                for fn in branch:
                    fn(scalars, arrays, sink)

            return run_if
        raise SimulationError(f"cannot compile statement {stmt!r}")

    def _compile_assign(self, stmt, env, delay, phase, nt_value) -> StmtFn:
        value_fn = self._compile_expr(stmt.expr, env, nt_value)
        dest = stmt.dest
        if isinstance(dest, rtl.ParamLV):
            binding = env[dest.name]
            bound = binding[2]
            target = bound.option.storage_target()
            sub_env = self._compile_env(bound.env, [])
            dest = target
            # fall through with the transparent target as a StorageLV
            return self._compile_storage_write(
                dest, value_fn, sub_env, delay, phase, nt_value
            )
        if isinstance(dest, rtl.StorageLV):
            return self._compile_storage_write(
                dest, value_fn, env, delay, phase, nt_value
            )
        raise SimulationError(f"cannot compile destination {dest!r}")

    def _compile_storage_write(self, dest, value_fn, env, delay, phase,
                               nt_value) -> StmtFn:
        name, fixed_index, hi, lo = self._resolve_location(
            dest.storage, dest.hi, dest.lo
        )
        width = self._widths[name]
        is_array = name in self.arrays
        index_fn: Optional[ExprFn] = None
        if is_array:
            if dest.index is not None:
                index_fn = self._compile_expr(dest.index, env, nt_value)
            else:
                index_fn = lambda s, a, _v=fixed_index: _v

        commit_fn = _make_commit(name, width, hi, lo, is_array)

        def run(scalars, arrays, sink, _vfn=value_fn, _ifn=index_fn,
                _commit=commit_fn, _delay=delay, _phase=phase):
            index = _ifn(scalars, arrays) if _ifn is not None else None
            sink.append(
                (_delay, _phase, _commit, index, _vfn(scalars, arrays))
            )

        return run

    def _resolve_location(self, name, hi, lo):
        if name in self.desc.storages:
            return name, None, hi, lo
        alias = self.desc.aliases[name]
        storage = self.desc.storages[alias.storage]
        alias_hi, alias_lo = alias.hi, alias.lo
        fixed_index = alias.index if storage.addressed else None
        if not storage.addressed and alias.index is not None:
            alias_hi = alias_lo = alias.index
        if alias_lo is None:
            alias_lo = alias_hi
        if alias_hi is None:
            return storage.name, fixed_index, hi, lo
        if hi is None:
            return storage.name, fixed_index, alias_hi, alias_lo
        effective_lo = lo if lo is not None else hi
        return (
            storage.name, fixed_index, alias_lo + hi,
            alias_lo + effective_lo,
        )

    def _compile_expr(self, expr, env, nt_value) -> ExprFn:
        if isinstance(expr, rtl.IntLit):
            value = expr.value
            return lambda s, a: value
        if isinstance(expr, rtl.ParamRef):
            binding = env[expr.name]
            if binding[0] == "const":
                value = binding[1]
                return lambda s, a: value
            slot = binding[1]
            return lambda s, a: slot[0]
        if isinstance(expr, rtl.NtValue):
            if nt_value is None or "$$" not in nt_value:
                raise SimulationError("'$$' read before assignment")
            inner = nt_value["$$"]
            return inner
        if isinstance(expr, rtl.StorageRead):
            return self._compile_read(expr, env, nt_value)
        if isinstance(expr, rtl.BinOp):
            left = self._compile_expr(expr.left, env, nt_value)
            right = self._compile_expr(expr.right, env, nt_value)
            if expr.op == "&&":
                return lambda s, a: int(bool(left(s, a)) and bool(right(s, a)))
            if expr.op == "||":
                return lambda s, a: int(bool(left(s, a)) or bool(right(s, a)))
            fn = _BINOPS[expr.op]
            return lambda s, a: fn(left(s, a), right(s, a))
        if isinstance(expr, rtl.UnOp):
            operand = self._compile_expr(expr.operand, env, nt_value)
            if expr.op == "~":
                return lambda s, a: ~operand(s, a)
            if expr.op == "-":
                return lambda s, a: -operand(s, a)
            return lambda s, a: int(not operand(s, a))
        if isinstance(expr, rtl.Cond):
            cond = self._compile_expr(expr.cond, env, nt_value)
            then = self._compile_expr(expr.then, env, nt_value)
            other = self._compile_expr(expr.other, env, nt_value)
            return lambda s, a: then(s, a) if cond(s, a) else other(s, a)
        if isinstance(expr, rtl.Call):
            impl = INTRINSIC_IMPLS[expr.func]
            arg_fns = tuple(
                self._compile_expr(arg, env, nt_value) for arg in expr.args
            )
            return lambda s, a: impl(*(fn(s, a) for fn in arg_fns))
        raise SimulationError(f"cannot compile expression {expr!r}")

    def _compile_read(self, expr, env, nt_value) -> ExprFn:
        name, fixed_index, hi, lo = self._resolve_location(
            expr.storage, expr.hi, expr.lo
        )
        is_array = name in self.arrays
        index_fn = None
        if is_array:
            if expr.index is not None:
                index_fn = self._compile_expr(expr.index, env, nt_value)
            else:
                index_fn = lambda s, a, _v=fixed_index: _v
        if hi is None:
            if is_array:
                return lambda s, a, _n=name, _i=index_fn: a[_n][_i(s, a)]
            return lambda s, a, _n=name: s[_n]
        effective_lo = lo if lo is not None else hi
        m = mask(hi - effective_lo + 1)
        if is_array:
            return (
                lambda s, a, _n=name, _i=index_fn, _lo=effective_lo, _m=m:
                (a[_n][_i(s, a)] >> _lo) & _m
            )
        return (
            lambda s, a, _n=name, _lo=effective_lo, _m=m:
            (s[_n] >> _lo) & _m
        )

    # ------------------------------------------------------------------
    # Driver loop (mirrors the interpretive scheduler)
    # ------------------------------------------------------------------

    def run_to_completion(self, max_steps: int = 5_000_000) -> RunResult:
        """Run until the halt flag rises; raise if it never does.

        (The driver loop below already raises on ``max_steps``, so this is
        :meth:`run` under the protocol's name.)
        """
        return self.run(max_steps)

    def run(self, max_steps: int = 5_000_000) -> RunResult:
        instructions_before = self.instructions
        cycles_before = self.cycle
        with obs.span("sim.run", backend="compiled", desc=self.desc.name):
            result = self._run_loop(max_steps)
        if obs.enabled():
            obs.add("sim.runs")
            obs.add("sim.cycles", self.cycle - cycles_before)
            obs.add("sim.instructions",
                    self.instructions - instructions_before)
        return result

    def _run_loop(self, max_steps: int) -> RunResult:
        scalars, arrays = self.scalars, self.arrays
        pending = self._pending
        origin = self._origin
        program = self._program
        stalls = self._stalls
        pc_name = self._pc
        halt = self._halt
        steps = 0
        sink: List = []
        while True:
            # commit due writes
            while pending and pending[0][0] <= self.cycle:
                _, _, _, commit, index, value = heapq.heappop(pending)
                commit(scalars, arrays, index, value)
            if halt is not None and scalars.get(halt, 0):
                break
            if steps >= max_steps:
                # like the interpretive scheduler: finish the in-flight
                # writes, then report the step-budget failure
                while pending:
                    _, _, _, commit, index, value = heapq.heappop(pending)
                    commit(scalars, arrays, index, value)
                raise SimulationError(
                    f"program did not halt within {max_steps} steps"
                )
            address = scalars[pc_name]
            offset = address - origin
            if not 0 <= offset < len(program):
                raise SimulationError(
                    f"PC 0x{address:x} outside the loaded program"
                )
            stall = stalls[offset]
            if stall:
                self.cycle += stall
                self.stall_cycles += stall
                while pending and pending[0][0] <= self.cycle:
                    _, _, _, commit, index, value = heapq.heappop(pending)
                    commit(scalars, arrays, index, value)
            entry = program[offset]
            execute, cycles, size = entry
            del sink[:]
            execute(scalars, arrays, sink)
            retire = self.cycle + cycles
            # Sink order is action writes then side-effect writes, so the
            # sequence number alone reproduces the ILS commit order.
            for delay, phase, commit, index, value in sink:
                self._seq += 1
                heapq.heappush(
                    pending,
                    (retire + delay, self._seq, phase, commit, index, value),
                )
            self.cycle = retire
            self.instructions += 1
            scalars[pc_name] = (address + size) & mask(
                self._widths[pc_name]
            )
            steps += 1
        else:
            raise SimulationError(
                f"program did not halt within {max_steps} steps"
            )
        # drain
        while pending:
            _, _, _, commit, index, value = heapq.heappop(pending)
            commit(scalars, arrays, index, value)
        return RunResult(
            cycles=self.cycle,
            stall_cycles=self.stall_cycles,
            instructions=self.instructions,
            halt_reason="halted",
        )
