"""The generated processing core (paper §3.3.3: "These RTL statements are
translated to C functions ... compiled into the processing core as a
collection of routines, and get called by the scheduler").

GENSIM's generated C gives each operation a compiled routine; operands
arrive as arguments after off-line disassembly.  :class:`FastCore` is the
Python equivalent: every (operation, non-terminal-option-combination) is
compiled once per architecture into a closure tree, and execution binds the
decoded operand values through a small environment.  Unlike the
program-specialized :mod:`repro.gensim.compiled` simulator (the paper's
*future work*), the routines are program-independent — the same executable
serves any program for the architecture, exactly as the paper describes.

State accesses still go through :class:`~repro.gensim.state.State`, so
monitors, watchpoints and access counters keep working ("All accesses to
state are automatically routed through the monitors code").
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..errors import SimulationError
from ..isdl import ast, rtl
from ..isdl.fingerprint import FingerprintDelta, fingerprint_tree, unit_fingerprint
from .core import (
    INTRINSIC_IMPLS,
    _BINOPS,
    ExecutionResult,
    PendingWrite,
)
from .state import State

#: expression closure: (state, env) -> int; env maps param name -> value
ExprFn = Callable[[State, dict], int]
#: statement closure: (state, env, sink) -> None
StmtFn = Callable[[State, dict, list], None]


class FastCore:
    """Compiled per-operation routines with the ProcessingCore API."""

    def __init__(self, desc: ast.Description,
                 reuse_from: Optional[Tuple["FastCore", FingerprintDelta]] = None):
        self.desc = desc
        # Dispatch cache: (op name, op identity, option choices) -> routine.
        # The identity key keeps the per-execution lookup at dict speed.
        self._routines: Dict[Tuple, "_Routine"] = {}
        # Content cache: (operation unit digest, option choices) -> routine.
        # Filled on compile; consulted on dispatch-cache misses, which is
        # where routines adopted from a parent core are found.
        self._by_digest: Dict[Tuple, "_Routine"] = {}
        #: (routines adopted, routines compiled) when built incrementally.
        self.reuse_counts: Dict[str, int] = {}
        if reuse_from is not None:
            parent, delta = reuse_from
            adopted = 0
            # A routine bakes in the operation's definition (costs,
            # timing, RTL) and its parameters' token/NT definitions;
            # storages are resolved by name through State at run time.
            # So with tokens and NTs identical, any routine whose
            # operation digest still appears in this description is
            # byte-equivalent to what a cold compile would produce.
            if not delta.tokens_changed and not delta.nonterminals_changed:
                live = set(fingerprint_tree(desc).operations.values())
                for key, routine in parent._by_digest.items():
                    if key[0] in live:
                        self._by_digest[key] = routine
                        adopted += 1
            self.reuse_counts = {"reused": adopted, "rebuilt": 0}

    # ------------------------------------------------------------------
    # Public API (mirrors ProcessingCore.execute)
    # ------------------------------------------------------------------

    def execute(self, state: State, selections) -> ExecutionResult:
        result = ExecutionResult(cycles=0)
        bound: List[Tuple] = []
        for op, operands in selections:
            routine = self._routine_for(op, operands)
            env = routine.bind(operands)
            bound.append((routine, env))
            result.cycles = max(result.cycles, routine.cycles)
        for routine, env in bound:
            for fn in routine.action_fns:
                fn(state, env, result.action_writes)
        for routine, env in bound:
            for fn in routine.side_effect_fns:
                fn(state, env, result.side_effect_writes)
        if result.cycles <= 0:
            result.cycles = 1
        return result

    # ------------------------------------------------------------------
    # Routine compilation
    # ------------------------------------------------------------------

    def _routine_for(self, op: ast.Operation, operands) -> "_Routine":
        key = (op.name, id(op), self._option_key(op, operands))
        routine = self._routines.get(key)
        if routine is None:
            digest_key = (unit_fingerprint(op), key[2])
            routine = self._by_digest.get(digest_key)
            if routine is None:
                # Compile-on-miss is the GENSIM "core build"; it happens
                # once per (operation, option-combination) per
                # architecture.
                with obs.span("gensim.corebuild", op=op.name):
                    routine = _Routine(self.desc, op, operands)
                self._by_digest[digest_key] = routine
                obs.add("gensim.routines_compiled")
                if self.reuse_counts:
                    self.reuse_counts["rebuilt"] += 1
            else:
                obs.add("gensim.routines_adopted")
            self._routines[key] = routine
        return routine

    def _option_key(self, op, operands):
        parts = []
        for param in op.params:
            ptype = self.desc.param_type(param)
            if isinstance(ptype, ast.NonTerminal):
                parts.append((param.name, operands[param.name][0]))
        return tuple(parts)


class _Routine:
    """One compiled operation for a fixed non-terminal option choice."""

    def __init__(self, desc: ast.Description, op: ast.Operation, operands):
        self.desc = desc
        self.op = op
        compiler = _Compiler(desc)
        self.cycles = max(op.costs.cycle, 0)
        #: (param, sub-env template builder) for binding decoded operands
        self._binders: List[Tuple[str, Optional[ast.NtOption]]] = []
        env_info: Dict[str, object] = {}
        prologue: List[StmtFn] = []
        delay = op.timing.latency - 1
        for param in op.params:
            ptype = desc.param_type(param)
            if isinstance(ptype, ast.TokenDef):
                self._binders.append((param.name, None))
                env_info[param.name] = "token"
                continue
            label = operands[param.name][0]
            option = ptype.option(label)
            self._binders.append((param.name, option))
            self.cycles += option.costs.cycle
            env_info[param.name] = ("nt", option)
            compiler.compile_nt(
                param.name, option, env_info, prologue,
                option.timing.latency - 1,
            )
        self.cycles = max(self.cycles, 1)
        self.action_fns: List[StmtFn] = list(prologue)
        for stmt in op.action:
            self.action_fns.append(
                compiler.compile_stmt(stmt, env_info, delay)
            )
        self.side_effect_fns: List[StmtFn] = []
        for stmt in op.side_effect:
            self.side_effect_fns.append(
                compiler.compile_stmt(stmt, env_info, delay)
            )
        for param_name, option in self._binders:
            if option is not None and option.side_effect:
                nt_delay = option.timing.latency - 1
                for stmt in option.side_effect:
                    self.side_effect_fns.append(
                        compiler.compile_stmt(
                            stmt, env_info, nt_delay,
                            prefix=f"{param_name}.",
                        )
                    )

    def bind(self, operands) -> dict:
        """Build the execution environment from decoded operands."""
        env: dict = {}
        for param_name, option in self._binders:
            if option is None:
                env[param_name] = operands[param_name]
            else:
                _, sub_operands = operands[param_name]
                for sub_param in option.params:
                    env[f"{param_name}.{sub_param.name}"] = sub_operands[
                        sub_param.name
                    ]
        return env


class _Compiler:
    """Compiles RTL to closures over (state, env)."""

    def __init__(self, desc: ast.Description):
        self.desc = desc

    # -- non-terminal values -------------------------------------------

    def compile_nt(self, param_name, option, env_info, prologue,
                   delay) -> None:
        """Compile an option's action; its $$ lands in env[param_name]."""
        sub_info = {
            f"{param_name}.{p.name}": "token" for p in option.params
        }
        value_fn: Optional[ExprFn] = None
        holders: Dict[str, ExprFn] = {}
        for stmt in option.action:
            if isinstance(stmt, rtl.Assign) and isinstance(
                stmt.dest, rtl.NtLV
            ):
                value_fn = self.compile_expr(
                    stmt.expr, sub_info, prefix=f"{param_name}.",
                    nt_holders=holders,
                )
                holders["$$"] = value_fn
            else:
                prologue.append(
                    self.compile_stmt(
                        stmt, sub_info, delay, prefix=f"{param_name}.",
                        nt_holders=holders,
                    )
                )
        if value_fn is not None:
            slot_name = param_name

            def fill(state, env, sink, _fn=value_fn, _name=slot_name):
                env[_name] = _fn(state, env)

            prologue.append(fill)

    # -- statements -----------------------------------------------------

    def compile_stmt(self, stmt, env_info, delay, prefix="",
                     nt_holders=None) -> StmtFn:
        if isinstance(stmt, rtl.Assign):
            return self._compile_assign(
                stmt, env_info, delay, prefix, nt_holders
            )
        if isinstance(stmt, rtl.If):
            cond = self.compile_expr(stmt.cond, env_info, prefix, nt_holders)
            then = tuple(
                self.compile_stmt(s, env_info, delay, prefix, nt_holders)
                for s in stmt.then
            )
            orelse = tuple(
                self.compile_stmt(s, env_info, delay, prefix, nt_holders)
                for s in stmt.orelse
            )

            def run_if(state, env, sink):
                branch = then if cond(state, env) else orelse
                for fn in branch:
                    fn(state, env, sink)

            return run_if
        raise SimulationError(f"cannot compile statement {stmt!r}")

    def _compile_assign(self, stmt, env_info, delay, prefix,
                        nt_holders) -> StmtFn:
        value_fn = self.compile_expr(stmt.expr, env_info, prefix, nt_holders)
        dest = stmt.dest
        if isinstance(dest, rtl.ParamLV):
            info = env_info.get(dest.name)
            if not (isinstance(info, tuple) and info[0] == "nt"):
                raise SimulationError(
                    f"parameter {dest.name!r} is not a destination"
                )
            option = info[1]
            target = option.storage_target()
            if target is None:
                raise SimulationError(
                    f"option {option.label!r} is not transparent"
                )
            sub_info = {
                f"{dest.name}.{p.name}": "token" for p in option.params
            }
            return self._storage_write(
                target, value_fn, sub_info, delay, prefix=f"{dest.name}.",
                nt_holders=None,
            )
        if isinstance(dest, rtl.StorageLV):
            return self._storage_write(
                dest, value_fn, env_info, delay, prefix, nt_holders
            )
        raise SimulationError(f"cannot compile destination {dest!r}")

    def _storage_write(self, dest, value_fn, env_info, delay, prefix,
                       nt_holders) -> StmtFn:
        storage = dest.storage
        hi, lo = dest.hi, dest.lo
        if dest.index is not None:
            index_fn = self.compile_expr(
                dest.index, env_info, prefix, nt_holders
            )

            def write_indexed(state, env, sink):
                sink.append(
                    PendingWrite(
                        storage, index_fn(state, env), hi, lo,
                        value_fn(state, env), delay,
                    )
                )

            return write_indexed

        def write_scalar(state, env, sink):
            sink.append(
                PendingWrite(
                    storage, None, hi, lo, value_fn(state, env), delay
                )
            )

        return write_scalar

    # -- expressions ------------------------------------------------------

    def compile_expr(self, expr, env_info, prefix="",
                     nt_holders=None) -> ExprFn:
        if isinstance(expr, rtl.IntLit):
            value = expr.value
            return lambda state, env: value
        if isinstance(expr, rtl.ParamRef):
            # Inside an option body the sub-parameters are stored under
            # "param.subparam"; operation-level parameters under their
            # plain names.
            key = prefix + expr.name
            if key not in env_info and expr.name in env_info:
                key = expr.name
            return lambda state, env, _k=key: env[_k]
        if isinstance(expr, rtl.NtValue):
            if nt_holders is None or "$$" not in nt_holders:
                raise SimulationError("'$$' read before assignment")
            inner = nt_holders["$$"]
            return inner
        if isinstance(expr, rtl.StorageRead):
            storage, hi, lo = expr.storage, expr.hi, expr.lo
            if expr.index is None:
                return (
                    lambda state, env, _s=storage, _h=hi, _l=lo:
                    state.read(_s, None, _h, _l)
                )
            index_fn = self.compile_expr(
                expr.index, env_info, prefix, nt_holders
            )
            return (
                lambda state, env, _s=storage, _h=hi, _l=lo, _i=index_fn:
                state.read(_s, _i(state, env), _h, _l)
            )
        if isinstance(expr, rtl.BinOp):
            left = self.compile_expr(expr.left, env_info, prefix, nt_holders)
            right = self.compile_expr(
                expr.right, env_info, prefix, nt_holders
            )
            if expr.op == "&&":
                return lambda state, env: int(
                    bool(left(state, env)) and bool(right(state, env))
                )
            if expr.op == "||":
                return lambda state, env: int(
                    bool(left(state, env)) or bool(right(state, env))
                )
            fn = _BINOPS[expr.op]
            return lambda state, env: fn(left(state, env), right(state, env))
        if isinstance(expr, rtl.UnOp):
            operand = self.compile_expr(
                expr.operand, env_info, prefix, nt_holders
            )
            if expr.op == "~":
                return lambda state, env: ~operand(state, env)
            if expr.op == "-":
                return lambda state, env: -operand(state, env)
            return lambda state, env: int(not operand(state, env))
        if isinstance(expr, rtl.Cond):
            cond = self.compile_expr(expr.cond, env_info, prefix, nt_holders)
            then = self.compile_expr(expr.then, env_info, prefix, nt_holders)
            other = self.compile_expr(
                expr.other, env_info, prefix, nt_holders
            )
            return lambda state, env: (
                then(state, env) if cond(state, env) else other(state, env)
            )
        if isinstance(expr, rtl.Call):
            impl = INTRINSIC_IMPLS[expr.func]
            args = tuple(
                self.compile_expr(a, env_info, prefix, nt_holders)
                for a in expr.args
            )
            return lambda state, env: impl(
                *(fn(state, env) for fn in args)
            )
        raise SimulationError(f"cannot compile expression {expr!r}")
