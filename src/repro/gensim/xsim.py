"""The XSIM simulator facade (paper §3).

An :class:`XSim` instance is "the generated simulator": cycle-accurate and
bit-true by construction, with off-line disassembly at load time, state
monitors, breakpoints with attached commands, and execution-trace output.
It wires together the six parts of paper Fig. 2 — user interface / file I/O
(:mod:`repro.gensim.cli`), scheduler, state monitors, state, disassembler,
and processing core.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from .. import obs
from ..encoding.signature import SignatureTable
from ..errors import SimulationError
from ..isdl import ast
from .core import ProcessingCore
from .fastcore import FastCore
from .disassembler import Disassembler
from .hazards import HazardAnalyzer
from .monitors import Monitor
from .render import render_instruction
from .scheduler import Breakpoint, LoadedProgram, Scheduler
from .state import State
from .stats import RunResult, SimulationStats
from .trace import TraceSink


class XSim:
    """A generated instruction-level simulator for one ISDL description."""

    def __init__(self, desc: ast.Description,
                 table: Optional[SignatureTable] = None,
                 core: str = "generated"):
        """*core* selects the processing-core implementation:
        ``"generated"`` (default) uses the compiled per-operation routines
        of :class:`~repro.gensim.fastcore.FastCore` — the analogue of
        GENSIM's generated C; ``"interpretive"`` walks the RTL AST on
        every execution (the reference implementation, used by the
        processing-core ablation benchmark).  A prebuilt core object (a
        :class:`FastCore` shared through :class:`repro.cache.ArtifactCache`)
        may be passed instead of a name."""
        self.desc = desc
        self.table = table or SignatureTable(desc)
        self.state = State(desc)
        if core == "generated":
            self.core = FastCore(desc)
        elif core == "interpretive":
            self.core = ProcessingCore(desc)
        elif isinstance(core, str):
            raise ValueError(f"unknown core {core!r}")
        else:
            self.core = core
        self.disassembler = Disassembler(desc, self.table)
        self.hazards = HazardAnalyzer(desc)
        self.scheduler = Scheduler(desc, self.state, self.core)
        self.program: Optional[LoadedProgram] = None

    # ------------------------------------------------------------------
    # Loading (off-line disassembly happens here — paper §3.1)
    # ------------------------------------------------------------------

    def load_words(self, words: Sequence[int], origin: int = 0) -> LoadedProgram:
        """Load raw instruction words; disassembles the program off-line."""
        decoded = [self.disassembler.disassemble(word) for word in words]
        stalls = self.hazards.stalls_for_program(decoded)
        texts = [render_instruction(self.desc, ins) for ins in decoded]
        program = LoadedProgram(list(words), decoded, stalls, texts, origin)
        self.program = program
        self.scheduler.attach_program(program)
        return program

    def load_binary(self, path: str, origin: int = 0) -> LoadedProgram:
        """Load a binary file (one hex word per line) and disassemble it."""
        words = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.split("#", 1)[0].strip()
                if line:
                    words.append(int(line, 16))
        return self.load_words(words, origin)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def reset(self) -> None:
        """Reset cycle counts and the PC (state contents persist)."""
        self.scheduler.reset()

    def step(self) -> bool:
        """Execute a single instruction."""
        return self.scheduler.step()

    def run(self, max_steps: int = 1_000_000,
            honor_breakpoints: bool = True) -> RunResult:
        """Run to halt/breakpoint; returns statistics plus the stop reason.

        The result is a :class:`RunResult` — a full
        :class:`SimulationStats` whose :attr:`~RunResult.halt_reason` field
        carries what used to be the bare string return value.
        """
        monitors = self.state.monitors
        hits_before = monitors.hits_total
        with obs.span("sim.run", backend="xsim", desc=self.desc.name):
            reason = self.scheduler.run(max_steps, honor_breakpoints)
        # stats.cycles is finalized on halt/max_steps but not at a
        # breakpoint; the scheduler's live cycle counter is always right.
        result = RunResult.from_stats(self.stats, reason, cycles=self.cycle)
        if obs.enabled():
            obs.add("sim.runs")
            obs.add("sim.cycles", result.cycles)
            obs.add("sim.instructions", result.instructions)
            obs.add("sim.monitor_hits", monitors.hits_total - hits_before)
        return result

    def run_to_completion(self, max_steps: int = 1_000_000) -> RunResult:
        """Run until the halt flag rises; raise if it never does."""
        result = self.run(max_steps, honor_breakpoints=False)
        if result.halt_reason != "halted":
            raise SimulationError(
                f"program did not halt within {max_steps} steps"
                f" ({result.halt_reason})"
            )
        return result

    @property
    def cycle(self) -> int:
        return self.scheduler.cycle

    @property
    def halted(self) -> bool:
        return self.scheduler.halted

    @property
    def stats(self) -> SimulationStats:
        return self.scheduler.stats

    # ------------------------------------------------------------------
    # State access (examine/set in the paper's UI)
    # ------------------------------------------------------------------

    def read(self, name: str, index: Optional[int] = None) -> int:
        return self.state.read(name, index)

    def write(self, name: str, value: int, index: Optional[int] = None) -> None:
        self.state.write(name, value, index)

    # ------------------------------------------------------------------
    # Debugging facilities (paper §3.1)
    # ------------------------------------------------------------------

    def set_breakpoint(self, address: int,
                       commands: Iterable[str] = ()) -> Breakpoint:
        bp = Breakpoint(address, commands=list(commands))
        self.scheduler.breakpoints[address] = bp
        return bp

    def clear_breakpoint(self, address: int) -> None:
        self.scheduler.breakpoints.pop(address, None)

    def watch(self, storage: str, index: Optional[int] = None,
              callback=None, label: str = "") -> Monitor:
        """Attach a state monitor; default callback records a message."""
        return self.state.monitors.watch(storage, index, callback, label)

    @property
    def monitor_messages(self) -> List[str]:
        return self.state.monitors.messages

    def set_trace(self, sink: Optional[TraceSink]) -> None:
        self.scheduler.trace = sink

    def disassembly_listing(self) -> List[str]:
        """The off-line disassembly of the loaded program."""
        if self.program is None:
            return []
        return [
            f"0x{self.program.origin + i:04x}: {text}"
            for i, text in enumerate(self.program.texts)
        ]
